"""Interface fsck: committed ``*.bti`` files vs re-derived truth.

The separate-analysis workflow (Sec. 4.1) trusts interface files twice:
a module's artifacts are keyed by the digests of its imports'
interfaces, and importers are analysed against the schemes those files
contain.  The digest cache detects *changed* files — it cannot detect a
file that is simply *wrong* (hand-edited, restored from the wrong
checkout, or produced by an older analysis).  This pass can:

* re-derives every module's principal binding-time schemes from source,
  in dependency order, against the *fresh* schemes of its imports —
  never against anything on disk;
* diffs the committed interface against the re-derivation, per function
  (missing, extra, or differing schemes are each separate findings);
* checks the committed file is the canonical serialisation of its own
  schemes (a non-canonical file breaks the byte-equality-is-semantic-
  equality property the cache keys rest on);
* checks each module's recorded content key (the ``.bti.key`` sidecar)
  still matches the key recomputed from current sources and dep
  interfaces — the importer-assumption staleness the build would only
  notice by rebuilding.
"""

import os

from repro.bt.analysis import BTAError, analyse_module
from repro.bt.interface import (
    INTERFACE_SUFFIX,
    InterfaceError,
    InterfaceManager,
    InterfaceStore,
    interface_text,
)
from repro.check.report import SEVERITY_WARNING, Finding
from repro.lang.errors import LangError
from repro.modsys.program import load_program_dir


def _finding(rule, where, message, severity="error", **details):
    return Finding(
        check_pass="ifaces",
        rule=rule,
        where=where,
        message=message,
        severity=severity,
        details=tuple(sorted(details.items())),
    )


def _scheme_str(scheme):
    """``str(scheme)`` hardened against structurally nonsense schemes
    (a skewed interface can name slots that do not exist)."""
    try:
        return str(scheme)
    except Exception:
        return "<unprintable scheme: %r>" % (scheme,)


def derive_schemes(linked, force_residual=frozenset()):
    """Principal schemes per module, re-derived purely from source:
    ``{module_name: {fn_name: BTScheme}}``."""
    by_module = {}
    all_schemes = {}
    for module_name in linked.topo_order:
        module = linked.module(module_name)
        visible = {}
        for dep in module.imports:
            visible.update(by_module[dep])
        analysis = analyse_module(module, visible, force_residual)
        by_module[module_name] = dict(analysis.schemes)
        all_schemes.update(analysis.schemes)
    return by_module


def check_interfaces(src_dir, iface_dir=None, force_residual=frozenset()):
    """The fsck itself; returns ``(findings, checked)`` where ``checked``
    is the number of interface files examined (0 = nothing on disk, the
    caller should report the pass as skipped)."""
    findings = []
    try:
        linked = load_program_dir(src_dir)
    except (LangError, OSError) as exc:
        return [_finding("load", src_dir, str(exc))], 0

    manager = InterfaceManager(src_dir, iface_dir)
    store = InterfaceStore(iface_dir=manager.iface_dir)
    present = [
        name
        for name in linked.topo_order
        if os.path.exists(manager.interface_path(name))
    ]
    if not present:
        return [], 0

    try:
        fresh_by_module = derive_schemes(linked, force_residual)
    except BTAError as exc:
        return [_finding("analyse", src_dir, str(exc))], 0

    for module_name in linked.topo_order:
        module = linked.module(module_name)
        path = manager.interface_path(module_name)
        where = module_name + INTERFACE_SUFFIX
        if not os.path.exists(path):
            findings.append(
                _finding(
                    "missing-interface",
                    where,
                    "module %s has no committed interface while other "
                    "modules do" % module_name,
                )
            )
            continue
        try:
            committed_iface = store.load(path)
        except InterfaceError as exc:
            findings.append(_finding("corrupt-interface", where, str(exc)))
            continue
        committed_name = committed_iface.module
        committed = committed_iface.schemes
        if committed_name != module_name:
            findings.append(
                _finding(
                    "wrong-module",
                    where,
                    "interface file names module %r" % committed_name,
                )
            )
            continue

        fresh = fresh_by_module[module_name]
        for fn in sorted(set(fresh) - set(committed)):
            findings.append(
                _finding(
                    "scheme-missing",
                    "%s:%s" % (where, fn),
                    "exported function %s has no committed scheme" % fn,
                )
            )
        for fn in sorted(set(committed) - set(fresh)):
            findings.append(
                _finding(
                    "scheme-extra",
                    "%s:%s" % (where, fn),
                    "committed scheme for %s, which the module does not "
                    "define" % fn,
                )
            )
        for fn in sorted(set(committed) & set(fresh)):
            if committed[fn] != fresh[fn]:
                findings.append(
                    _finding(
                        "scheme-skew",
                        "%s:%s" % (where, fn),
                        "committed binding-time scheme disagrees with "
                        "the re-derived principal scheme",
                        committed=_scheme_str(committed[fn]),
                        derived=_scheme_str(fresh[fn]),
                    )
                )

        # A v2 interface whose stored per-def digest table disagrees
        # with its own schemes is *stale*, not corrupt: the schemes
        # still parse and analyse, but importers keyed on the stored
        # digests saw assumptions the schemes no longer make.
        digest_skew = store.verify(committed_iface)
        for rule, fn, msg in digest_skew:
            findings.append(
                _finding(rule, "%s:%s" % (where, fn), msg)
            )
        canonical = interface_text(
            module_name, committed, format=committed_iface.format
        )
        if not digest_skew and committed_iface.text != canonical:
            findings.append(
                _finding(
                    "non-canonical",
                    where,
                    "interface file is not the canonical serialisation "
                    "of its own schemes (byte-equality no longer implies "
                    "semantic equality)",
                    severity=SEVERITY_WARNING,
                )
            )

        key_path = manager.key_path(module_name)
        if not os.path.exists(key_path):
            findings.append(
                _finding(
                    "no-key",
                    where,
                    "no recorded content key (%s.bti.key); staleness "
                    "cannot be established" % module_name,
                    severity=SEVERITY_WARNING,
                )
            )
        elif not manager.is_up_to_date(
            module_name, module.imports, force_residual
        ):
            findings.append(
                _finding(
                    "stale-key",
                    where,
                    "recorded content key no longer matches the current "
                    "source and dep interfaces (the interface predates "
                    "an edit — importers analysed against it saw stale "
                    "assumptions)",
                )
            )
    return findings, len(present)
