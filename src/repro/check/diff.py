"""Differential testing: five execution ways, one answer.

For one :class:`~repro.check.gen.GeneratedCase` the oracle runs the
program:

1. **interp** — direct interpretation of the source program on the full
   argument list (the ground truth);
2. **genext** — cogen + link + run the generating extensions, then run
   the residual program on the dynamic arguments;
3. **mix** — the interpretive specialiser baseline, whose residual
   program must be *byte-identical* to the genext one;
4. **cache** — specialise twice against a fresh persistent residual
   cache: the warm replay must decode a byte-identical residual without
   running the specialiser;
5. **tiers** — every rung of the execution ladder
   (:mod:`repro.backend.tiers`) forced in turn: the general
   interpreter, the residual interpreter, and the emitted + compiled
   Python must all agree with the ground truth;
6. **strategies** — the non-default analysis-strategy matrix
   (``docs/analyses.md``): ``division="poly"`` must produce a residual
   *byte-identical* to the monovariant one (versions are a cogen
   artefact, not a semantics change), and ``unfolding="size-change"``
   residuals — genext and mix, which must again agree byte-for-byte —
   must produce the interpreter's values.

On top of that, the goal's alternate static valuations are pushed
through the parallel batch driver at every requested ``--jobs`` width;
all widths (and the direct run) must agree byte-for-byte, warm or cold.

Any disagreement — a differing value, a differing residual text, or an
unexpected exception in any way — is reported as a failure record; the
case is then *minimised* by iterative definition deletion
(:func:`minimise_case`) and written as a replayable JSON repro bundle
(:mod:`repro.check.report`).
"""

import tempfile
from dataclasses import replace

from repro.api import SpecOptions
from repro.bt.analysis import analyse_program
from repro.genext.batch import specialise_many
from repro.genext.cogen import cogen_program
from repro.genext.link import link_genexts
from repro.genext.engine import specialise
from repro.interp import run_program
from repro.lang.ast import Module, Program
from repro.lang.pretty import pretty_program
from repro.modsys.program import load_program
from repro.specialiser import mix_specialise
from repro.types import infer_program

DIFF_FUEL = 600_000
DEFAULT_SPEC_TIMEOUT = 30.0

# The non-default corners of the analysis-strategy space, differentially
# checked by way 6.  (mono, lub) is every other way's baseline.
STRATEGY_MATRIX = (
    ("poly", "lub"),
    ("mono", "size-change"),
    ("poly", "size-change"),
)


def _failure(way, kind, message, **details):
    doc = {"way": way, "kind": kind, "message": str(message)}
    doc.update(details)
    return doc


def _run_residual(result, vec, fuel=DIFF_FUEL):
    return result.run(*vec, fuel=fuel)


def run_case(case, jobs_widths=(1,), check_cache=True, timeout=None, obs=None,
             strategy_matrix=True):
    """Run every way and cross-check; returns a list of failure records
    (empty = the case agrees everywhere)."""
    timeout = DEFAULT_SPEC_TIMEOUT if timeout is None else timeout
    failures = []

    # -- way 1: ground truth --------------------------------------------------
    try:
        linked = load_program(case.source)
    except Exception as exc:
        return [_failure("interp", "load", exc)]
    expected = {}
    for vi, valuation in enumerate(case.static_variants):
        for vec in case.dyn_inputs:
            try:
                expected[(vi, vec)] = run_program(
                    linked,
                    case.goal,
                    case.full_args(valuation, vec),
                    fuel=DIFF_FUEL,
                )
            except Exception as exc:
                failures.append(
                    _failure(
                        "interp", "run", exc, variant=vi, dyn=list(vec)
                    )
                )
    if failures:
        return failures

    options = SpecOptions(timeout=timeout)

    # -- way 2: generating extensions ----------------------------------------
    try:
        gp = link_genexts(cogen_program(analyse_program(linked)))
        genext_result = specialise(
            gp, case.goal, dict(case.static_args), options, obs=obs
        )
        genext_text = pretty_program(genext_result.program)
    except Exception as exc:
        return failures + [_failure("genext", "specialise", exc)]
    for vec in case.dyn_inputs:
        try:
            got = _run_residual(genext_result, vec)
        except Exception as exc:
            failures.append(
                _failure("genext", "run", exc, variant=0, dyn=list(vec))
            )
            continue
        if got != expected[(0, vec)]:
            failures.append(
                _failure(
                    "genext",
                    "value",
                    "residual disagrees with interpreter",
                    variant=0,
                    dyn=list(vec),
                    expected=expected[(0, vec)],
                    got=got,
                )
            )

    # -- way 3: the interpretive baseline ------------------------------------
    try:
        mix_result = mix_specialise(
            case.source, case.goal, dict(case.static_args), options, obs=obs
        )
        mix_text = pretty_program(mix_result.program)
    except Exception as exc:
        return failures + [_failure("mix", "specialise", exc)]
    if mix_text != genext_text:
        failures.append(
            _failure(
                "mix",
                "bytes",
                "mix residual differs from genext residual",
                genext=genext_text,
                mix=mix_text,
            )
        )
    else:
        for vec in case.dyn_inputs:
            try:
                got = _run_residual(mix_result, vec)
            except Exception as exc:
                failures.append(
                    _failure("mix", "run", exc, variant=0, dyn=list(vec))
                )
                continue
            if got != expected[(0, vec)]:
                failures.append(
                    _failure(
                        "mix",
                        "value",
                        "mix residual disagrees with interpreter",
                        variant=0,
                        dyn=list(vec),
                        expected=expected[(0, vec)],
                        got=got,
                    )
                )

    # -- way 4: warm-cache replay --------------------------------------------
    if check_cache:
        with tempfile.TemporaryDirectory(prefix="mspec-check-") as tmp:
            copts = options.replace(cache_dir=tmp)
            try:
                cold = specialise(
                    gp, case.goal, dict(case.static_args), copts, obs=obs
                )
                warm = specialise(
                    gp, case.goal, dict(case.static_args), copts, obs=obs
                )
                cold_text = pretty_program(cold.program)
                warm_text = pretty_program(warm.program)
            except Exception as exc:
                failures.append(_failure("cache", "specialise", exc))
            else:
                if cold_text != genext_text:
                    failures.append(
                        _failure(
                            "cache",
                            "bytes",
                            "cold cached residual differs from uncached",
                        )
                    )
                if warm_text != cold_text:
                    failures.append(
                        _failure(
                            "cache",
                            "bytes",
                            "warm replay differs from cold residual",
                            cold=cold_text,
                            warm=warm_text,
                        )
                    )
                else:
                    for vec in case.dyn_inputs:
                        try:
                            got = _run_residual(warm, vec)
                        except Exception as exc:
                            failures.append(
                                _failure(
                                    "cache", "run", exc, dyn=list(vec)
                                )
                            )
                            continue
                        if got != expected[(0, vec)]:
                            failures.append(
                                _failure(
                                    "cache",
                                    "value",
                                    "warm replay disagrees with "
                                    "interpreter",
                                    variant=0,
                                    dyn=list(vec),
                                    expected=expected[(0, vec)],
                                    got=got,
                                )
                            )

    # -- way 5: the execution ladder ------------------------------------------
    from repro.backend.tiers import TierLadder

    with tempfile.TemporaryDirectory(prefix="mspec-check-") as tmp:
        ladder = TierLadder(
            gp, options=options.replace(cache_dir=tmp), obs=obs,
            program=linked,
        )
        for tier in (0, 1, 2):
            for vec in case.dyn_inputs:
                try:
                    run = ladder.call(
                        case.goal, dict(case.static_args), vec, tier=tier
                    )
                except Exception as exc:
                    failures.append(
                        _failure(
                            "tiers", "run", exc, tier=tier, dyn=list(vec)
                        )
                    )
                    continue
                if run.value != expected[(0, vec)]:
                    failures.append(
                        _failure(
                            "tiers",
                            "value",
                            "tier %d disagrees with interpreter" % tier,
                            tier=tier,
                            dyn=list(vec),
                            expected=expected[(0, vec)],
                            got=run.value,
                        )
                    )

    # -- way 6: the analysis-strategy matrix ----------------------------------
    if strategy_matrix:
        failures.extend(
            _check_strategy_matrix(
                case, linked, genext_text, expected, options, obs
            )
        )

    # -- jobs widths through the batch driver --------------------------------
    if jobs_widths:
        failures.extend(
            _check_jobs_widths(
                case, gp, genext_text, expected, jobs_widths, options, obs
            )
        )
    return failures


def _check_strategy_matrix(case, linked, genext_text, expected, options, obs):
    """Differentially check the non-default analysis strategies.

    Polyvariant division is a compilation-artefact change, so its
    residual must be byte-identical to the baseline's.  Size-change
    unfolding legitimately changes the residual, so it is value-checked
    against the interpreter instead — and the genext and mix paths,
    which share the strategy, must still agree byte-for-byte."""
    from repro import compile_genexts

    failures = []
    for division, unfolding in STRATEGY_MATRIX:
        way = "strategy[%s,%s]" % (division, unfolding)
        sopts = options.replace(division=division, unfolding=unfolding)
        try:
            sgp = compile_genexts(linked, sopts)
            result = specialise(
                sgp, case.goal, dict(case.static_args), sopts, obs=obs
            )
            text = pretty_program(result.program)
        except Exception as exc:
            failures.append(_failure(way, "specialise", exc))
            continue
        if unfolding == "lub" and text != genext_text:
            failures.append(
                _failure(
                    way,
                    "bytes",
                    "polyvariant division changed the residual program",
                    baseline=genext_text,
                    got=text,
                )
            )
            continue
        for vec in case.dyn_inputs:
            try:
                got = _run_residual(result, vec)
            except Exception as exc:
                failures.append(
                    _failure(way, "run", exc, variant=0, dyn=list(vec))
                )
                continue
            if got != expected[(0, vec)]:
                failures.append(
                    _failure(
                        way,
                        "value",
                        "strategy residual disagrees with interpreter",
                        variant=0,
                        dyn=list(vec),
                        expected=expected[(0, vec)],
                        got=got,
                    )
                )
        if division == "mono" and unfolding != "lub":
            try:
                mix_result = mix_specialise(
                    case.source,
                    case.goal,
                    dict(case.static_args),
                    sopts,
                    obs=obs,
                )
                mix_text = pretty_program(mix_result.program)
            except Exception as exc:
                failures.append(
                    _failure(way, "specialise", exc, baseline="mix")
                )
                continue
            if mix_text != text:
                failures.append(
                    _failure(
                        way,
                        "bytes",
                        "mix residual differs from genext residual "
                        "under %s unfolding" % unfolding,
                        genext=text,
                        mix=mix_text,
                    )
                )
    return failures


def _check_jobs_widths(case, gp, genext_text, expected, widths, options, obs):
    """Specialise every static variant at every pool width; all widths
    must produce byte-identical residual programs (and correct values)."""
    failures = []
    requests = [
        {"goal": case.goal, "static_args": dict(v)}
        for v in case.static_variants
    ]
    texts_by_width = {}
    for width in widths:
        with tempfile.TemporaryDirectory(prefix="mspec-check-") as tmp:
            try:
                batch = specialise_many(
                    gp,
                    requests,
                    options.replace(cache_dir=tmp),
                    jobs=width,
                    obs=obs,
                )
            except Exception as exc:
                failures.append(
                    _failure("batch", "specialise", exc, jobs=width)
                )
                continue
            texts = []
            for i, result in enumerate(batch.results):
                if result is None:
                    failures.append(
                        _failure(
                            "batch",
                            "request",
                            batch.failures[i].message,
                            jobs=width,
                            variant=i,
                        )
                    )
                    texts.append(None)
                    continue
                texts.append(pretty_program(result.program))
                for vec in case.dyn_inputs:
                    try:
                        got = _run_residual(result, vec)
                    except Exception as exc:
                        failures.append(
                            _failure(
                                "batch",
                                "run",
                                exc,
                                jobs=width,
                                variant=i,
                                dyn=list(vec),
                            )
                        )
                        continue
                    if got != expected[(i, vec)]:
                        failures.append(
                            _failure(
                                "batch",
                                "value",
                                "batch residual disagrees with "
                                "interpreter",
                                jobs=width,
                                variant=i,
                                dyn=list(vec),
                                expected=expected[(i, vec)],
                                got=got,
                            )
                        )
            texts_by_width[width] = texts
    if len(texts_by_width) > 1:
        base_width = sorted(texts_by_width)[0]
        base = texts_by_width[base_width]
        for width in sorted(texts_by_width)[1:]:
            if texts_by_width[width] != base:
                failures.append(
                    _failure(
                        "batch",
                        "bytes",
                        "residuals differ between --jobs %d and "
                        "--jobs %d" % (base_width, width),
                    )
                )
    if texts_by_width:
        first = texts_by_width[sorted(texts_by_width)[0]]
        if first and first[0] is not None and first[0] != genext_text:
            failures.append(
                _failure(
                    "batch",
                    "bytes",
                    "batch residual for the primary static valuation "
                    "differs from the direct genext residual",
                )
            )
    return failures


# ---------------------------------------------------------------------------
# Divergence minimisation: iterative definition deletion.
# ---------------------------------------------------------------------------


def _delete_def(program, module_name, def_name):
    """``program`` with one definition removed; empty modules disappear
    and imports of vanished modules are pruned."""
    modules = []
    dropped_modules = set()
    for m in program.modules:
        if m.name != module_name:
            modules.append(m)
            continue
        defs = tuple(d for d in m.defs if d.name != def_name)
        if defs:
            modules.append(Module(m.name, m.imports, defs, m.params))
        else:
            dropped_modules.add(m.name)
    if dropped_modules:
        modules = [
            Module(
                m.name,
                tuple(i for i in m.imports if i not in dropped_modules),
                m.defs,
                m.params,
            )
            for m in modules
        ]
    return Program(tuple(modules))


def _still_fails(case, source, timeout):
    """Does the (reduced) source still diverge?  Reduction candidates
    that no longer parse / link / type-check do not count."""
    try:
        infer_program(load_program(source))
    except Exception:
        return False
    reduced = replace(case, source=source)
    try:
        return bool(
            run_case(
                reduced, jobs_widths=(), check_cache=True, timeout=timeout
            )
        )
    except Exception:
        # The harness itself crashing on the reduced case is still a
        # reproduction of *a* failure.
        return True


def minimise_case(case, timeout=None, max_rounds=8):
    """Greedy ddmin-lite: repeatedly delete single definitions while the
    failure persists; returns the minimised source (possibly the
    original)."""
    timeout = DEFAULT_SPEC_TIMEOUT if timeout is None else timeout
    source = case.source
    for _ in range(max_rounds):
        program = load_program(source).program
        progressed = False
        for m in program.modules:
            for d in m.defs:
                if d.name == case.goal:
                    continue
                candidate = pretty_program(
                    _delete_def(program, m.name, d.name)
                )
                if _still_fails(case, candidate, timeout):
                    source = candidate
                    progressed = True
                    break
            if progressed:
                break
        if not progressed:
            return source
    return source
