"""Findings, reports, and replayable repro bundles for ``mspec check``.

A :class:`Finding` is one problem one pass established; a
:class:`CheckReport` aggregates the findings of a whole run together
with the counters the passes maintained.  A *repro bundle* is a
self-contained JSON document (schema ``repro.check.bundle/v1``) that
captures everything needed to replay one differential-testing
divergence: the generator seed, the full and minimised sources, the
goal, the static/dynamic division, the inputs, and what each execution
way produced.  ``mspec check --replay bundle.json`` re-runs it.
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

CHECK_BUNDLE_SCHEMA = "repro.check.bundle/v1"

# Exit code for "the correctness harness found problems" — after the
# pipeline's 3/4/5 and fsck's 6.
EXIT_CHECK_FAILED = 7

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One problem established by one pass.

    ``check_pass`` is ``diff`` / ``ifaces`` / ``lint``; ``rule`` names
    the specific invariant; ``where`` locates it (``Module.def``, a
    file path, or a generator seed); ``severity`` is ``error`` or
    ``warning`` — only errors fail the run.
    """

    check_pass: str
    rule: str
    where: str
    message: str
    severity: str = SEVERITY_ERROR
    details: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self):
        doc = {
            "pass": self.check_pass,
            "rule": self.rule,
            "where": self.where,
            "message": self.message,
            "severity": self.severity,
        }
        if self.details:
            doc["details"] = {k: v for k, v in self.details}
        return doc

    def render(self):
        return "[%s/%s] %s: %s" % (
            self.check_pass,
            self.rule,
            self.where,
            self.message,
        )


@dataclass
class CheckReport:
    """Everything one ``mspec check`` run established."""

    findings: List[Finding] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    bundles: List[str] = field(default_factory=list)  # bundle file paths
    skipped: Dict[str, str] = field(default_factory=dict)  # pass -> why

    @property
    def ok(self):
        return not any(
            f.severity == SEVERITY_ERROR for f in self.findings
        )

    @property
    def exit_code(self):
        return 0 if self.ok else EXIT_CHECK_FAILED

    def extend(self, findings):
        self.findings.extend(findings)
        return self

    def count(self, name, n=1):
        self.counters[name] = self.counters.get(name, 0) + n

    def as_dict(self):
        return {
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
            "counters": dict(sorted(self.counters.items())),
            "bundles": list(self.bundles),
            "skipped": dict(sorted(self.skipped.items())),
        }

    def render(self):
        lines = []
        for f in self.findings:
            lines.append(f.render())
        for name, why in sorted(self.skipped.items()):
            lines.append("[%s] skipped: %s" % (name, why))
        for path in self.bundles:
            lines.append("repro bundle: %s" % path)
        errors = sum(
            1 for f in self.findings if f.severity == SEVERITY_ERROR
        )
        warnings = len(self.findings) - errors
        lines.append(
            "check: %d error(s), %d warning(s)" % (errors, warnings)
        )
        return "\n".join(lines)


def make_bundle(case, failures, minimised_source=None):
    """The replayable JSON document for one divergence.

    ``case`` is a :class:`repro.check.gen.GeneratedCase` (or anything
    with the same fields); ``failures`` a list of dicts describing what
    diverged (way, inputs, expected, got, ...)."""
    import repro

    return {
        "schema": CHECK_BUNDLE_SCHEMA,
        "version": repro.__version__,
        "seed": case.seed,
        "goal": case.goal,
        "params": list(case.params),
        "static_args": dict(case.static_args),
        "static_variants": [dict(v) for v in case.static_variants],
        "dyn_inputs": [list(v) for v in case.dyn_inputs],
        "source": case.source,
        "minimised_source": minimised_source,
        "failures": failures,
    }


def write_bundle(path, bundle):
    """Atomically write a bundle document; returns ``path``."""
    from repro.bt.interface import atomic_write_text

    atomic_write_text(
        path, json.dumps(bundle, indent=1, sort_keys=True) + "\n"
    )
    return path


def read_bundle(path):
    """Read and structurally validate a bundle; raises ``ValueError``."""
    with open(path) as f:
        doc = json.load(f)
    problems = validate_bundle(doc)
    if problems:
        raise ValueError(
            "%s is not a %s document: %s"
            % (path, CHECK_BUNDLE_SCHEMA, "; ".join(problems))
        )
    return doc


def validate_bundle(doc):
    """Problems with a repro-bundle document (empty list = valid)."""
    if not isinstance(doc, dict):
        return ["bundle must be a JSON object"]
    problems = []
    if doc.get("schema") != CHECK_BUNDLE_SCHEMA:
        problems.append(
            "schema must be %r, got %r"
            % (CHECK_BUNDLE_SCHEMA, doc.get("schema"))
        )
    for fld, types in (
        ("seed", int),
        ("goal", str),
        ("params", list),
        ("static_args", dict),
        ("dyn_inputs", list),
        ("source", str),
        ("failures", list),
    ):
        if not isinstance(doc.get(fld), types):
            problems.append("missing or malformed %r field" % fld)
    return problems
