"""Seeded generation of well-typed multi-module programs.

The differential tester needs an endless supply of programs that are
*guaranteed good*: well-typed, terminating on the sample inputs, with a
multi-module structure (acyclic imports, cross-module calls) and a goal
whose parameters split into static and dynamic — so that any
disagreement between the interpreter and a residual program is a
toolchain bug, never a property of the input.

Construction guarantees:

* **well-typed** — every definition is first-order over ``Nat``;
  booleans appear only in conditional tests; ``div``/``mod`` divisors
  have the shape ``e + k`` with ``k >= 1``, so no domain errors;
* **terminating** — the call graph over distinct definitions is acyclic
  (a definition only calls definitions created before it), and
  self-recursion decreases its first ("counter") parameter through the
  saturating ``n - 1`` under an ``n == 0`` guard;
* **bounded specialisation** — self-recursive calls pass non-counter
  arguments through *unchanged*, so the set of static argument
  skeletons reachable during specialisation is finite whatever the
  binding-time division (no infinite polyvariance); counters received
  from callers are literals, ``mod``-bounded expressions, or the
  caller's own counter;
* **multi-module** — 2–4 modules with randomised acyclic imports plus a
  ``Main`` module whose ``main`` is the goal.

Every generated case is post-validated (parse, link, type-check,
interpret each input vector under a fuel bound) before being returned;
a failed candidate deterministically re-rolls, so ``generate_case(seed)``
is a total function of ``seed``.
"""

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.interp import run_program
from repro.lang.ast import Call, Def, If, Lit, Module, Prim, Program, Var
from repro.lang.pretty import pretty_program
from repro.modsys.program import load_program
from repro.types import infer_program

GEN_FUEL = 400_000

_CMP_OPS = ("==", "<", "<=")
_ARITH_OPS = ("+", "-", "*")


@dataclass(frozen=True)
class GeneratedCase:
    """One generated differential-testing case."""

    seed: int
    source: str
    goal: str
    static_args: Dict[str, int]
    static_variants: Tuple[Dict[str, int], ...]
    dyn_inputs: Tuple[Tuple[int, ...], ...]
    params: Tuple[str, ...]

    def full_args(self, static_args, dyn_vector):
        """Interleave one static valuation with one dynamic vector into
        the goal's positional argument list."""
        dyn_iter = iter(dyn_vector)
        return [
            static_args[p] if p in static_args else next(dyn_iter)
            for p in self.params
        ]


@dataclass(frozen=True)
class _FnSig:
    name: str
    params: Tuple[str, ...]
    module: str


class _Gen:
    def __init__(self, rng):
        self.rng = rng
        self.visible = []  # _FnSig of defs callable from the current one

    # -- expressions ---------------------------------------------------------

    def atom(self, env):
        if env and self.rng.random() < 0.7:
            return Var(self.rng.choice(env))
        return Lit(self.rng.randint(0, 9))

    def counter_expr(self, env, counter):
        """An expression safe to pass into a callee's counter position:
        bounded regardless of the values flowing through ``env``."""
        roll = self.rng.random()
        if counter is not None and roll < 0.4:
            return Var(counter)
        if roll < 0.7:
            return Lit(self.rng.randint(0, 6))
        return Prim(
            "mod", (self.atom(env), Lit(self.rng.randint(2, 7)))
        )

    def call_expr(self, env, counter, depth):
        sig = self.rng.choice(self.visible)
        args = [self.counter_expr(env, counter)]
        for _ in sig.params[1:]:
            args.append(self.expr(env, counter, depth - 1))
        return Call(sig.name, tuple(args))

    def cond_expr(self, env, counter, depth):
        op = self.rng.choice(_CMP_OPS)
        return Prim(
            op, (self.expr(env, counter, depth - 1), self.atom(env))
        )

    def expr(self, env, counter, depth):
        if depth <= 0:
            return self.atom(env)
        roll = self.rng.random()
        if roll < 0.35:
            op = self.rng.choice(_ARITH_OPS)
            return Prim(
                op,
                (
                    self.expr(env, counter, depth - 1),
                    self.expr(env, counter, depth - 1),
                ),
            )
        if roll < 0.45:
            op = self.rng.choice(("div", "mod"))
            divisor = Prim(
                "+", (self.atom(env), Lit(self.rng.randint(1, 9)))
            )
            return Prim(op, (self.expr(env, counter, depth - 1), divisor))
        if roll < 0.65:
            return If(
                self.cond_expr(env, counter, depth),
                self.expr(env, counter, depth - 1),
                self.expr(env, counter, depth - 1),
            )
        if self.visible and roll < 0.9:
            return self.call_expr(env, counter, depth)
        return self.atom(env)

    # -- definitions ---------------------------------------------------------

    def make_def(self, name, module):
        arity = self.rng.randint(1, 3)
        params = tuple(("n", "a", "b")[:arity])
        env = list(params)
        counter = params[0]
        if self.rng.random() < 0.6:
            # Self-recursive: counter strictly decreases; the other
            # parameters pass through unchanged (bounded polyvariance).
            rec_args = [Prim("-", (Var(counter), Lit(1)))]
            rec_args += [Var(p) for p in params[1:]]
            recursive = Call(name, tuple(rec_args))
            step = Prim(
                self.rng.choice(_ARITH_OPS),
                (recursive, self.expr(env, counter, 2)),
            )
            body = If(
                Prim("==", (Var(counter), Lit(0))),
                self.expr(env, counter, 2),
                step,
            )
        else:
            body = self.expr(env, counter, 3)
        d = Def(name, params, body)
        self.visible.append(_FnSig(name, params, module))
        return d


def _build_program(rng):
    """One candidate (program AST, goal meta) — not yet validated."""
    gen = _Gen(rng)
    n_lib = rng.randint(1, 3)
    lib_names = ["M%d" % i for i in range(n_lib)]
    modules = []
    fn_counter = 0
    exports = {}  # module name -> [_FnSig]
    for i, mod_name in enumerate(lib_names):
        imports = tuple(
            dep
            for dep in lib_names[:i]
            if rng.random() < 0.6
        )
        # Only functions of imported modules (plus this module's own,
        # earlier defs) are callable — mirror the resolver's visibility.
        gen.visible = [
            sig for dep in imports for sig in exports[dep]
        ]
        defs = []
        for _ in range(rng.randint(1, 3)):
            fn_counter += 1
            defs.append(gen.make_def("f%d" % fn_counter, mod_name))
        exports[mod_name] = [
            sig for sig in gen.visible if sig.module == mod_name
        ]
        modules.append(Module(mod_name, imports, tuple(defs)))

    # Main imports every library module and defines the goal.
    gen.visible = [sig for name in lib_names for sig in exports[name]]
    arity = rng.randint(2, 3)
    params = tuple(("s", "d", "e")[:arity])
    counter = params[0]
    env = list(params)
    parts = [
        gen.call_expr(env, counter, 2)
        for _ in range(rng.randint(1, 3))
    ]
    body = parts[0]
    for p in parts[1:]:
        body = Prim(rng.choice(_ARITH_OPS), (body, p))
    if rng.random() < 0.5:
        body = If(gen.cond_expr(env, counter, 2), body, gen.expr(env, counter, 2))
    main = Def("main", params, body)
    modules.append(Module("Main", tuple(lib_names), (main,)))

    n_static = rng.randint(1, arity - 1)
    static_params = list(params[:n_static])
    dynamic_params = [p for p in params if p not in static_params]
    return Program(tuple(modules)), params, static_params, dynamic_params


def _static_valuation(rng, static_params):
    return {p: rng.randint(1, 8) for p in static_params}


def generate_case(seed, max_attempts=64):
    """The :class:`GeneratedCase` for ``seed`` (deterministic).

    Candidates that fail post-validation (they should not, by
    construction, but the validator is the guarantee) are re-rolled
    deterministically; after ``max_attempts`` the last validation error
    propagates — a generator bug worth seeing."""
    last_error = None
    for attempt in range(max_attempts):
        rng = random.Random((seed + 1) * 1_000_003 + attempt)
        try:
            return _validated_case(seed, rng)
        except Exception as exc:  # re-roll; re-raise the last one below
            last_error = exc
    raise RuntimeError(
        "generate_case(seed=%d): no valid candidate in %d attempts; "
        "last error: %s" % (seed, max_attempts, last_error)
    )


def _validated_case(seed, rng):
    program, params, static_params, dynamic_params = _build_program(rng)
    source = pretty_program(program)

    # The source must round-trip the front end and type-check.
    linked = load_program(source)
    infer_program(linked)

    static_args = _static_valuation(rng, static_params)
    variants = [static_args]
    seen = {tuple(sorted(static_args.items()))}
    for _ in range(8):
        if len(variants) == 3:
            break
        v = _static_valuation(rng, static_params)
        key = tuple(sorted(v.items()))
        if key not in seen:
            seen.add(key)
            variants.append(v)

    dyn_inputs = []
    seen_dyn = set()
    for _ in range(12):
        if len(dyn_inputs) == 3:
            break
        vec = tuple(rng.randint(0, 9) for _ in dynamic_params)
        if vec not in seen_dyn:
            seen_dyn.add(vec)
            dyn_inputs.append(vec)

    case = GeneratedCase(
        seed=seed,
        source=source,
        goal="main",
        static_args=static_args,
        static_variants=tuple(variants),
        dyn_inputs=tuple(dyn_inputs),
        params=params,
    )
    # Every (static variant, dynamic vector) pair must terminate under
    # the fuel bound when interpreted directly.
    for valuation in case.static_variants:
        for vec in case.dyn_inputs:
            run_program(
                linked, case.goal, case.full_args(valuation, vec),
                fuel=GEN_FUEL,
            )
    return case


def generate_cases(count, seed=0):
    """``count`` cases seeded ``seed``, ``seed+1``, ..."""
    return [generate_case(seed + i) for i in range(count)]
