"""The ``mspec check`` driver: lint + interface fsck + bounded fuzzing.

Produces one :class:`~repro.check.report.CheckReport` and maintains the
``check.*`` metrics:

* ``check.programs`` — generated programs put through the oracle;
* ``check.divergences`` — programs on which any way disagreed;
* ``check.lint_findings`` / ``check.iface_findings`` — per-pass finding
  counts (errors and warnings);
* ``check.bundles`` — repro bundles written;
* ``check.minimise_deletions`` — definitions removed while minimising.

Spans (under an enabled tracer): ``check`` → ``check.lint`` /
``check.ifaces`` / ``check.diff`` (one per generated program, tagged
with its seed).
"""

import os

from repro.check.diff import minimise_case, run_case
from repro.check.gen import GeneratedCase, generate_case
from repro.check.ifaces import check_interfaces
from repro.check.lint import lint_linked
from repro.check.report import (
    CheckReport,
    Finding,
    make_bundle,
    read_bundle,
    write_bundle,
)
from repro.lang.errors import LangError
from repro.modsys.program import load_program_dir

DEFAULT_BUNDLE_DIRNAME = ".mspec-check"


def _summarise(failures):
    first = failures[0]
    extra = "" if len(failures) == 1 else (
        " (+%d more)" % (len(failures) - 1)
    )
    return "%s/%s: %s%s" % (
        first.get("way"),
        first.get("kind"),
        first.get("message"),
        extra,
    )


def _program_size(source):
    return len([ln for ln in source.splitlines() if ln.strip()])


def run_check(
    src_dir,
    fuzz=10,
    seed=0,
    jobs_widths=(1,),
    bundle_dir=None,
    iface_dir=None,
    force_residual=frozenset(),
    timeout=None,
    minimise=True,
    obs=None,
    strategy_matrix=True,
):
    """Run all three passes over ``src_dir``; returns a
    :class:`CheckReport`.  ``fuzz`` bounds the generated-program count
    (0 disables the differential pass); ``jobs_widths`` are the batch
    pool widths whose residuals must agree byte-for-byte;
    ``strategy_matrix`` additionally lints and differentially checks the
    non-default analysis strategies (``docs/analyses.md``)."""
    from repro.obs import Obs

    obs = obs if obs is not None else Obs()
    tracer, metrics = obs.tracer, obs.metrics
    report = CheckReport()
    force_residual = frozenset(force_residual or ())

    with tracer.span("check", cat="check", dir=str(src_dir)):
        # -- pass 1: annotation lint -------------------------------------
        with tracer.span("check.lint", cat="check"):
            try:
                linked = load_program_dir(src_dir)
            except (LangError, OSError) as exc:
                report.findings.append(
                    Finding(
                        check_pass="lint",
                        rule="load",
                        where=str(src_dir),
                        message=str(exc),
                    )
                )
                linked = None
            if linked is not None:
                findings = lint_linked(linked, force_residual)
                if strategy_matrix:
                    # The polyvariant division adds per-version lint;
                    # size-change swaps the unfold rule for proof-based
                    # checks.  Same source, stricter coverage.
                    findings = findings + lint_linked(
                        linked,
                        force_residual,
                        division="poly",
                        unfolding="size-change",
                    )
                report.extend(findings)
                metrics.counter("check.lint_findings").inc(len(findings))
                report.count("check.lint_findings", len(findings))

        # -- pass 2: interface fsck --------------------------------------
        with tracer.span("check.ifaces", cat="check"):
            findings, checked = check_interfaces(
                src_dir, iface_dir, force_residual
            )
            if checked == 0 and not findings:
                report.skipped["ifaces"] = (
                    "no interface files on disk (run `mspec build` or "
                    "`mspec analyze` first)"
                )
            else:
                report.extend(findings)
                metrics.counter("check.iface_findings").inc(len(findings))
                report.count("check.iface_findings", len(findings))

        # -- pass 3: differential fuzzing --------------------------------
        for i in range(fuzz):
            case = generate_case(seed + i)
            with tracer.span(
                "check.diff", cat="check", seed=case.seed
            ):
                failures = run_case(
                    case,
                    jobs_widths=jobs_widths,
                    timeout=timeout,
                    obs=obs,
                    strategy_matrix=strategy_matrix,
                )
            metrics.counter("check.programs").inc()
            report.count("check.programs")
            if not failures:
                continue
            metrics.counter("check.divergences").inc()
            report.count("check.divergences")
            minimised = None
            if minimise:
                minimised = minimise_case(case, timeout=timeout)
                removed = _program_size(case.source) - _program_size(
                    minimised
                )
                if removed > 0:
                    metrics.counter("check.minimise_deletions").inc(
                        removed
                    )
            bundle_path = _write_case_bundle(
                src_dir, bundle_dir, case, failures, minimised
            )
            report.bundles.append(bundle_path)
            metrics.counter("check.bundles").inc()
            report.findings.append(
                Finding(
                    check_pass="diff",
                    rule="divergence",
                    where="seed %d" % case.seed,
                    message=_summarise(failures),
                    details=(("bundle", bundle_path),),
                )
            )
    return report


def _write_case_bundle(src_dir, bundle_dir, case, failures, minimised):
    bundle_dir = bundle_dir or os.path.join(
        str(src_dir), DEFAULT_BUNDLE_DIRNAME
    )
    os.makedirs(bundle_dir, exist_ok=True)
    path = os.path.join(bundle_dir, "bundle-seed%06d.json" % case.seed)
    write_bundle(path, make_bundle(case, failures, minimised))
    return path


def replay(bundle_path, jobs_widths=(1,), timeout=None, obs=None):
    """Re-run a repro bundle; returns ``(case, failures)`` — an empty
    failure list means the divergence no longer reproduces."""
    doc = read_bundle(bundle_path)
    case = case_from_bundle(doc)
    failures = run_case(
        case, jobs_widths=jobs_widths, timeout=timeout, obs=obs
    )
    return case, failures


def case_from_bundle(doc, minimised=False):
    """Rebuild the :class:`GeneratedCase` a bundle captured.  With
    ``minimised=True`` (and a minimised source present) the reduced
    program is replayed instead of the full one."""
    source = doc["source"]
    if minimised and doc.get("minimised_source"):
        source = doc["minimised_source"]
    return GeneratedCase(
        seed=int(doc["seed"]),
        source=source,
        goal=doc["goal"],
        static_args=dict(doc["static_args"]),
        static_variants=tuple(
            dict(v) for v in doc.get("static_variants", [doc["static_args"]])
        ),
        dyn_inputs=tuple(tuple(v) for v in doc["dyn_inputs"]),
        params=tuple(doc["params"]),
    )
