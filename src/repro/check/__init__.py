"""Cross-layer correctness harness (``mspec check``).

The paper's claim is that per-module BTA + cogen is *sound without
seeing the uses*: linking independently generated extensions and running
them must compute exactly what the source program computes, and a
module's published binding-time interface must stay consistent with what
its importers assumed.  Nothing in the toolchain enforced that end to
end — this package does, with three passes:

* :mod:`repro.check.diff` — differential testing: a seeded generator of
  well-typed multi-module programs (:mod:`repro.check.gen`) and an
  oracle that runs each program four ways (direct interpretation, mix
  specialisation + residual run, genext specialisation + residual run,
  warm-cache replay) and asserts value equality and byte-identity of
  residual programs across ``--jobs`` widths and cache temperature.
  Divergences are minimised by iterative definition deletion and written
  as replayable JSON repro bundles.

* :mod:`repro.check.ifaces` — interface fsck: re-derives each module's
  principal binding-time schemes from source and diffs them against the
  committed ``*.bti`` files and against every importer's recorded
  assumptions — the stale-interface skew the digest cache cannot see.

* :mod:`repro.check.lint` — annotation lint: the Fig. 2 global
  invariants over analysed programs (coercions only go upward, each
  definition's unfold/residualise flag is exactly the lub of its body's
  conditional binding times, nothing dynamic reaches a static position
  uncoerced).

All passes emit structured :class:`Finding` records and ``check.*``
metrics; the CLI maps any error-severity finding to exit code 7.  See
``docs/correctness.md``.
"""

from repro.check.report import (
    CHECK_BUNDLE_SCHEMA,
    EXIT_CHECK_FAILED,
    CheckReport,
    Finding,
)

__all__ = [
    "CHECK_BUNDLE_SCHEMA",
    "CheckReport",
    "EXIT_CHECK_FAILED",
    "Finding",
    "run_check",
]


def run_check(*args, **kwargs):
    """See :func:`repro.check.driver.run_check` (imported lazily so that
    ``import repro.check`` stays cheap)."""
    from repro.check.driver import run_check as _run_check

    return _run_check(*args, **kwargs)
