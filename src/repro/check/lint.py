"""Annotation lint: the Fig. 2 global invariants over analysed programs.

:mod:`repro.anno.check` verifies well-annotatedness definition by
definition; this pass extends it with the three *global* invariants the
paper's annotated language (Fig. 2) promises, and reports structured
findings instead of raising on the first problem:

* ``coercion-upward`` — every coercion ``[α → β] e`` only raises
  binding times (``α ⊑ β`` pointwise on an identical shape; function
  components invariant);
* ``unfold-lub`` — each definition's unfold/residualise flag is
  *exactly* the least upper bound of its body's conditional binding
  times (the analysis computes the least solution, so anything above
  the lub is an annotation bug, not just imprecision); definitions
  forced residual by ``force_residual`` are only required to dominate
  the lub;
* ``static-position`` — no dynamic value flows into a static position
  uncoerced (the full well-annotatedness discipline, run per
  definition so one bad definition cannot mask another).

The pass is strategy-aware (``docs/analyses.md``): under
``unfolding="size-change"`` the ``unfold-lub`` rule is skipped (the
strategy's whole point is annotating below the lub) and the
well-annotatedness re-check drops unfold domination; under
``division="poly"`` every ground binding-time *version* of a definition
is additionally re-checked, so a bug in version grounding cannot hide
behind a well-annotated generic definition.
"""

from repro.anno.ast import ACoerce, AIf, walk_aexpr
from repro.anno.check import (
    AnnotationError,
    _Checker,
    bt_leq,
    coercion_violation,
)
from repro.bt.analysis import analyse_program, ground_adef
from repro.bt.bt import S, bt_lub
from repro.check.report import Finding


def _finding(rule, where, message, **details):
    return Finding(
        check_pass="lint",
        rule=rule,
        where=where,
        message=message,
        details=tuple(sorted(details.items())),
    )


def lint_def(module_name, d, defs, force_residual=frozenset(),
             unfolding="lub", where=None):
    """Findings for one annotated definition."""
    findings = []
    where = where or "%s.%s" % (module_name, d.name)

    # Rule 1: every coercion is upward.
    for node in walk_aexpr(d.body):
        if isinstance(node, ACoerce):
            reason = coercion_violation(node.src, node.dst)
            if reason is not None:
                findings.append(
                    _finding("coercion-upward", where, reason)
                )

    # Rule 2: unfold flag = lub of the body's conditional binding times.
    # Only meaningful under the Similix lub rule: size-change unfolding
    # annotates below the lub by design.
    if unfolding == "lub":
        conds = [n.bt for n in walk_aexpr(d.body) if isinstance(n, AIf)]
        lub = bt_lub(*conds) if conds else S
        if not bt_leq(lub, d.unfold):
            findings.append(
                _finding(
                    "unfold-lub",
                    where,
                    "unfold annotation %s does not dominate the lub %s of "
                    "the body's conditionals" % (d.unfold, lub),
                    unfold=str(d.unfold),
                    lub=str(lub),
                )
            )
        elif d.name not in force_residual and d.unfold != lub:
            findings.append(
                _finding(
                    "unfold-lub",
                    where,
                    "unfold annotation %s is not the lub %s of the body's "
                    "conditional binding times (not the least solution)"
                    % (d.unfold, lub),
                    unfold=str(d.unfold),
                    lub=str(lub),
                )
            )

    # Rule 3: nothing dynamic reaches a static position uncoerced —
    # the full per-definition well-annotatedness re-check.
    checker = _Checker(defs)
    checker.where = where
    try:
        checker.check_def(d, unfold_dominates=(unfolding == "lub"))
    except AnnotationError as exc:
        findings.append(_finding("static-position", where, str(exc)))
    return findings


def lint_versions(analysis, force_residual=frozenset(), unfolding="lub"):
    """Findings over every ground binding-time version of a polyvariant
    analysis: each version's grounded definition must itself be
    well-annotated (the generic definition passing does not imply the
    grounded ones do — grounding evaluates every symbolic binding time,
    which is exactly where a bad pattern would surface)."""
    findings = []
    defs = {}
    for m in analysis.modules:
        for d in m.annotated.defs:
            defs[d.name] = d
    for m in analysis.modules:
        amodule = m.annotated
        by_name = {d.name: d for d in amodule.defs}
        for name, versions in sorted(m.versions.items()):
            d = by_name[name]
            for v in versions:
                grounded = ground_adef(d, v.env(d.bt_params))
                where = "%s.%s[%s]" % (amodule.name, name, v.pattern_str)
                findings.extend(
                    lint_def(
                        amodule.name,
                        grounded,
                        defs,
                        force_residual,
                        unfolding=unfolding,
                        where=where,
                    )
                )
    return findings


def lint_aprogram(aprogram, force_residual=frozenset(), unfolding="lub"):
    """Findings over a whole annotated program."""
    defs = {}
    for m in aprogram.modules:
        for d in m.defs:
            defs[d.name] = d
    findings = []
    for m in aprogram.modules:
        for d in m.defs:
            findings.extend(
                lint_def(m.name, d, defs, force_residual, unfolding=unfolding)
            )
    return findings


def lint_linked(linked, force_residual=frozenset(), division="mono",
                unfolding="lub", max_bt_versions=8):
    """Analyse a linked program, then lint the annotation (and, under
    ``division="poly"``, every ground binding-time version)."""
    analysis = analyse_program(
        linked,
        force_residual=force_residual,
        division=division,
        unfolding=unfolding,
        max_bt_versions=max_bt_versions,
    )
    findings = lint_aprogram(
        analysis.annotated, force_residual, unfolding=unfolding
    )
    if division == "poly":
        findings.extend(
            lint_versions(analysis, force_residual, unfolding=unfolding)
        )
    return findings
