"""Compiling residual programs to executable Python.

The paper's Further Work (Sec. 8) proposes "constructing generating
extensions that produce native code directly — partial evaluators which
do so already exist.  This also paves the way for applying our ideas in
run-time code generation."  This package is that extension, with Python
as the "native" target:

* :mod:`repro.backend.pyemit` — a code generator from object-language
  programs (typically residual programs) to Python source;
* :mod:`repro.backend.rtcg` — run-time code generation: specialise,
  compile the residual program to Python, and hand back a callable, all
  in one step; as the paper notes, in this mode the residual program
  never needs to be divided into modules;
* :mod:`repro.backend.tiers` — the three-tier execution ladder:
  hotness-promoted goals climb interpret → residual-interpret →
  compiled, with the compiled artifact persisted in the speccache
  store (see docs/performance.md, "Execution tiers").
"""

from repro.backend.pyemit import CompiledProgram, compile_program, emit_python
from repro.backend.rtcg import generate
from repro.backend.tiers import TierLadder, TierPolicy, TierRun

__all__ = [
    "CompiledProgram",
    "TierLadder",
    "TierPolicy",
    "TierRun",
    "compile_program",
    "emit_python",
    "generate",
]
