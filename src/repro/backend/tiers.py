"""The three-tier execution ladder with persistent compiled residuals.

The paper's economics (Sec. 8, via LL94) end at *lowering*: a residual
program only beats the general one decisively once it stops being
interpreted.  :mod:`repro.backend.rtcg` compiles residuals, but its LRU
is process-local — every daemon worker, every batch run, every fresh
process re-parses ``resid.json`` and re-``compile()``s from scratch.
This module closes that gap with a hotness-driven ladder over three
execution tiers and a *persistent* compiled artifact next to the
cached residual payload:

* **tier 0** — interpret the general program (cold goals; no
  specialisation run at all);
* **tier 1** — specialise (or hit the residual cache) and interpret
  the residual program: today's path;
* **tier 2** — emit the residual as a real Python module via
  :mod:`repro.backend.pyemit`, ``compile()`` it, and run the entry
  natively.

Tier-2 artifacts are stored in the speccache object store under the
same :func:`~repro.speccache.residual_cache_key` as ``resid.json``:

* ``<key>.resid.py`` — the emitted Python source with a one-line
  ``# mspec:tier2 ...`` header naming the (mangled) entry function and
  the dynamic parameters.  This is the durable format: any interpreter
  can recompile it.
* ``<key>.code-<cache_tag>.bin`` — a marshalled record carrying the
  compiled code object, keyed by ``sys.implementation.cache_tag`` so
  interpreters never load each other's bytecode.

Loading probes in fallback order: in-process memo (one dict probe) →
marshalled code object (no parsing, no compiling) → recompile
``resid.py`` (self-healing the code artifact for the next process) →
tier 1.  Every fallback is silent; a damaged artifact is a miss, never
an error.  A persisted artifact counts as a *durable promotion*: a
cold process (e.g. a restarted daemon) serves a previously-hot goal at
tier 2 without re-specialising or re-``compile()``-ing from the AST.

Promotion is driven by per-(fingerprint, goal, static-args) hotness
counters against a :class:`TierPolicy` (``SpecOptions(tier_policy=)``,
``mspec serve --tier-hot N``): a goal is specialised after
``warm_after`` requests and compiled + persisted after ``hot_after``.

Counters land in the attached registry (``tier.t0_runs`` /
``t1_runs`` / ``t2_runs`` / ``memo_hits`` / ``promotions`` /
``code_loads`` / ``source_compiles`` / ``emitted``); each promotion
emits a ``tier.promote`` event on the bus.
"""

import marshal
import sys
import threading
import types
from collections import OrderedDict
from dataclasses import dataclass

from repro.backend.pyemit import _mangle, emit_python, mangle_table
from repro.pipeline.cache import ArtifactCache, CODE_KIND, RESID_PY_KIND

__all__ = [
    "DEFAULT_TIER_POLICY",
    "TIER2_SCHEMA",
    "TierFunction",
    "TierLadder",
    "TierPolicy",
    "TierRun",
    "clear_tiers",
    "emit_source",
    "load_compiled",
    "note_warm",
    "parse_source_header",
    "validate_code_bytes",
    "validate_source_bytes",
]

TIER2_SCHEMA = "repro.tier2/v1"

_HEADER_PREFIX = "# mspec:tier2 "


def _cache_tag():
    return sys.implementation.cache_tag or "unknown"


@dataclass(frozen=True)
class TierPolicy:
    """When a goal climbs the ladder.

    A goal's ``count``-th request (per fingerprint + goal + static
    args, 1-based) runs at tier 0 while ``count < warm_after``, at
    tier 1 while ``count < hot_after``, and is promoted to tier 2 at
    ``count >= hot_after``.  The defaults reproduce today's behaviour
    for the first requests (specialise immediately) and compile on the
    third.  ``persist=False`` keeps promotions process-local (no store
    writes)."""

    warm_after: int = 1
    hot_after: int = 3
    persist: bool = True

    def __post_init__(self):
        if self.warm_after < 0:
            raise ValueError(
                "warm_after must be >= 0, got %d" % self.warm_after
            )
        if self.hot_after < self.warm_after:
            raise ValueError(
                "hot_after (%d) must be >= warm_after (%d)"
                % (self.hot_after, self.warm_after)
            )


DEFAULT_TIER_POLICY = TierPolicy()


@dataclass(frozen=True)
class TierRun:
    """One ladder execution: the value, the tier that produced it, and
    where the tier-2 callable came from (``interp`` / ``residual`` /
    ``memo`` / ``code`` / ``source`` / ``emitted``)."""

    value: object
    tier: int
    origin: str


# ---------------------------------------------------------------------------
# Process-wide hotness counters and the compiled-callable memo.
#
# Shared across ladders (the daemon rebuilds its ladder on relink; the
# batch driver has no ladder object at all) and probed from concurrent
# request-handler threads, so both structures take their lock for every
# structural operation.  The expensive work — specialising, emitting,
# compiling — happens outside the locks.
# ---------------------------------------------------------------------------

_HOT_CAPACITY = 4096
_HOTNESS = OrderedDict()  # key -> request count, most-recent last
_HOT_LOCK = threading.Lock()

_MEMO_CAPACITY = 128
_MEMO = OrderedDict()  # key -> TierFunction, most-recent last
_MEMO_LOCK = threading.Lock()


def _bump(key):
    with _HOT_LOCK:
        n = _HOTNESS.get(key, 0) + 1
        _HOTNESS[key] = n
        _HOTNESS.move_to_end(key)
        while len(_HOTNESS) > _HOT_CAPACITY:
            _HOTNESS.popitem(last=False)
        return n


def _memo_get(key):
    with _MEMO_LOCK:
        fn = _MEMO.get(key)
        if fn is not None:
            _MEMO.move_to_end(key)
        return fn


def _memo_put(key, fn):
    with _MEMO_LOCK:
        _MEMO[key] = fn
        _MEMO.move_to_end(key)
        while len(_MEMO) > _MEMO_CAPACITY:
            _MEMO.popitem(last=False)


def clear_tiers():
    """Drop every hotness counter and memoised callable (test
    isolation; also how a "cold restart" is simulated in-process)."""
    with _HOT_LOCK:
        _HOTNESS.clear()
    with _MEMO_LOCK:
        _MEMO.clear()


def _count(obs, name, n=1):
    if obs is not None:
        obs.metrics.counter(name).inc(n)


# ---------------------------------------------------------------------------
# The tier-2 artifact formats.
# ---------------------------------------------------------------------------


class TierFunction:
    """A tier-2 callable: the entry function of a compiled residual."""

    __slots__ = ("entry", "entry_py", "dynamic_params", "namespace",
                 "source", "origin")

    def __init__(self, entry, entry_py, dynamic_params, namespace,
                 source=None, origin="emitted"):
        self.entry = entry
        self.entry_py = entry_py
        self.dynamic_params = tuple(dynamic_params)
        self.namespace = namespace
        self.source = source
        self.origin = origin

    def __call__(self, *dynamic_args):
        fn = self.namespace[self.entry_py]
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old, 100_000))
        try:
            return fn(*dynamic_args)
        finally:
            sys.setrecursionlimit(old)


def emit_source(result):
    """``(source_text, entry_py)`` for one
    :class:`~repro.genext.engine.SpecialisationResult`: the emitted
    Python module prefixed with the self-describing tier-2 header, so
    a loader needs neither ``resid.json`` nor a program parse."""
    program = result.program
    names = mangle_table(program)
    entry_py = names.get(result.entry) or _mangle(result.entry)
    header = "%sentry=%s entry_py=%s dynamic_params=%s\n" % (
        _HEADER_PREFIX,
        result.entry,
        entry_py,
        ",".join(result.dynamic_params),
    )
    return header + emit_python(program, names=names), entry_py


def parse_source_header(text):
    """``(entry, entry_py, dynamic_params)`` from an emitted
    ``resid.py``, or ``None`` when the header is missing/malformed."""
    line = text.split("\n", 1)[0]
    if not line.startswith(_HEADER_PREFIX):
        return None
    fields = {}
    for part in line[len(_HEADER_PREFIX):].split():
        if "=" not in part:
            return None
        k, v = part.split("=", 1)
        fields[k] = v
    entry = fields.get("entry")
    entry_py = fields.get("entry_py")
    if not entry or not entry_py or "dynamic_params" not in fields:
        return None
    params = tuple(p for p in fields["dynamic_params"].split(",") if p)
    return entry, entry_py, params


def _pack_code(entry, entry_py, dynamic_params, code):
    return marshal.dumps({
        "schema": TIER2_SCHEMA,
        "tag": _cache_tag(),
        "entry": entry,
        "entry_py": entry_py,
        "dynamic_params": list(dynamic_params),
        "code": code,
    })


def _unpack_code(data):
    """The tier-2 record in ``data`` if it is loadable by *this*
    interpreter, else ``None`` (any mismatch is a silent miss)."""
    try:
        record = marshal.loads(data)
    except Exception:
        return None
    if not isinstance(record, dict) or record.get("schema") != TIER2_SCHEMA:
        return None
    if record.get("tag") != _cache_tag():
        return None
    if not isinstance(record.get("code"), types.CodeType):
        return None
    if not isinstance(record.get("entry_py"), str):
        return None
    if not isinstance(record.get("dynamic_params"), list):
        return None
    return record


def validate_source_bytes(data):
    """``None`` if ``data`` is a healthy ``resid.py`` artifact, else a
    ``(category, reason)`` pair — ``"corrupt"`` for damage,
    ``"stale"`` for a well-formed artifact the loader would skip
    (fsck's validator for :data:`~repro.pipeline.cache.RESID_PY_KIND`)."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        return ("corrupt", "not UTF-8: %s" % exc)
    try:
        compile(text, "<resid.py>", "exec")
    except (SyntaxError, ValueError) as exc:
        return ("corrupt", "emitted source does not compile: %s" % exc)
    if parse_source_header(text) is None:
        return ("stale", "missing or malformed tier-2 header")
    return None


def validate_code_bytes(data):
    """``None`` if ``data`` is a tier-2 code artifact this interpreter
    can load, else ``(category, reason)`` like
    :func:`validate_source_bytes`.  A wrong or missing cache tag is
    ``"stale"``: the bytes are intact but useless here — the loader
    falls back to recompiling ``resid.py``."""
    try:
        record = marshal.loads(data)
    except Exception as exc:
        return ("corrupt", "does not unmarshal: %s" % exc)
    if isinstance(record, types.CodeType):
        # A bare marshalled code object: the store's original CODE_KIND
        # payload, still healthy.
        return None
    if not isinstance(record, dict) or record.get("schema") != TIER2_SCHEMA:
        return ("stale", "not a %s record" % TIER2_SCHEMA)
    if record.get("tag") != _cache_tag():
        return (
            "stale",
            "cache tag %r is not this interpreter's %r"
            % (record.get("tag"), _cache_tag()),
        )
    if not isinstance(record.get("code"), types.CodeType):
        return ("corrupt", "record carries no code object")
    if not isinstance(record.get("entry_py"), str) or not isinstance(
        record.get("dynamic_params"), list
    ):
        return ("corrupt", "missing entry or dynamic_params")
    return None


def _exec_namespace(code):
    namespace = {"__name__": "compiled_program"}
    exec(code, namespace)
    return namespace


def _compile_result(result, obs=None):
    """Emit + compile one specialisation result; returns the
    :class:`TierFunction` and the packed code-artifact bytes."""
    source, entry_py = emit_source(result)
    code = compile(source, "<tier2:%s>" % result.entry, "exec")
    fn = TierFunction(
        result.entry,
        entry_py,
        result.dynamic_params,
        _exec_namespace(code),
        source=source,
        origin="emitted",
    )
    _count(obs, "tier.emitted")
    return fn, _pack_code(result.entry, entry_py, result.dynamic_params, code)


def load_compiled(store, key, obs=None, self_heal=True):
    """Load the persisted tier-2 callable for ``key``, or ``None``.

    Probes the marshalled code object first (no parsing, no
    compiling); on a cache-tag or marshal mismatch falls back to
    recompiling ``resid.py`` — re-publishing a fresh code artifact for
    this interpreter unless ``self_heal`` is off — and on any further
    damage returns ``None`` (the caller drops to tier 1).  The
    fallback is accounted, not silent: each unusable code artifact
    bumps ``tier.code_decode_miss`` and emits a
    ``tier.code_decode_miss`` event naming the key and reason."""
    data = store.get_bytes(key, CODE_KIND)
    if data is not None:
        record = _unpack_code(data)
        namespace = None
        if record is not None:
            try:
                namespace = _exec_namespace(record["code"])
            except Exception:
                namespace = None
        if namespace is not None:
            _count(obs, "tier.code_loads")
            return TierFunction(
                record.get("entry", ""),
                record["entry_py"],
                record["dynamic_params"],
                namespace,
                origin="code",
            )
        # A code artifact existed but could not be used.  Expected
        # across interpreter upgrades (stale cache tag), a bug when it
        # happens on the interpreter that wrote the artifact — so the
        # miss is counted and announced, never silent.
        _count(obs, "tier.code_decode_miss")
        if obs is not None:
            obs.bus.emit(
                "tier.code_decode_miss",
                key=key,
                reason=(
                    "exec failed" if record is not None
                    else (validate_code_bytes(data) or ("stale", "?"))[1]
                ),
            )
    text = store.get_text(key, RESID_PY_KIND)
    if text is None:
        return None
    header = parse_source_header(text)
    if header is None:
        return None
    entry, entry_py, dynamic_params = header
    try:
        code = compile(text, store.path(key, RESID_PY_KIND), "exec")
        namespace = _exec_namespace(code)
    except Exception:
        return None
    _count(obs, "tier.source_compiles")
    if self_heal:
        store.put_bytes(
            key, CODE_KIND, _pack_code(entry, entry_py, dynamic_params, code)
        )
    return TierFunction(
        entry, entry_py, dynamic_params, namespace,
        source=text, origin="source",
    )


def _persist(store, key, fn, code_bytes):
    store.put_text(key, RESID_PY_KIND, fn.source)
    store.put_bytes(key, CODE_KIND, code_bytes)


def _promote(store, key, result, policy, obs, goal):
    """Compile ``result``, persist the artifacts (policy permitting),
    memoise, and account the promotion."""
    fn, code_bytes = _compile_result(result, obs=obs)
    if store is not None and policy.persist:
        _persist(store, key, fn, code_bytes)
    if key is not None:
        _memo_put(key, fn)
    _count(obs, "tier.promotions")
    if obs is not None:
        obs.bus.emit(
            "tier.promote", goal=goal, key=key, origin=fn.origin,
            persisted=bool(store is not None and policy.persist),
        )
    return fn


def note_warm(cache, key, goal, options, obs=None, result=None, payload=None):
    """Consult the ladder from a warm specialise path (daemon worker,
    batch driver's in-parent hit): bump the key's hotness and, at the
    policy's hot threshold, publish the tier-2 artifacts so executors
    load compiled code instead of re-interpreting.  ``cache`` is a
    :class:`~repro.speccache.SpecCache` or a bare
    :class:`~repro.pipeline.cache.ArtifactCache`; the residual comes
    from ``result`` or is decoded from ``payload`` (memoised, see
    :func:`repro.speccache.decode_result`).  Returns the promoted
    :class:`TierFunction` or ``None``."""
    policy = (options.tier_policy if options is not None else None) or (
        DEFAULT_TIER_POLICY
    )
    count = _bump(key)
    if count < policy.hot_after:
        return None
    fn = _memo_get(key)
    if fn is not None:
        return fn
    store = getattr(cache, "store", cache)
    if store is not None and store.has(key, CODE_KIND):
        fn = load_compiled(store, key, obs=obs)
        if fn is not None:
            _memo_put(key, fn)
            return fn
    if result is None and payload is not None:
        from repro.speccache import decode_result

        result = decode_result(payload, obs=obs)
    if result is None:
        return None
    return _promote(store, key, result, policy, obs, goal)


# ---------------------------------------------------------------------------
# The ladder.
# ---------------------------------------------------------------------------


class TierLadder:
    """Hotness-driven execution over one linked genext program.

    ``program`` (the *general* :class:`~repro.modsys.program.LinkedProgram`
    the genexts were compiled from) enables tier 0; without it cold
    goals start at tier 1.  ``options.cache_dir`` roots the persistent
    store (both the residual payloads tier 1 hits and the tier-2
    artifacts); ``options.tier_policy`` sets the thresholds.

    >>> import repro
    >>> from repro.backend.tiers import TierLadder
    >>> gp = repro.compile_genexts('''
    ... module Power where
    ...
    ... power n x = if n == 1 then x else x * power (n - 1) x
    ... ''')
    >>> ladder = TierLadder(gp)
    >>> [ladder.call("power", {"n": 3}, (5,)).tier for _ in range(4)]
    [1, 1, 2, 2]
    """

    def __init__(self, gp, options=None, obs=None, program=None, store=None):
        from repro.api import spec_options
        from repro.obs import Obs

        self.gp = gp
        self.options = spec_options("TierLadder", options, {})
        self.policy = self.options.tier_policy or DEFAULT_TIER_POLICY
        self.obs = obs if obs is not None else Obs()
        self.program = program
        if store is None and self.options.cache_dir is not None:
            store = ArtifactCache(self.options.cache_dir)
        self.store = store
        fingerprint = getattr(gp, "fingerprint", None)
        self._fingerprint = fingerprint() if callable(fingerprint) else None

    def key_for(self, goal, static_args):
        """The residual cache key of one request (``None`` when the
        program has no fingerprint — no caching identity, no ladder)."""
        if self._fingerprint is None:
            return None
        from repro.speccache import residual_cache_key

        return residual_cache_key(
            self._fingerprint, goal, static_args, self.options
        )

    def call(self, goal, static_args=None, dynamic_args=(), tier=None):
        """Execute ``goal`` on the given arguments; returns a
        :class:`TierRun`.  ``tier`` forces one rung (0/1/2) without
        touching the hotness counters — the differential checker's
        probe; ``None`` lets the ladder decide."""
        static_args = dict(static_args or {})
        dynamic_args = tuple(dynamic_args)
        key = self.key_for(goal, static_args)
        if tier is not None:
            return self._forced(tier, goal, static_args, dynamic_args, key)
        if key is None:
            return self._tier1(goal, static_args, dynamic_args)
        # The hot path: one dict probe + one native call.
        fn = _memo_get(key)
        if fn is not None:
            _count(self.obs, "tier.memo_hits")
            return self._run2(fn, dynamic_args, origin="memo")
        count = _bump(key)
        if self.store is not None:
            # A persisted artifact is a durable promotion: a cold
            # process serves a previously-hot goal at tier 2 at once.
            fn = load_compiled(self.store, key, obs=self.obs)
            if fn is not None:
                _memo_put(key, fn)
                return self._run2(fn, dynamic_args)
        if count >= self.policy.hot_after:
            result = self._specialise(goal, static_args)
            fn = _promote(
                self.store, key, result, self.policy, self.obs, goal
            )
            return self._run2(fn, dynamic_args)
        if count >= self.policy.warm_after or self.program is None:
            return self._tier1(goal, static_args, dynamic_args)
        return self._tier0(goal, static_args, dynamic_args)

    # -- the rungs ---------------------------------------------------

    def _forced(self, tier, goal, static_args, dynamic_args, key):
        if tier == 0:
            return self._tier0(goal, static_args, dynamic_args)
        if tier == 1:
            return self._tier1(goal, static_args, dynamic_args)
        if tier == 2:
            fn = _memo_get(key) if key is not None else None
            if fn is None and key is not None and self.store is not None:
                fn = load_compiled(self.store, key, obs=self.obs)
            if fn is None:
                result = self._specialise(goal, static_args)
                fn = _promote(
                    self.store, key, result, self.policy, self.obs, goal
                )
            elif key is not None:
                _memo_put(key, fn)
            return self._run2(fn, dynamic_args)
        raise ValueError("tier must be 0, 1 or 2, got %r" % (tier,))

    def _full_args(self, goal, static_args, dynamic_args):
        params = self.gp.signature(goal).params
        dyn = list(dynamic_args)
        args = []
        for p in params:
            if p in static_args:
                args.append(static_args[p])
            elif dyn:
                args.append(dyn.pop(0))
            else:
                raise TypeError(
                    "%s: missing dynamic argument for parameter %r"
                    % (goal, p)
                )
        if dyn:
            raise TypeError(
                "%s: %d extra dynamic argument(s)" % (goal, len(dyn))
            )
        return args

    def _tier0(self, goal, static_args, dynamic_args):
        if self.program is None:
            raise ValueError(
                "tier 0 needs the general source program "
                "(TierLadder(program=...))"
            )
        from repro.interp import run_program

        args = self._full_args(goal, static_args, dynamic_args)
        value = run_program(
            self.program, goal, args, fuel=self.options.fuel
        )
        _count(self.obs, "tier.t0_runs")
        return TierRun(value, 0, "interp")

    def _specialise(self, goal, static_args):
        from repro.genext.engine import specialise

        return specialise(
            self.gp, goal, static_args, self.options, obs=self.obs
        )

    def _tier1(self, goal, static_args, dynamic_args):
        result = self._specialise(goal, static_args)
        value = result.run(*dynamic_args, fuel=self.options.fuel)
        _count(self.obs, "tier.t1_runs")
        return TierRun(value, 1, "residual")

    def _run2(self, fn, dynamic_args, origin=None):
        value = fn(*dynamic_args)
        _count(self.obs, "tier.t2_runs")
        return TierRun(value, 2, origin or fn.origin)
