"""Run-time code generation (the paper's Sec. 8 outlook, via LL94).

``generate(gp, goal, static_args)`` specialises ``goal`` with respect to
the static arguments and immediately compiles the residual program to
Python, returning a callable over the dynamic arguments.  This is the
lightweight-RTCG workflow: the expensive preparation (analysis, cogen)
happened once per module, long before; code generation at run time is
just running the generating extensions plus one ``compile()``.
"""

from dataclasses import dataclass

from repro.backend.pyemit import compile_program
from repro.genext.engine import specialise


@dataclass
class GeneratedFunction:
    """A residual program compiled to a Python callable."""

    result: object  # the SpecialisationResult
    compiled: object  # the CompiledProgram

    @property
    def python_source(self):
        return self.compiled.source

    def __call__(self, *dynamic_args):
        return self.compiled.call(self.result.entry, *dynamic_args)


def generate(gp, goal, static_args=None, options=None, **legacy):
    """Specialise and compile in one step.

    >>> import repro
    >>> from repro.backend import generate
    >>> gp = repro.compile_genexts('''
    ... module Power where
    ...
    ... power n x = if n == 1 then x else x * power (n - 1) x
    ... ''')
    >>> cube = generate(gp, "power", {"n": 3})
    >>> cube(5)
    125
    """
    from repro.api import spec_options

    options = spec_options("generate", options, legacy)
    result = specialise(gp, goal, static_args, options)
    compiled = compile_program(result.program, filename="<rtcg:%s>" % goal)
    return GeneratedFunction(result, compiled)
