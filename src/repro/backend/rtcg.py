"""Run-time code generation (the paper's Sec. 8 outlook, via LL94).

``generate(gp, goal, static_args)`` specialises ``goal`` with respect to
the static arguments and immediately compiles the residual program to
Python, returning a callable over the dynamic arguments.  This is the
lightweight-RTCG workflow: the expensive preparation (analysis, cogen)
happened once per module, long before; code generation at run time is
just running the generating extensions plus one ``compile()``.

Serve-many-users path
---------------------

Repeated ``generate`` calls for the same request are the common case
when residual callables back a service (one compiled ``power_3`` serves
every user who asks for cubes).  ``generate`` therefore memoises its
:class:`GeneratedFunction` objects in a bounded, process-wide LRU keyed
exactly like the persistent residual cache
(:func:`repro.speccache.residual_cache_key`): program fingerprint +
goal + canonical static arguments + the semantically relevant
:class:`~repro.api.SpecOptions` fields.  A hit skips *both* the
specialisation run and the ``compile()`` — it is one dict probe — and
counts as ``rtcg.lru_hits`` in the run's metrics registry.  Inserts
that push the cache over capacity count ``rtcg.lru_evictions`` and
every insert refreshes the ``rtcg.lru_len`` gauge, so LRU pressure is
visible in ``--metrics`` output.  Use :func:`configure_lru` /
:func:`clear_lru` to size or reset the cache (capacity 0 disables
memoisation entirely).

The LRU is shared process-wide and the specialisation daemon
(:mod:`repro.serve`) probes it from concurrent request-handler threads,
so every structural operation (probe + move-to-end, insert + evict,
reconfigure, clear) holds :data:`_LRU_LOCK`.  The expensive work — the
specialisation run and the ``compile()`` — happens *outside* the lock;
two threads racing on the same cold key may both compute, and the last
insert wins (both callables are correct, nothing is ever torn).
"""

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.backend.pyemit import compile_program
from repro.genext.engine import specialise


@dataclass
class GeneratedFunction:
    """A residual program compiled to a Python callable."""

    result: object  # the SpecialisationResult
    compiled: object  # the CompiledProgram

    @property
    def python_source(self):
        return self.compiled.source

    def __call__(self, *dynamic_args):
        return self.compiled.call(self.result.entry, *dynamic_args)


_LRU_CAPACITY = 128
_LRU = OrderedDict()  # key -> GeneratedFunction, most-recent last
_LRU_LOCK = threading.RLock()  # guards _LRU and _LRU_CAPACITY


def configure_lru(capacity):
    """Set the LRU's capacity (evicting down if needed); 0 disables."""
    global _LRU_CAPACITY
    if capacity < 0:
        raise ValueError("capacity must be >= 0, got %d" % capacity)
    with _LRU_LOCK:
        _LRU_CAPACITY = capacity
        while len(_LRU) > _LRU_CAPACITY:
            _LRU.popitem(last=False)


def clear_lru():
    """Drop every memoised callable (test isolation, redeploys)."""
    with _LRU_LOCK:
        _LRU.clear()


def lru_len():
    """How many callables are currently memoised."""
    with _LRU_LOCK:
        return len(_LRU)


def generate(gp, goal, static_args=None, options=None, obs=None, **legacy):
    """Specialise and compile in one step.

    >>> import repro
    >>> from repro.backend import generate
    >>> gp = repro.compile_genexts('''
    ... module Power where
    ...
    ... power n x = if n == 1 then x else x * power (n - 1) x
    ... ''')
    >>> cube = generate(gp, "power", {"n": 3})
    >>> cube(5)
    125
    """
    from repro.api import spec_options
    from repro.obs import Obs

    options = spec_options("generate", options, legacy)
    if obs is None:
        obs = Obs()
    static_args = dict(static_args or {})

    key = None
    hit = None
    if options.sink is None:
        fingerprint = getattr(gp, "fingerprint", None)
        fingerprint = fingerprint() if callable(fingerprint) else None
        if fingerprint is not None:
            from repro.speccache import residual_cache_key

            probe_key = residual_cache_key(
                fingerprint, goal, static_args, options
            )
            with _LRU_LOCK:
                if _LRU_CAPACITY > 0:
                    key = probe_key
                    hit = _LRU.get(key)
                    if hit is not None:
                        _LRU.move_to_end(key)
            if hit is not None:
                obs.metrics.counter("rtcg.lru_hits").inc()
                obs.bus.emit("rtcg.lru_hit", goal=goal, key=key)
                return hit
            if key is not None:
                obs.metrics.counter("rtcg.lru_misses").inc()

    result = specialise(gp, goal, static_args, options, obs=obs)
    compiled = compile_program(result.program, filename="<rtcg:%s>" % goal)
    fn = GeneratedFunction(result, compiled)
    if key is not None:
        evicted = 0
        with _LRU_LOCK:
            if _LRU_CAPACITY > 0:
                _LRU[key] = fn
                _LRU.move_to_end(key)
                while len(_LRU) > _LRU_CAPACITY:
                    _LRU.popitem(last=False)
                    evicted += 1
            length = len(_LRU)
        # LRU pressure is part of the performance surface: evictions
        # say the working set outgrew the capacity, the gauge says how
        # full the cache runs (both in docs/performance.md).
        if evicted:
            obs.metrics.counter("rtcg.lru_evictions").inc(evicted)
        obs.metrics.gauge("rtcg.lru_len").set(length)
    return fn
