"""Parameterised modules (functors) — the paper's Further Work, built.

"It would be interesting to see if our techniques can be extended to
handle parameterised modules, such as those found in ML.  One problem
here is that the user would probably need to supply a binding-time
signature for the parameter modules, just as an ML programmer must
supply a type signature — since our binding-time analysis is a form of
type inference." (Sec. 8.)

This package implements exactly that workflow:

1. A functor is an ordinary module with function parameters:
   ``module Sort(le 2) where ...`` — the body may call ``le`` as a named
   function of arity 2.
2. The functor is **analysed and cogen'd once**, against a user-supplied
   binding-time signature for each parameter (a
   :class:`~repro.bt.scheme.BTScheme`; :func:`default_param_scheme`
   gives a sensible strict-function default).
3. Each **instantiation** binds the parameters to actual functions.
   Soundness is checked by *scheme subsumption*: the actual function's
   principal binding-time scheme must be at least as general as the
   signature the functor was analysed against.  No re-analysis, no
   re-cogen — the functor's generated module is simply executed in a
   fresh namespace with the parameter wired to the actual ``mk_``
   function and every exported name qualified by the instantiation.

See ``examples/functor_sort.py`` and ``tests/test_functor.py``.
"""

from repro.functor.core import (
    FunctorError,
    FunctorTemplate,
    default_param_scheme,
    make_functor,
    scheme_subsumes,
)

__all__ = [
    "FunctorError",
    "FunctorTemplate",
    "default_param_scheme",
    "make_functor",
    "scheme_subsumes",
]
