"""Functor analysis, subsumption checking, and instantiation."""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bt.analysis import analyse_module
from repro.bt.bttypes import BTTBase, BTTFun, BTTList, BTTPair, BTTSkel
from repro.bt.scheme import BTScheme
from repro.genext.cogen import cogen_module
from repro.genext.link import LoadedModule
from repro.lang.validate import resolve_module


class FunctorError(Exception):
    """A functor was declared, analysed, or instantiated incorrectly."""


def default_param_scheme(arity):
    """The default binding-time signature for a functor parameter: a
    strict first-order function — its result's binding time is the lub
    of its arguments' (top) binding times, and it residualises exactly
    when an argument is dynamic.

    Shape-wise the arguments and result are skeleton variables, so the
    functor body can use the parameter at any type.
    """
    args = tuple(BTTSkel(i, i) for i in range(arity))
    res = BTTSkel(arity, arity)
    edges = set()
    for i in range(arity):
        edges.add((i, arity))  # result absorbs every argument
        edges.add((i, arity + 1))  # unfold absorbs every argument
    edges.add((arity + 1, arity))  # residual result is dynamic
    return BTScheme(
        args=args,
        res=res,
        nslots=arity + 2,
        unfold=arity + 1,
        edges=frozenset(edges),
        dyn=frozenset(),
    )


# ---------------------------------------------------------------------------
# Scheme subsumption.
# ---------------------------------------------------------------------------


def _align(assumed, actual, mapping):
    """Map each slot of ``assumed`` to the corresponding slot of
    ``actual``; an assumed skeleton swallows the actual subtree, mapping
    only its top.  Returns False on shape mismatch."""
    if isinstance(assumed, BTTSkel):
        mapping.setdefault(assumed.bt, actual.bt)
        return mapping[assumed.bt] == actual.bt
    if type(assumed) is not type(actual):
        return False
    mapping.setdefault(assumed.bt, actual.bt)
    if mapping[assumed.bt] != actual.bt:
        return False
    if isinstance(assumed, BTTBase):
        return assumed.name == actual.name
    if isinstance(assumed, BTTList):
        return _align(assumed.elem, actual.elem, mapping)
    if isinstance(assumed, BTTPair):
        return _align(assumed.fst, actual.fst, mapping) and _align(
            assumed.snd, actual.snd, mapping
        )
    if isinstance(assumed, BTTFun):
        return _align(assumed.arg, actual.arg, mapping) and _align(
            assumed.res, actual.res, mapping
        )
    raise TypeError("not a binding-time type: %r" % (assumed,))


def scheme_subsumes(actual, assumed):
    """Is ``actual`` usable where ``assumed`` was promised?

    Sound when every constraint the actual function imposes was already
    assumed: after aligning slots, the actual's closure edges must be
    entailed by (reachable in) the assumed's closure, and its forced-
    dynamic slots must already be forced in the assumption.  Constraints
    wholly inside subtrees the assumption treats as opaque skeletons are
    the actual's own business — except edges *out of* such interior
    slots into visible ones, which the functor could not have known
    about and which therefore reject.
    """
    if len(actual.args) != len(assumed.args):
        return False
    mapping = {}  # assumed slot -> actual slot
    for a_assumed, a_actual in zip(assumed.args, actual.args):
        if not _align(a_assumed, a_actual, mapping):
            return False
    if not _align(assumed.res, actual.res, mapping):
        return False
    mapping[assumed.unfold] = actual.unfold

    # ABI compatibility: the functor's call sites pass binding-time
    # arguments for the *assumed* inputs, positionally; the actual's
    # generating version must accept exactly those.  Every actual input
    # must therefore be the image of the corresponding assumed input.
    assumed_inputs = assumed.inputs()
    actual_inputs = actual.inputs()
    if len(assumed_inputs) != len(actual_inputs):
        return False
    for a_slot, b_slot in zip(assumed_inputs, actual_inputs):
        if mapping.get(a_slot) != b_slot:
            return False

    visible = {v: k for k, v in mapping.items()}  # actual -> assumed
    # Reachability in the assumed scheme's constraint set.
    succ = {}
    for (a, b) in assumed.edges:
        succ.setdefault(a, set()).add(b)

    def reaches(a, b):
        seen = set()
        stack = [a]
        while stack:
            v = stack.pop()
            if v == b:
                return True
            if v in seen:
                continue
            seen.add(v)
            stack.extend(succ.get(v, ()))
        return a == b

    dyn_assumed = set(assumed.dyn)
    # Saturate assumed-dynamic forward.
    changed = True
    while changed:
        changed = False
        for (a, b) in assumed.edges:
            if a in dyn_assumed and b not in dyn_assumed:
                dyn_assumed.add(b)
                changed = True

    for (a, b) in actual.edges:
        va, vb = visible.get(a), visible.get(b)
        if vb is None:
            continue  # flows into opaque interior: invisible to the functor
        if va is None:
            return False  # interior constrains a visible slot: unknowable
        if not (reaches(va, vb) or vb in dyn_assumed):
            return False
    for s in actual.dyn:
        vs = visible.get(s)
        if vs is None:
            # A forced-dynamic interior slot in an argument would impose
            # structure on the values the functor passes in.
            if any(
                s in _slots(arg) for arg in actual.args
            ):
                return False
            continue
        if vs not in dyn_assumed:
            return False
    return True


def _slots(t):
    out = [t.bt]
    if isinstance(t, BTTList):
        out += _slots(t.elem)
    elif isinstance(t, BTTPair):
        out += _slots(t.fst) + _slots(t.snd)
    elif isinstance(t, BTTFun):
        out += _slots(t.arg) + _slots(t.res)
    return out


def _make_adapter(namespace, raw_name, assumed):
    """Wrap the actual parameter's generating version so its result is
    coerced to the binding-time type the functor assumed.

    Subsumption guarantees the actual's result is *at most as dynamic*
    as assumed, so a value-directed coercion to the assumed type (which
    dynamises exactly where the assumption says dynamic) restores the
    representation the functor's call sites were compiled against."""
    from repro.bt.bttypes import map_bts
    from repro.genext import runtime as rt
    from repro.specialiser.mix import runtime_type

    sol = assumed.solve_symbolic()
    res_sym = map_bts(assumed.res, lambda s: sol[s])
    names = assumed.input_names()
    n = len(names)

    def adapter(st, *rest):
        bts = rest[:n]
        args = rest[n:]
        out = namespace[raw_name](st, *bts, *args)
        btenv = dict(zip(names, bts))
        return rt.coerce(st, out, runtime_type(res_sym, btenv))

    return adapter


# ---------------------------------------------------------------------------
# Templates and instantiation.
# ---------------------------------------------------------------------------


@dataclass
class FunctorTemplate:
    """An analysed, cogen'd functor — prepared once and for all."""

    name: str
    params: Tuple[Tuple[str, int], ...]
    param_schemes: Dict[str, BTScheme]
    schemes: Dict[str, BTScheme]
    genext_source: str
    imports: Tuple[str, ...]

    def def_names(self):
        return tuple(self.schemes)

    def instantiate(self, inst_name, bindings, actual_schemes, check=True):
        """Create an instantiation as a loadable generating extension.

        ``bindings`` maps parameter names to actual function names;
        ``actual_schemes`` maps those actual names to their
        :class:`BTScheme` (from the analysis of their modules, e.g.
        ``analysis.schemes``).  Every exported function is renamed
        ``<prefix><name>`` where the prefix is the lower-cased
        instantiation name plus ``_``.
        """
        missing = {p for p, _ in self.params} - set(bindings)
        if missing:
            raise FunctorError(
                "instantiation %s leaves parameter(s) unbound: %s"
                % (inst_name, ", ".join(sorted(missing)))
            )
        if check:
            for pname, arity in self.params:
                actual = bindings[pname]
                if actual not in actual_schemes:
                    raise FunctorError(
                        "no binding-time scheme for actual parameter %r" % actual
                    )
                assumed = self.param_schemes[pname]
                if len(actual_schemes[actual].args) != arity:
                    raise FunctorError(
                        "parameter %r has arity %d but %r takes %d arguments"
                        % (pname, arity, actual, len(actual_schemes[actual].args))
                    )
                if not scheme_subsumes(actual_schemes[actual], assumed):
                    raise FunctorError(
                        "actual parameter %r does not satisfy the "
                        "binding-time signature assumed for %r:\n"
                        "  assumed: %s\n  actual:  %s"
                        % (actual, pname, assumed, actual_schemes[actual])
                    )
        prefix = inst_name[0].lower() + inst_name[1:] + "_"
        namespace = {
            "__name__": "genext_%s" % inst_name,
            "_MODULE_OVERRIDE": inst_name,
            "_QUAL_OVERRIDE": prefix,
        }
        code = compile(
            self.genext_source, "<functor:%s as %s>" % (self.name, inst_name), "exec"
        )
        exec(code, namespace)
        # Re-target the parameter imports at the actual functions —
        # through an adapter that coerces results back to the binding-time
        # type the functor's call sites assumed (the actual may return a
        # more static representation than the assumption promises).
        param_names = {p for p, _ in self.params}
        imported = {}
        for src, py in namespace["_IMPORTED"].items():
            if src in param_names:
                raw = "_raw" + py
                imported[bindings[src]] = raw
                namespace[py] = _make_adapter(
                    namespace, raw, self.param_schemes[src]
                )
            else:
                imported[src] = py
        namespace["_IMPORTED"] = imported
        return LoadedModule(inst_name, self.imports, namespace), prefix


def make_functor(module, imported_schemes=None, param_schemes=None,
                 force_residual=frozenset()):
    """Analyse and cogen a functor module (once and for all).

    ``module`` is a parsed :class:`~repro.lang.ast.Module` with
    parameters; ``imported_schemes`` are the binding-time interfaces of
    its imports; ``param_schemes`` override the default signature per
    parameter name.
    """
    if not module.is_functor:
        raise FunctorError("module %s has no parameters" % module.name)
    param_schemes = dict(param_schemes or {})
    for pname, arity in module.params:
        scheme = param_schemes.setdefault(pname, default_param_scheme(arity))
        if len(scheme.args) != arity:
            raise FunctorError(
                "signature for parameter %r has arity %d, declared %d"
                % (pname, len(scheme.args), arity)
            )
    imported = dict(imported_schemes or {})
    arities = {name: len(s.args) for name, s in imported.items()}
    for pname, arity in module.params:
        arities[pname] = arity
    resolved = resolve_module(module, arities)
    env = dict(imported)
    env.update({p: param_schemes[p] for p, _ in module.params})
    analysis = analyse_module(resolved, env, force_residual)
    genext = cogen_module(analysis)
    return FunctorTemplate(
        name=module.name,
        params=module.params,
        param_schemes=param_schemes,
        schemes=analysis.schemes,
        genext_source=genext.source,
        imports=genext.imports,
    )
