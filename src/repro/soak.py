"""`mspec soak`: endurance-test a live daemon under an armed fault plan.

ROADMAP item 4(c): a soak mode combining the serving path, the batch
driver, fault injection (``MSPEC_FAULTS``), and differential checking
over a sustained request stream.  :func:`run_soak` hammers a running
``mspec serve`` daemon with a **seeded request mix** from ``clients``
concurrent resilient clients (retry policy + circuit breaker armed, so
injected chaos — killed workers, dropped connections, stalled or
corrupted responses — must be absorbed, not surfaced), bounded by a
request count and/or wall-clock duration, and **differentially checks
every Nth response**:

* the served residual program must be **byte-identical** to a locally
  computed reference (one in-process ``specialise`` per unique request,
  memoised — the soak process never trusts the daemon's cache);
* when the mix supplies ``dyn_inputs``, the decoded residual is *run*
  on each dynamic vector and the value compared against direct
  interpretation of the source program — the ground truth.

A slice of the mix (``batch_every``) is routed through the parallel
batch driver (:func:`~repro.genext.batch.specialise_many`) in-process
instead, so both serving surfaces soak under the same plan.

The verdict is an **error budget**: at most ``max_client_errors``
client-visible failures (idempotent requests are retried, so the
default budget is zero) and at most ``max_divergences`` differential
divergences (default zero — a single one is a correctness bug).  The
report is a schema-validated ``repro.bench.soak/v1`` document
(``BENCH_soak.json``; see :func:`repro.obs.schema.validate_bench_soak`)
and the run's ``soak.*`` counters land in :mod:`repro.obs`.  Exit code
7 (``EXIT_CHECK_FAILED``) on budget breach, like ``mspec check``.

Request-mix file format (JSON list)::

    [{"goal": "power", "static_args": {"n": 3}, "dyn_inputs": [[2], [5]]},
     {"goal": "main", "static_args": {}}]

``static_args`` list values become object-language lists (the
``--batch`` convention); ``dyn_inputs`` is optional.
"""

import json
import os
import queue
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.api import SpecOptions
from repro.bt.analysis import analyse_program
from repro.check.report import EXIT_CHECK_FAILED
from repro.genext.cogen import cogen_program
from repro.genext.engine import specialise
from repro.genext.link import link_genexts
from repro.interp import run_program
from repro.modsys.program import load_program_dir
from repro.obs import Obs
from repro.obs.schema import BENCH_SOAK_SCHEMA
from repro.pipeline import faultinject
from repro.serve.client import (
    CircuitBreaker,
    RetryPolicy,
    ServeClient,
    ServeClientError,
)
from repro.serve.protocol import ERR_REJECTED
from repro.speccache import canonical_static_args, decode_result, encode_result

__all__ = ["SoakConfig", "load_request_mix", "run_soak"]

SOAK_FUEL = 600_000


@dataclass
class SoakConfig:
    """Everything one soak run can be told."""

    dir: str
    requests: list                      # the request mix (see module doc)
    socket_path: Optional[str] = None
    tcp: Optional[Tuple[str, int]] = None
    max_requests: int = 200
    duration: Optional[float] = None    # wall-clock bound, None = count only
    clients: int = 2
    check_every: int = 5                # differential-check every Nth request
    batch_every: int = 0                # every Nth request via the batch driver
    batch_jobs: int = 2
    seed: int = 0
    request_timeout: float = 30.0
    connect_timeout: float = 30.0
    retry_attempts: int = 6
    max_client_errors: int = 0
    max_divergences: int = 0
    options: SpecOptions = field(default_factory=SpecOptions)
    report_path: Optional[str] = None

    def __post_init__(self):
        if not self.requests:
            raise ValueError("the request mix must not be empty")
        if self.max_requests < 1:
            raise ValueError(
                "max_requests must be >= 1, got %d" % self.max_requests
            )
        if self.clients < 1:
            raise ValueError("clients must be >= 1, got %d" % self.clients)
        if self.check_every < 1:
            raise ValueError(
                "check_every must be >= 1, got %d" % self.check_every
            )
        if (self.socket_path is None) == (self.tcp is None):
            raise ValueError("give exactly one of socket_path or tcp")


def load_request_mix(path):
    """The request-mix list from a JSON file, validated."""
    with open(path) as f:
        mix = json.load(f)
    if not isinstance(mix, list) or not mix:
        raise ValueError("request mix must be a non-empty JSON list")
    for i, entry in enumerate(mix):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("goal"), str
        ):
            raise ValueError("request %d needs a 'goal' string" % i)
        static = entry.get("static_args", {})
        if not isinstance(static, dict):
            raise ValueError("request %d: static_args must be an object" % i)
        dyn = entry.get("dyn_inputs", [])
        if not isinstance(dyn, list) or not all(
            isinstance(vec, list) for vec in dyn
        ):
            raise ValueError(
                "request %d: dyn_inputs must be a list of lists" % i
            )
    return mix


class _Oracle:
    """Local ground truth: the program linked once in the soak process,
    reference residuals memoised per unique request, interp values per
    dynamic vector.  The oracle shares **no state** with the daemon —
    agreement between the two is the whole point of the check."""

    def __init__(self, directory, options):
        self.linked = load_program_dir(directory)
        analysis = analyse_program(
            self.linked, force_residual=options.force_residual
        )
        self.gp = link_genexts(cogen_program(analysis))
        # Execution knobs only; never a cache_dir — the reference is
        # always computed, never replayed.
        self.options = options.replace(cache_dir=None)
        self._lock = threading.Lock()
        self._residuals = {}
        self._values = {}

    @staticmethod
    def _key(goal, static_args):
        return (goal, canonical_static_args(static_args))

    def reference_payload(self, goal, static_args):
        """The canonical ``repro.speccache/v1`` payload this request
        must produce (memoised)."""
        key = self._key(goal, static_args)
        with self._lock:
            payload = self._residuals.get(key)
        if payload is not None:
            return payload
        result = specialise(self.gp, goal, dict(static_args), self.options)
        payload = encode_result(result)
        with self._lock:
            self._residuals[key] = payload
        return payload

    def expected_value(self, goal, static_args, vec):
        """Ground truth: the source program *interpreted* on the full
        argument list (statics by name, dynamics in order)."""
        key = (self._key(goal, static_args), tuple(vec))
        with self._lock:
            if key in self._values:
                return self._values[key]
        _, d = self.linked.find_def(goal)
        dyn = iter(vec)
        full = [
            static_args[p] if p in static_args else next(dyn)
            for p in d.params
        ]
        value = run_program(self.linked, goal, full, fuel=SOAK_FUEL)
        with self._lock:
            self._values[key] = value
        return value


def _normalise_mix(mix):
    """Wire-shaped requests: static list values → tuples (the protocol
    conversion), dyn vectors → tuples."""
    def conv(v):
        if isinstance(v, list):
            return tuple(conv(x) for x in v)
        return v

    out = []
    for entry in mix:
        out.append(
            {
                "goal": entry["goal"],
                "static_args": {
                    name: conv(v)
                    for name, v in (entry.get("static_args") or {}).items()
                },
                "dyn_inputs": [
                    tuple(vec) for vec in entry.get("dyn_inputs") or []
                ],
            }
        )
    return out


class _SoakRun:
    """Shared mutable state of one soak: tallies under one lock,
    bounded divergence details for the report."""

    def __init__(self, config, oracle):
        self.config = config
        self.oracle = oracle
        self.lock = threading.Lock()
        self.tally = {
            "sent": 0, "ok": 0, "warm": 0, "cold": 0, "rejected_seen": 0,
            "client_errors": 0, "skipped": 0, "checks": 0, "divergences": 0,
            "batch": 0, "batch_failures": 0,
        }
        self.details = []
        self.deadline = (
            None
            if config.duration is None
            else time.monotonic() + config.duration
        )

    def bump(self, key, n=1):
        with self.lock:
            self.tally[key] += n

    def note_divergence(self, description, **info):
        with self.lock:
            self.tally["divergences"] += 1
            if len(self.details) < 20:
                doc = {"what": description}
                doc.update(info)
                self.details.append(doc)

    def expired(self):
        return self.deadline is not None and time.monotonic() > self.deadline

    # -- one daemon request --------------------------------------------------

    def check_response(self, index, request, response):
        """Differential check of one successful daemon response."""
        goal = request["goal"]
        static = request["static_args"]
        self.bump("checks")
        payload = response.get("result") or {}
        try:
            reference = self.oracle.reference_payload(goal, static)
        except Exception as exc:
            self.note_divergence(
                "reference specialisation failed", index=index, goal=goal,
                error=str(exc),
            )
            return
        if payload.get("program") != reference["program"]:
            self.note_divergence(
                "served residual differs from local reference",
                index=index, goal=goal, served=response.get("served"),
            )
            return
        for vec in request["dyn_inputs"]:
            try:
                expected = self.oracle.expected_value(goal, static, vec)
                decoded = decode_result(payload)
                got = decoded.run(*vec, fuel=SOAK_FUEL)
            except Exception as exc:
                self.note_divergence(
                    "residual execution failed", index=index, goal=goal,
                    dyn=list(vec), error=str(exc),
                )
                continue
            if got != expected:
                self.note_divergence(
                    "residual value disagrees with interpreter",
                    index=index, goal=goal, dyn=list(vec),
                    expected=expected, got=got,
                )

    def serve_one(self, client, index, request):
        self.bump("sent")
        try:
            response = client.specialise(
                request["goal"], request["static_args"]
            )
        except ServeClientError as exc:
            self.bump("client_errors")
            with self.lock:
                if len(self.details) < 20:
                    self.details.append(
                        {
                            "what": "client-visible error",
                            "index": index,
                            "goal": request["goal"],
                            "error": str(exc),
                        }
                    )
            return
        if not response.get("ok"):
            code = (response.get("error") or {}).get("code")
            if code == ERR_REJECTED:
                self.bump("rejected_seen")
            self.bump("client_errors")
            with self.lock:
                if len(self.details) < 20:
                    self.details.append(
                        {
                            "what": "request failed",
                            "index": index,
                            "goal": request["goal"],
                            "code": code,
                        }
                    )
            return
        self.bump("ok")
        self.bump("warm" if response.get("served") == "warm" else "cold")
        if index % self.config.check_every == 0:
            self.check_response(index, request, response)


def _client_worker(run, tasks):
    """One soak client thread: a resilient connection draining tasks."""
    config = run.config
    retry = RetryPolicy(attempts=config.retry_attempts)
    breaker = CircuitBreaker(failure_threshold=max(4, config.retry_attempts))
    try:
        client = ServeClient.wait_ready(
            socket_path=config.socket_path,
            tcp=config.tcp,
            timeout=config.connect_timeout,
            request_timeout=config.request_timeout,
            retry=retry,
            breaker=breaker,
        )
    except ServeClientError:
        # Count everything this thread would have served as failed —
        # a daemon that never comes up must not look like a clean soak.
        while True:
            try:
                index, request = tasks.get_nowait()
            except queue.Empty:
                return None
            run.bump("sent")
            run.bump("client_errors")
    try:
        while True:
            try:
                index, request = tasks.get_nowait()
            except queue.Empty:
                break
            if run.expired():
                run.bump("skipped")
                continue
            run.serve_one(client, index, request)
        return dict(client.stats)
    finally:
        client.close()


def _batch_lane(run, requests):
    """Route a slice of the mix through the parallel batch driver with
    a private cold cache; byte-compare every result to the oracle."""
    from repro.genext.batch import specialise_many

    if not requests:
        return
    config = run.config
    run.bump("batch", len(requests))
    with tempfile.TemporaryDirectory(prefix="mspec-soak-") as tmp:
        try:
            batch = specialise_many(
                run.oracle.gp,
                [(r["goal"], r["static_args"]) for _, r in requests],
                config.options.replace(cache_dir=tmp),
                jobs=config.batch_jobs,
            )
        except Exception as exc:
            run.bump("batch_failures", len(requests))
            run.note_divergence(
                "batch driver failed outright", error=str(exc)
            )
            return
    for (index, request), result in zip(requests, batch.results):
        if result is None:
            run.bump("batch_failures")
            continue
        run.bump("checks")
        try:
            reference = run.oracle.reference_payload(
                request["goal"], request["static_args"]
            )
        except Exception as exc:
            run.note_divergence(
                "reference specialisation failed", index=index,
                goal=request["goal"], error=str(exc),
            )
            continue
        if encode_result(result)["program"] != reference["program"]:
            run.note_divergence(
                "batch residual differs from local reference",
                index=index, goal=request["goal"],
            )


def _fault_plan_summary():
    """What is armed right now, for the report's workload section."""
    plan = faultinject.active_plan()
    if plan is None:
        return {"armed": False, "planned": 0}
    actions = {}
    planned = 0
    for fault in plan.faults:
        actions[fault.action] = actions.get(fault.action, 0) + fault.times
        planned += fault.times
    return {"armed": True, "planned": planned, "actions": actions}


def _daemon_fault_tally(config):
    """Faults the daemon actually performed, read off its live metrics
    (0 when the daemon is unreachable at tally time)."""
    try:
        with ServeClient.connect(
            config.socket_path, config.tcp, timeout=5.0, request_timeout=10.0
        ) as client:
            counters = (
                client.metrics().get("metrics", {}).get("counters", {})
            )
    except ServeClientError:
        return 0
    injected = 0
    for name in ("serve.faults_injected", "faults.crashes"):
        value = counters.get(name, 0)
        if isinstance(value, int) and value > 0:
            injected += value
    return injected


def run_soak(config, obs=None):
    """One bounded soak against a live daemon; returns
    ``(exit_code, report)`` and writes ``config.report_path`` if set."""
    if obs is None:
        obs = Obs()
    started = time.perf_counter()
    oracle = _Oracle(config.dir, config.options)
    run = _SoakRun(config, oracle)
    mix = _normalise_mix(config.requests)
    rng = random.Random(config.seed)

    # The seeded schedule: deterministic for a (mix, seed, count).
    tasks = queue.Queue()
    batch_slice = []
    scheduled = 0
    for index in range(1, config.max_requests + 1):
        request = rng.choice(mix)
        scheduled += 1
        if config.batch_every and index % config.batch_every == 0:
            batch_slice.append((index, request))
        else:
            tasks.put((index, request))

    client_stats = {"retries": 0, "reconnects": 0, "timeouts": 0}

    def _tracked(run, tasks):
        stats = _client_worker(run, tasks)
        if stats:
            with run.lock:
                for key in client_stats:
                    client_stats[key] += stats.get(key, 0)

    threads = [
        threading.Thread(target=_tracked, args=(run, tasks), daemon=True)
        for _ in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    _batch_lane(run, batch_slice)
    for thread in threads:
        thread.join()

    elapsed = time.perf_counter() - started
    tally = run.tally
    budget_ok = (
        tally["client_errors"] <= config.max_client_errors
        and tally["divergences"] <= config.max_divergences
        and tally["batch_failures"] == 0
    )

    metrics = obs.metrics
    metrics.counter("soak.requests").inc(tally["sent"])
    metrics.counter("soak.ok").inc(tally["ok"])
    metrics.counter("soak.client_errors").inc(tally["client_errors"])
    metrics.counter("soak.retries").inc(client_stats["retries"])
    metrics.counter("soak.rejected").inc(tally["rejected_seen"])
    metrics.counter("soak.batch_requests").inc(tally["batch"])
    metrics.counter("soak.checks").inc(tally["checks"])
    metrics.counter("soak.divergences").inc(tally["divergences"])

    plan_summary = _fault_plan_summary()
    report = {
        "schema": BENCH_SOAK_SCHEMA,
        "cpus": os.cpu_count() or 1,
        "workload": {
            "dir": os.path.abspath(config.dir),
            "mix_size": len(mix),
            "scheduled": scheduled,
            "clients": config.clients,
            "check_every": config.check_every,
            "batch_every": config.batch_every,
            "seed": config.seed,
            "duration_s": config.duration,
            "request_timeout_s": config.request_timeout,
            "retry_attempts": config.retry_attempts,
            "fault_plan": plan_summary,
        },
        "requests": {
            "sent": tally["sent"],
            "ok": tally["ok"],
            "warm": tally["warm"],
            "cold": tally["cold"],
            "rejected_seen": tally["rejected_seen"],
            "client_errors": tally["client_errors"],
            "retries": client_stats["retries"],
            "reconnects": client_stats["reconnects"],
            "timeouts": client_stats["timeouts"],
            "skipped": tally["skipped"],
            "batch": tally["batch"],
            "batch_failures": tally["batch_failures"],
        },
        "checks": {
            "performed": tally["checks"],
            "divergences": tally["divergences"],
        },
        "faults": {
            "planned": plan_summary["planned"],
            "injected": _daemon_fault_tally(config),
        },
        "error_budget": {
            "max_client_errors": config.max_client_errors,
            "max_divergences": config.max_divergences,
            "ok": budget_ok,
        },
        "ok": budget_ok,
        "seconds": elapsed,
    }
    if run.details:
        report["details"] = list(run.details)
    if config.report_path:
        with open(config.report_path, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    return (0 if budget_ok else EXIT_CHECK_FAILED), report
