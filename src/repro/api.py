"""The typed options facade: ``BuildOptions`` and ``SpecOptions``.

The growing keyword lists on :func:`~repro.pipeline.build.build_dir` and
:func:`~repro.genext.engine.specialise` (jobs, cache_dir, policy,
strategy, timeout, ...) are replaced by two frozen, keyword-only
dataclasses.  One object names a complete configuration, can be stored,
compared, logged, and passed through layers without each layer
re-declaring ten keywords:

.. code-block:: python

    from repro.api import BuildOptions, SpecOptions

    result = repro.build_dir(src, BuildOptions(jobs=4, keep_going=True))
    spec = repro.specialise(gp, "power", {"n": 3}, SpecOptions(strategy="dfs"))

Backwards compatibility: the old keyword signatures still work —
``build_dir(src, jobs=4)`` — but emit one :class:`DeprecationWarning`
per entry point (not one per call) through :func:`warn_legacy`.  The
test suite runs with ``-W error::DeprecationWarning``, so no in-tree
caller uses the legacy spellings.
"""

import sys
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, FrozenSet, Optional

from repro.pipeline.faults import FaultPolicy
from repro.pipeline.report import ModuleRebuild, RebuildReport

__all__ = [
    "BuildOptions",
    "SpecOptions",
    "ModuleRebuild",
    "RebuildReport",
    "LegacyOptionsWarning",
    "build_options",
    "spec_options",
    "warn_legacy",
]

# Frozen everywhere; keyword-only where the interpreter supports it
# (3.10+).  On 3.9 the fields are positional-capable but the documented
# API is keyword construction.
_DC_KW = {"frozen": True}
if sys.version_info >= (3, 10):
    _DC_KW["kw_only"] = True


class LegacyOptionsWarning(DeprecationWarning):
    """Legacy keyword options were used instead of an options object."""


@dataclass(**_DC_KW)
class BuildOptions:
    """Everything one build run can be told.

    ``policy`` wins over the ``keep_going``/``timeout``/``retries``
    convenience fields when both are given; :meth:`fault_policy`
    resolves them.  ``trace_path`` / ``metrics_path`` are output sinks:
    when set, :func:`~repro.pipeline.build.build_dir` enables tracing
    and writes the Chrome trace / metrics snapshot there even if the
    build fails.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    force_residual: FrozenSet[str] = frozenset()
    iface_dir: Optional[str] = None
    out_dir: Optional[str] = None
    keep_going: bool = False
    timeout: Optional[float] = None
    retries: int = 0
    policy: Optional[FaultPolicy] = None
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    # Definition-level incremental recompilation: on a module-key miss,
    # rebuild only the SCCs whose sources or read schemes changed,
    # against the previous build's per-def record.  False keys builds
    # at module granularity (whole dep interface digests), the PR-1
    # behaviour — useful as an A/B baseline and as a hard off switch.
    incremental: bool = True

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % self.jobs)
        if not isinstance(self.force_residual, frozenset):
            object.__setattr__(
                self, "force_residual", frozenset(self.force_residual or ())
            )

    def fault_policy(self):
        """The effective :class:`~repro.pipeline.faults.FaultPolicy`."""
        if self.policy is not None:
            return self.policy
        return FaultPolicy(
            timeout=self.timeout,
            retries=self.retries,
            keep_going=self.keep_going,
        )

    def replace(self, **changes):
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)


@dataclass(**_DC_KW)
class SpecOptions:
    """Everything one specialisation run can be told.

    ``fuel`` bounds the *residual program's* interpretation steps when
    the result is run (:meth:`SpecialisationResult.run`); ``timeout``
    bounds the specialisation run's wall clock; ``max_versions`` bounds
    its polyvariance.  ``force_residual`` is consumed by the analysis
    front ends (:func:`repro.compile_genexts`,
    :func:`repro.specialiser.mix_specialise`), as are the analysis
    strategies ``division`` (``"mono"``/``"poly"``, with
    ``max_bt_versions`` capping the per-definition binding-time
    versions) and ``unfolding`` (``"lub"``/``"size-change"``) — see
    ``docs/analyses.md``.

    ``cache_dir`` enables the persistent residual cache
    (:mod:`repro.speccache`): a repeated request is answered from disk
    without running the specialiser at all.  ``None`` (the default)
    disables it; runs with a ``sink`` are never cached (the caller
    wants the definitions streamed).  See ``docs/performance.md``.

    ``tier_policy`` (a :class:`repro.backend.tiers.TierPolicy`) sets
    the execution ladder's promotion thresholds for callers that run
    results through :class:`~repro.backend.tiers.TierLadder` — an
    execution knob like ``fuel``, so it never enters the residual
    cache key.  ``None`` leaves ladder users on the default policy and
    non-ladder paths untouched.
    """

    strategy: str = "bfs"
    fuel: int = 1_000_000
    timeout: Optional[float] = None
    force_residual: FrozenSet[str] = frozenset()
    sink: Optional[Callable[[Any, Any], None]] = field(default=None)
    monolithic: bool = False
    max_versions: Optional[int] = 10_000
    cache_dir: Optional[str] = None
    tier_policy: Optional[Any] = None
    # Analysis strategies (docs/analyses.md).  ``division="poly"``
    # clones definitions into per-pattern binding-time versions
    # (bounded by ``max_bt_versions``); ``unfolding="size-change"``
    # unfolds provably decreasing recursion instead of residualising
    # it.  The defaults reproduce the paper's behaviour exactly.
    division: str = "mono"
    unfolding: str = "lub"
    max_bt_versions: int = 8

    def __post_init__(self):
        if self.strategy not in ("bfs", "dfs"):
            raise ValueError(
                "strategy must be 'bfs' or 'dfs', got %r" % (self.strategy,)
            )
        if self.division not in ("mono", "poly"):
            raise ValueError(
                "division must be 'mono' or 'poly', got %r"
                % (self.division,)
            )
        if self.unfolding not in ("lub", "size-change"):
            raise ValueError(
                "unfolding must be 'lub' or 'size-change', got %r"
                % (self.unfolding,)
            )
        if self.max_bt_versions < 0:
            raise ValueError(
                "max_bt_versions must be >= 0, got %d"
                % (self.max_bt_versions,)
            )
        if not isinstance(self.force_residual, frozenset):
            object.__setattr__(
                self, "force_residual", frozenset(self.force_residual or ())
            )
        if self.tier_policy is not None:
            # Imported lazily: repro.backend pulls in the genext layer,
            # which this options facade must stay below.
            from repro.backend.tiers import TierPolicy

            if not isinstance(self.tier_policy, TierPolicy):
                raise TypeError(
                    "tier_policy must be a repro.backend.tiers.TierPolicy, "
                    "got %r" % (type(self.tier_policy).__name__,)
                )

    def replace(self, **changes):
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# The deprecation shim.
# ---------------------------------------------------------------------------

_warned_apis = set()


def warn_legacy(api_name, legacy_keys):
    """Emit the once-per-entry-point deprecation warning."""
    if api_name in _warned_apis:
        return
    _warned_apis.add(api_name)
    warnings.warn(
        "%s(%s=...) keyword options are deprecated; pass a single "
        "repro.api.%s instead (e.g. %s(..., %s(%s=...)))"
        % (
            api_name,
            "/".join(sorted(legacy_keys)),
            "BuildOptions" if api_name in _BUILD_APIS else "SpecOptions",
            api_name,
            "BuildOptions" if api_name in _BUILD_APIS else "SpecOptions",
            sorted(legacy_keys)[0],
        ),
        LegacyOptionsWarning,
        stacklevel=4,
    )


def _reset_legacy_warnings():
    """Test hook: make the next legacy call warn again."""
    _warned_apis.clear()


_BUILD_APIS = frozenset(["build_dir", "BuildEngine"])

_BUILD_FIELDS = frozenset(f.name for f in fields(BuildOptions))
_SPEC_FIELDS = frozenset(f.name for f in fields(SpecOptions))


def _coerce(api_name, options, legacy, cls, allowed):
    if legacy:
        unknown = set(legacy) - allowed
        if unknown:
            raise TypeError(
                "%s() got unexpected keyword argument(s): %s"
                % (api_name, ", ".join(sorted(unknown)))
            )
        if options is not None:
            raise TypeError(
                "%s() takes either an options object or legacy keywords, "
                "not both" % api_name
            )
        warn_legacy(api_name, legacy)
        return cls(**legacy)
    if options is None:
        return cls()
    if not isinstance(options, cls):
        raise TypeError(
            "%s() options must be a %s, got %r"
            % (api_name, cls.__name__, type(options).__name__)
        )
    return options


def build_options(api_name, options, legacy):
    """Resolve ``(options, **legacy)`` to one :class:`BuildOptions`."""
    return _coerce(api_name, options, legacy, BuildOptions, _BUILD_FIELDS)


def spec_options(api_name, options, legacy):
    """Resolve ``(options, **legacy)`` to one :class:`SpecOptions`."""
    return _coerce(api_name, options, legacy, SpecOptions, _SPEC_FIELDS)
