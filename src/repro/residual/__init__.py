"""Residual programs and their module structure (Sec. 5).

Specialised functions are placed, at first request, into residual modules
derived from the source module structure — possibly *combinations* of
source modules (the paper's ``A ∩ C`` / ``PowerTwice``).  This package
assembles the placed definitions into a well-formed residual program:
module naming, import computation (after code generation — the paper's
two-pass emission), empty-module elimination, and acyclicity checking.
"""

from repro.residual.emit import TwoPassEmitter, emit_program_dir
from repro.residual.module import assemble_program, combination_name
from repro.residual.normalise import normalise_program
from repro.residual.optimise import optimise_program

__all__ = [
    "TwoPassEmitter",
    "assemble_program",
    "combination_name",
    "emit_program_dir",
    "normalise_program",
    "optimise_program",
]
