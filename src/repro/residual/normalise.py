"""Canonical renaming of residual programs.

Breadth-first and depth-first specialisation "lead to equivalent residual
programs" (Sec. 2) — equivalent up to the order in which residual names
were allocated.  This pass renames residual functions and bound variables
canonically (by traversal order from the entry function) so equivalent
programs become syntactically equal; the test suite uses it to verify the
BFS/DFS equivalence claim.
"""

from repro.lang.ast import App, Call, Def, If, Lam, Lit, Module, Prim, Program, Var


def normalise_program(program, entry):
    """Rename functions and variables canonically, starting at ``entry``.

    Function names become ``fn0, fn1, ...`` in discovery order (entry
    first, then callees depth-first in body order); bound variables in
    each definition become ``v0, v1, ...`` in binding order.  Unreachable
    definitions are dropped (there should be none).  Module names are
    preserved; modules are re-ordered deterministically by name.
    """
    defs = {}
    home = {}
    for m in program.modules:
        for d in m.defs:
            defs[d.name] = d
            home[d.name] = m.name

    fn_names = {}

    def fn_name(old):
        if old not in fn_names:
            fn_names[old] = "fn%d" % len(fn_names)
        return fn_names[old]

    ordered = []
    seen = set()

    def visit(fname):
        if fname in seen:
            return
        seen.add(fname)
        fn_name(fname)
        ordered.append(fname)
        for callee in _calls_in_order(defs[fname].body):
            if callee in defs:
                visit(callee)

    visit(entry)

    new_defs = {}
    for fname in ordered:
        d = defs[fname]
        var_names = {}

        def bind(v):
            if v not in var_names:
                var_names[v] = "v%d" % len(var_names)
            return var_names[v]

        params = tuple(bind(p) for p in d.params)
        body = _rename(d.body, var_names, fn_names, bind)
        new_defs[fname] = Def(fn_name(fname), params, body)

    grouped = {}
    module_of_new = {}
    for fname in ordered:
        grouped.setdefault(home[fname], []).append(new_defs[fname])
        module_of_new[fn_names[fname]] = home[fname]
    modules = []
    for m in sorted(grouped):
        refs = set()
        for d in grouped[m]:
            refs.update(_calls_in_order(d.body))
        imports = tuple(
            sorted(
                {
                    module_of_new[f]
                    for f in refs
                    if f in module_of_new and module_of_new[f] != m
                }
            )
        )
        modules.append(Module(m, imports, tuple(grouped[m])))
    return Program(tuple(modules))


def _calls_in_order(expr):
    """Called function names in left-to-right body order (with repeats
    removed, first occurrence wins)."""
    out = []
    seen = set()

    def go(e):
        if isinstance(e, (Lit, Var)):
            return
        if isinstance(e, Prim):
            for a in e.args:
                go(a)
            return
        if isinstance(e, If):
            go(e.cond)
            go(e.then_branch)
            go(e.else_branch)
            return
        if isinstance(e, Call):
            if e.func not in seen:
                seen.add(e.func)
                out.append(e.func)
            for a in e.args:
                go(a)
            return
        if isinstance(e, Lam):
            go(e.body)
            return
        if isinstance(e, App):
            go(e.fun)
            go(e.arg)
            return
        raise TypeError(e)

    go(expr)
    return out


def _rename(expr, var_names, fn_names, bind):
    def go(e):
        if isinstance(e, Lit):
            return e
        if isinstance(e, Var):
            return Var(var_names.get(e.name, e.name))
        if isinstance(e, Prim):
            return Prim(e.op, tuple(go(a) for a in e.args))
        if isinstance(e, If):
            return If(go(e.cond), go(e.then_branch), go(e.else_branch))
        if isinstance(e, Call):
            return Call(fn_names.get(e.func, e.func), tuple(go(a) for a in e.args))
        if isinstance(e, Lam):
            new = bind(e.var)
            return Lam(new, go(e.body))
        if isinstance(e, App):
            return App(go(e.fun), go(e.arg))
        raise TypeError(e)

    return go(expr)
