"""Post-processing of residual programs.

Specialisation by unfolding can *duplicate dynamic code*: unfolding
``dot ks (window 3 xs)`` copies the ``window`` expression into every
kernel tap.  The paper's little language (like ours) has no let-binding
in the source, so its specialiser exhibits the same duplication.  This
optional post-pass repairs it on the residual program:

* **common-subexpression elimination** — repeated non-trivial pure
  subexpressions of a body are bound once with the ``let`` sugar
  (a static beta-redex, ``(\\v -> ...) @ e``) and reused;
* **constant folding** — primitive applications over literals are
  evaluated (sound: primitives are pure; faulting expressions such as
  ``head nil`` are left in place to preserve semantics);
* **algebraic simplification** — unit/absorber laws for the naturals
  and booleans (``x * 1``, ``x + 0``, ``true && e`` ...), and
  ``if true/false`` reduction.

All rewrites preserve call-by-value semantics *including* faults: an
expression is only deduplicated or deleted when it is syntactically pure
and total (literals/variables are; anything that can fault is shared,
never dropped).
"""

from collections import Counter

from repro.lang.ast import App, Call, Def, If, Lam, Lit, Module, Prim, Program, Var
from repro.lang.names import NameSupply, free_vars
from repro.lang.prims import PrimError, apply_prim


# ---------------------------------------------------------------------------
# Constant folding and algebraic simplification.
# ---------------------------------------------------------------------------


def _lit_value(e):
    return e.value if isinstance(e, Lit) else None


def simplify(e):
    """Bottom-up constant folding + algebraic laws.  Never changes
    semantics: partial primitives are folded only when they succeed, and
    no possibly-faulting subexpression is discarded."""
    if isinstance(e, (Lit, Var)):
        return e
    if isinstance(e, Prim):
        args = tuple(simplify(a) for a in e.args)
        values = [_lit_value(a) for a in args]
        if all(v is not None for v in values):
            try:
                return Lit(apply_prim(e.op, values))
            except (PrimError, ValueError):
                return Prim(e.op, args)
        return _algebraic(Prim(e.op, args))
    if isinstance(e, If):
        cond = simplify(e.cond)
        if isinstance(cond, Lit) and isinstance(cond.value, bool):
            return simplify(e.then_branch if cond.value else e.else_branch)
        return If(cond, simplify(e.then_branch), simplify(e.else_branch))
    if isinstance(e, Call):
        return Call(e.func, tuple(simplify(a) for a in e.args))
    if isinstance(e, Lam):
        return Lam(e.var, simplify(e.body))
    if isinstance(e, App):
        return App(simplify(e.fun), simplify(e.arg))
    raise TypeError("not an expression: %r" % (e,))


def _total(e):
    """Syntactically pure *and total*: safe to discard or reorder."""
    if isinstance(e, (Lit, Var)):
        return True
    if isinstance(e, Prim) and e.op in ("cons", "pair"):
        return all(_total(a) for a in e.args)
    return False


def _algebraic(e):
    a, b = (e.args + (None, None))[:2]
    va, vb = _lit_value(a), _lit_value(b)
    # Structural projections over visible constructors.
    if e.op == "head" and isinstance(a, Prim) and a.op == "cons":
        if _total(a.args[1]):
            return a.args[0]
    if e.op == "tail" and isinstance(a, Prim) and a.op == "cons":
        if _total(a.args[0]):
            return a.args[1]
    if e.op == "null" and isinstance(a, Prim) and a.op == "cons":
        if all(_total(x) for x in a.args):
            return Lit(False)
    if e.op == "fst" and isinstance(a, Prim) and a.op == "pair":
        if _total(a.args[1]):
            return a.args[0]
    if e.op == "snd" and isinstance(a, Prim) and a.op == "pair":
        if _total(a.args[0]):
            return a.args[1]
    if e.op == "+":
        if va == 0:
            return b
        if vb == 0:
            return a
    elif e.op == "*":
        if va == 1:
            return b
        if vb == 1:
            return a
        # x * 0 / 0 * x cannot drop x (x is pure? only if total); fold
        # only when the other side is a variable or literal.
        if va == 0 and isinstance(b, (Var, Lit)):
            return Lit(0)
        if vb == 0 and isinstance(a, (Var, Lit)):
            return Lit(0)
    elif e.op == "-":
        if vb == 0:
            return a
    elif e.op == "and":
        if va is True:
            return b
        if vb is True:
            return a
        if va is False:
            return Lit(False)
    elif e.op == "or":
        if va is False:
            return b
        if vb is False:
            return a
        if va is True:
            return Lit(True)
    return e


# ---------------------------------------------------------------------------
# Common-subexpression elimination.
# ---------------------------------------------------------------------------


def _count_occurrences(e, counter):
    counter[e] += 1
    # Do not descend under binders: sharing across a lambda boundary
    # would change evaluation time under call-by-value.
    if isinstance(e, Lam):
        return
    from repro.lang.ast import children

    for c in children(e):
        _count_occurrences(c, counter)


def _sharable(e):
    """Worth binding: a non-trivial, binder-free, pure expression."""
    if isinstance(e, (Lit, Var)):
        return False
    if isinstance(e, (Lam,)):
        return False
    from repro.lang.ast import walk

    return all(not isinstance(x, Lam) for x in walk(e))


def eliminate_common_subexpressions(body, supply=None, min_size=2):
    """Bind repeated subexpressions of ``body`` with ``let``.

    Only expressions that occur at least twice *unconditionally* — i.e.
    counted along every path — would be safe to hoist in general; to stay
    conservative we hoist only subexpressions repeated within the same
    conditional branch or outside conditionals entirely.  Concretely:
    CSE is applied independently to each ``if`` branch and to the
    maximal branch-free regions, so no expression is ever computed on a
    path where the original program did not compute it.
    """
    supply = supply or NameSupply()

    def region(e):
        """Rewrite one branch-free region rooted at ``e``."""
        counter = Counter()
        _collect_region(e, counter)
        repeated = [
            expr
            for expr, n in counter.items()
            if n >= 2 and _sharable(expr) and _node_count(expr) >= min_size
        ]
        # Largest first so nested repeats collapse into one binding.
        repeated.sort(key=_node_count, reverse=True)
        out = descend(e)
        for expr in repeated:
            rewritten = descend_expr(expr)
            if _occurrences(out, rewritten) < 2:
                continue
            name = supply.fresh("s")
            out = App(Lam(name, _replace(out, rewritten, Var(name))), rewritten)
        return out

    def descend(e):
        """Copy ``e``, recursing into conditional branches as separate
        regions (their subexpressions are not counted here)."""
        if isinstance(e, If):
            return If(descend(e.cond), region(e.then_branch), region(e.else_branch))
        if isinstance(e, (Lit, Var)):
            return e
        if isinstance(e, Prim):
            return Prim(e.op, tuple(descend(a) for a in e.args))
        if isinstance(e, Call):
            return Call(e.func, tuple(descend(a) for a in e.args))
        if isinstance(e, Lam):
            return Lam(e.var, region(e.body))
        if isinstance(e, App):
            return App(descend(e.fun), descend(e.arg))
        raise TypeError("not an expression: %r" % (e,))

    descend_expr = descend

    def _collect_region(e, counter):
        """Count subexpressions within the branch-free region."""
        if isinstance(e, If):
            _collect_region(e.cond, counter)
            return  # branches are separate regions
        if isinstance(e, Lam):
            return
        counter[e] += 1
        from repro.lang.ast import children

        for c in children(e):
            _collect_region(c, counter)

    return region(body)


def _node_count(e):
    from repro.lang.ast import count_nodes

    return count_nodes(e)


def _occurrences(e, target):
    from repro.lang.ast import walk

    return sum(1 for x in walk(e) if x == target)


def _replace(e, target, replacement):
    if e == target:
        return replacement
    if isinstance(e, (Lit, Var)):
        return e
    if isinstance(e, Prim):
        return Prim(e.op, tuple(_replace(a, target, replacement) for a in e.args))
    if isinstance(e, If):
        return If(
            _replace(e.cond, target, replacement),
            _replace(e.then_branch, target, replacement),
            _replace(e.else_branch, target, replacement),
        )
    if isinstance(e, Call):
        return Call(
            e.func, tuple(_replace(a, target, replacement) for a in e.args)
        )
    if isinstance(e, Lam):
        # The shared value is computed once outside; occurrences under a
        # lambda may reuse it — unless the lambda's binder captures a
        # variable of the target, in which case inner occurrences denote
        # different values and must stay.
        if e.var in free_vars(target):
            return e
        return Lam(e.var, _replace(e.body, target, replacement))
    if isinstance(e, App):
        return App(
            _replace(e.fun, target, replacement),
            _replace(e.arg, target, replacement),
        )
    raise TypeError("not an expression: %r" % (e,))


# ---------------------------------------------------------------------------
# Whole-program driver.
# ---------------------------------------------------------------------------


def optimise_def(d, supply=None, cse=True, fold=True):
    body = d.body
    if fold:
        body = simplify(body)
    if cse:
        body = eliminate_common_subexpressions(body, supply)
    if fold:
        body = simplify(body)
    return Def(d.name, d.params, body)


def optimise_program(program, cse=True, fold=True):
    """Optimise every definition of a residual program."""
    supply = NameSupply()
    modules = []
    for m in program.modules:
        modules.append(
            Module(
                m.name,
                m.imports,
                tuple(optimise_def(d, supply, cse=cse, fold=fold) for d in m.defs),
            )
        )
    return Program(tuple(modules))
