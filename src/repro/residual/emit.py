"""Two-pass emission of residual programs to disk.

"Since import statements appear at the beginning of a module this compels
us to use two passes: the first pass generates module bodies in temporary
files, and the second pass generates module headers and imports, and then
copies the module bodies after them." (Sec. 5.)

:class:`TwoPassEmitter` is a sink for
:class:`~repro.genext.runtime.SpecState`: every residual definition is
appended to its combination's temporary body file *as soon as it is
constructed* (the paper's memory-consumption measure — no finished
specialisation is retained in memory).  ``finish`` runs the second pass.
"""

import os
import tempfile

from repro.lang.names import called_functions
from repro.lang.pretty import pretty_def, pretty_module
from repro.residual.module import combination_name


class TwoPassEmitter:
    """Streams residual definitions to per-module temporary body files,
    then assembles final module files with computed import headers."""

    def __init__(self, out_dir):
        self.out_dir = out_dir
        self.tmp_dir = tempfile.mkdtemp(prefix="residual-bodies-")
        self._files = {}  # placement -> (path, file object)
        self._refs = {}  # placement -> set of referenced functions
        self._fn_home = {}  # function name -> placement
        self._counter = 0
        self.defs_written = 0

    # -- pass 1: bodies, streamed -----------------------------------------

    def __call__(self, placement, d):
        """Sink interface: record one finished residual definition."""
        placement = frozenset(placement)
        entry = self._files.get(placement)
        if entry is None:
            self._counter += 1
            path = os.path.join(self.tmp_dir, "body%d.tmp" % self._counter)
            entry = (path, open(path, "w"))
            self._files[placement] = entry
            self._refs[placement] = set()
        _, f = entry
        f.write(pretty_def(d) + "\n")
        self._refs[placement] |= called_functions(d.body)
        self._fn_home[d.name] = placement
        self.defs_written += 1

    # -- pass 2: headers + copy --------------------------------------------

    def finish(self):
        """Write final module files; returns {placement: module name}."""
        os.makedirs(self.out_dir, exist_ok=True)
        names = {}
        taken = set()
        for placement in self._files:
            name = combination_name(placement, taken)
            names[placement] = name
            taken.add(name)
        module_of_fn = {
            fn: names[pl] for fn, pl in self._fn_home.items()
        }
        for placement, (path, f) in self._files.items():
            f.close()
            mod_name = names[placement]
            imports = sorted(
                {
                    module_of_fn[fn]
                    for fn in self._refs[placement]
                    if fn in module_of_fn and module_of_fn[fn] != mod_name
                }
            )
            out_path = os.path.join(self.out_dir, mod_name + ".mod")
            with open(out_path, "w") as out:
                out.write("module %s where\n" % mod_name)
                for imp in imports:
                    out.write("import %s\n" % imp)
                out.write("\n")
                with open(path) as body:
                    out.write(body.read())
            os.unlink(path)
        os.rmdir(self.tmp_dir)
        return names


def emit_program_dir(program, out_dir):
    """Write an assembled residual program as one ``.mod`` file per
    module (the non-streaming path)."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for m in program.modules:
        path = os.path.join(out_dir, m.name + ".mod")
        with open(path, "w") as f:
            f.write(pretty_module(m))
        paths.append(path)
    return paths
