"""Assembling placed residual definitions into a module structure.

The placement algorithm (in :meth:`repro.genext.runtime.SpecState.place`)
assigns every specialisation a *combination* of source modules before its
body exists.  Once all bodies are built, this module:

* names each non-empty combination (``frozenset({'Power','Twice'})``
  becomes ``PowerTwice``), uniquifying on clashes;
* computes each residual module's imports by examining its code, so that
  every referenced module is imported (the paper's fix for ``h``'s
  residual version calling ``f`` from a module ``C`` never imported);
* never generates empty modules (only combinations that received code
  exist at all);
* checks the resulting import graph is acyclic — the property the
  paper's placement rule guarantees.
"""

from collections import OrderedDict

from repro.lang.ast import Module, Program
from repro.lang.names import called_functions
from repro.modsys.graph import CyclicImportError, ModuleGraph


class ResidualStructureError(Exception):
    """The residual program violates a structural guarantee (cyclic
    imports, dangling reference) — indicates a placement bug."""


def combination_name(parts, taken=()):
    """A printable module name for a combination of source modules.

    Single-module combinations keep the module's name; larger ones
    concatenate the sorted part names (``PowerTwice``).  ``taken`` names
    are avoided by appending a prime count."""
    parts = sorted(parts)
    name = "".join(parts) if parts else "Anon"
    candidate = name
    n = 1
    while candidate in taken:
        n += 1
        candidate = "%s_%d" % (name, n)
    return candidate


def assemble_program(placed_defs):
    """Build a residual :class:`~repro.lang.ast.Program`.

    ``placed_defs`` is a sequence of ``(placement frozenset, Def)``.
    Returns ``(program, names)`` where ``names`` maps each placement to
    its residual module name.  Modules appear in a deterministic
    dependency-respecting order."""
    groups = OrderedDict()
    for placement, d in placed_defs:
        groups.setdefault(frozenset(placement), []).append(d)

    names = {}
    taken = set()
    for placement in groups:
        name = combination_name(placement, taken)
        names[placement] = name
        taken.add(name)

    module_of_fn = {}
    for placement, defs in groups.items():
        for d in defs:
            module_of_fn[d.name] = names[placement]

    modules = []
    imports_map = {}
    for placement, defs in groups.items():
        mod_name = names[placement]
        refs = set()
        for d in defs:
            refs |= called_functions(d.body)
        dangling = refs - set(module_of_fn)
        if dangling:
            raise ResidualStructureError(
                "residual code in %s references unknown function(s): %s"
                % (mod_name, ", ".join(sorted(dangling)))
            )
        imports = sorted(
            {module_of_fn[f] for f in refs if module_of_fn[f] != mod_name}
        )
        imports_map[mod_name] = imports
        modules.append(Module(mod_name, tuple(imports), tuple(defs)))

    graph = ModuleGraph({m.name: m.imports for m in modules})
    try:
        order = graph.topo_order()
    except CyclicImportError as e:
        # Only a genuine cycle is a placement-rule violation; any other
        # exception out of the graph is a bug and must propagate as-is.
        raise ResidualStructureError(
            "residual module imports are cyclic: %s" % e
        )
    by_name = {m.name: m for m in modules}
    program = Program(tuple(by_name[n] for n in order))
    return program, names


def assemble_monolithic(placed_defs, name="Residual"):
    """The non-module-sensitive alternative: one big residual module.

    Used by the comparison benches — this is what an ordinary
    specialiser produces."""
    defs = tuple(d for _, d in placed_defs)
    return Program((Module(name, (), defs),))
