"""Self-healing daemon supervision: ``mspec serve --supervise``.

A production daemon dies for reasons no in-process machinery can catch
— the OOM killer, a segfaulting extension, an operator's ``kill -9``.
:class:`Supervisor` runs the daemon (:func:`~repro.serve.daemon.
serve_forever`) in a **child process** and restarts it when it exits
abnormally, with capped exponential backoff so a crash loop never
busy-spins:

* exit code **0** is a graceful stop (the ``shutdown`` op, SIGTERM
  drain) — the supervisor stops too;
* any other exit (nonzero, or negative = killed by signal) is a crash
  — the supervisor waits ``min(cap, base * 2**n)`` seconds and forks a
  fresh daemon.  ``max_restarts`` bounds the loop (``None`` = forever).

Crash consistency needs no supervisor-side repair by construction:

* the **residual cache** is content-addressed with atomic
  (write-to-temp + rename) publishes, so a SIGKILL mid-store leaves
  either the old state or the new — never a torn entry.  The restarted
  daemon comes up correct, at worst cold for the interrupted request;
* the **stale unix socket** a killed daemon leaves behind is reclaimed
  by :func:`~repro.serve.daemon.make_transport`'s connect-probe (a dead
  socket is unlinked, a live one is never stolen).

The supervisor forwards SIGTERM/SIGINT to the child so an operator's
stop drains gracefully through the whole tree.  ``on_event`` receives
``(event, info)`` tuples (``started`` / ``restarting`` / ``stopped`` /
``gave_up``) — the CLI logs them, tests assert on them.
"""

import contextlib
import multiprocessing
import os
import signal
import threading
import time

from repro.serve.daemon import serve_forever

__all__ = ["Supervisor", "supervise", "supervised_daemon"]


class Supervisor:
    """Restart-on-crash wrapper around one daemon configuration."""

    def __init__(self, config, max_restarts=None, backoff_base=0.2,
                 backoff_cap=5.0, sleep=time.sleep, on_event=None):
        if max_restarts is not None and max_restarts < 0:
            raise ValueError(
                "max_restarts must be >= 0, got %d" % max_restarts
            )
        self.config = config
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._on_event = on_event
        self.process = None      # the live child, for tests/operators
        self.restarts = 0        # abnormal exits seen so far
        self._stop = threading.Event()

    def _notify(self, event, **info):
        if self._on_event is not None:
            self._on_event(event, info)

    def _spawn(self):
        process = multiprocessing.Process(
            target=serve_forever, args=(self.config,), name="mspec-serve"
        )
        process.start()
        self.process = process
        return process

    def stop(self):
        """Ask the running daemon (if any) to drain; the supervisor's
        :meth:`run` then returns instead of restarting."""
        self._stop.set()
        process = self.process
        if process is not None and process.is_alive():
            process.terminate()  # SIGTERM: the daemon drains gracefully

    def run(self):
        """Supervise until graceful stop or restart budget exhaustion;
        returns the exit code to report."""
        while True:
            if self._stop.is_set():
                self._notify("stopped", pid=None, exitcode=None)
                return 0
            process = self._spawn()
            self._notify("started", pid=process.pid, restarts=self.restarts)
            if self._stop.is_set():
                # stop() raced our spawn: its terminate() may have hit
                # the previous (dead) child, so signal this one too.
                process.terminate()
            process.join()
            code = process.exitcode
            if code == 0 or self._stop.is_set():
                self._notify("stopped", pid=process.pid, exitcode=code)
                return 0 if code == 0 else abs(code or 0)
            self.restarts += 1
            if (
                self.max_restarts is not None
                and self.restarts > self.max_restarts
            ):
                self._notify(
                    "gave_up", exitcode=code, restarts=self.restarts - 1
                )
                return abs(code or 1)
            delay = min(
                self.backoff_cap,
                self.backoff_base * (2.0 ** (self.restarts - 1)),
            )
            self._notify(
                "restarting", exitcode=code, restarts=self.restarts,
                delay=delay,
            )
            self._sleep(delay)
            if self._stop.is_set():
                self._notify("stopped", pid=None, exitcode=code)
                return abs(code or 0)


@contextlib.contextmanager
def supervised_daemon(config, **kwargs):
    """A supervised daemon running in the background for the caller's
    lifetime (tests, the soak harness's ``--spawn`` mode).  Yields the
    :class:`Supervisor`; on exit the daemon is drained via SIGTERM and
    the supervision thread joined."""
    supervisor = Supervisor(config, **kwargs)
    thread = threading.Thread(
        target=supervisor.run, name="mspec-supervise", daemon=True
    )
    thread.start()
    try:
        yield supervisor
    finally:
        supervisor.stop()
        thread.join(timeout=30.0)
        process = supervisor.process
        if process is not None and process.is_alive():  # pragma: no cover
            os.kill(process.pid, signal.SIGKILL)
            process.join(5.0)


def supervise(config, max_restarts=None, backoff_base=0.2, backoff_cap=5.0,
              on_event=None):
    """Run a supervised daemon in the foreground (the CLI entry point).

    SIGTERM/SIGINT stop the whole tree gracefully: the signal is
    forwarded to the daemon child, which drains and exits 0, and the
    supervisor follows.  Returns the process exit code.
    """
    supervisor = Supervisor(
        config,
        max_restarts=max_restarts,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        on_event=on_event,
    )
    installed = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            supervisor.stop()

        for signum in (signal.SIGTERM, signal.SIGINT):
            installed[signum] = signal.signal(signum, _on_signal)
    try:
        return supervisor.run()
    finally:
        for signum, old in installed.items():
            signal.signal(signum, old)
        process = supervisor.process
        if process is not None and process.is_alive():  # pragma: no cover
            process.terminate()
            process.join(5.0)
            if process.is_alive():
                os.kill(process.pid, signal.SIGKILL)
