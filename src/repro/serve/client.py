"""The Python client for a running ``mspec serve`` daemon.

One :class:`ServeClient` is one socket connection speaking the
``repro.serve/v1`` newline-delimited JSON protocol (:mod:`.protocol`).
Requests on a connection are strictly request/response in order, so a
client instance is not itself thread-safe — concurrent callers open one
client each (connections are cheap; the daemon's handler threads are
``daemon_threads``).

>>> with ServeClient.connect(socket_path=path) as client:   # doctest: +SKIP
...     response = client.specialise("power", {"n": 3})
...     print(response["result"]["program"])

:meth:`ServeClient.wait_ready` covers the startup race: it retries the
connection until the daemon's socket answers a ping, which is how the
CLI, the benchmark harness, and CI wait for a freshly spawned daemon.
"""

import socket
import time

from repro.serve import protocol

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(Exception):
    """The daemon could not be reached (connection, framing, EOF)."""


class ServeClient:
    """A connected protocol client; close it (or use ``with``)."""

    def __init__(self, sock, address):
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self.address = address

    # -- connecting ----------------------------------------------------------

    @classmethod
    def connect(cls, socket_path=None, tcp=None, timeout=10.0):
        """One connected client for a unix socket path or a
        ``(host, port)`` pair (exactly one must be given)."""
        if (socket_path is None) == (tcp is None):
            raise ValueError("give exactly one of socket_path or tcp")
        try:
            if tcp is not None:
                sock = socket.create_connection(tcp, timeout=timeout)
                address = "tcp://%s:%d" % tuple(tcp)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(socket_path)
                address = "unix://%s" % socket_path
        except OSError as exc:
            raise ServeClientError(
                "cannot connect to daemon at %s: %s"
                % (socket_path or "%s:%d" % tuple(tcp), exc)
            )
        return cls(sock, address)

    @classmethod
    def wait_ready(cls, socket_path=None, tcp=None, timeout=30.0, interval=0.05):
        """Connect to a daemon that may still be starting: retry until a
        ping answers, up to ``timeout`` seconds, then return the
        connected client.  Raises :class:`ServeClientError` on expiry."""
        deadline = time.monotonic() + timeout
        last = None
        while time.monotonic() < deadline:
            try:
                client = cls.connect(socket_path, tcp, timeout=timeout)
            except ServeClientError as exc:
                last = exc
            else:
                try:
                    client.ping()
                    return client
                except ServeClientError as exc:
                    last = exc
                    client.close()
            time.sleep(interval)
        raise ServeClientError(
            "daemon did not become ready within %.3gs: %s" % (timeout, last)
        )

    # -- the wire ------------------------------------------------------------

    def request(self, doc):
        """One raw request dict in, one response dict out."""
        try:
            self._sock.sendall(protocol.encode(doc))
            line = self._rfile.readline()
        except OSError as exc:
            raise ServeClientError("daemon connection failed: %s" % exc)
        if not line:
            raise ServeClientError(
                "daemon closed the connection without answering"
            )
        try:
            return protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            raise ServeClientError("malformed daemon response: %s" % exc)

    # -- the ops -------------------------------------------------------------

    def ping(self):
        return self.request({"op": "ping"})

    def health(self):
        return self.request({"op": "health"})

    def metrics(self):
        return self.request({"op": "metrics"})

    def trace(self):
        return self.request({"op": "trace"})

    def specialise(self, goal, static_args=None, deadline=None, request_id=None):
        doc = {"op": "specialise", "goal": goal}
        if static_args:
            doc["static_args"] = dict(static_args)
        if deadline is not None:
            doc["deadline"] = deadline
        if request_id is not None:
            doc["id"] = request_id
        return self.request(doc)

    def shutdown(self):
        """Ask the daemon to drain and exit; returns its acknowledgement
        (the daemon answers first, then closes everything)."""
        return self.request({"op": "shutdown"})

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        try:
            self._rfile.close()
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
