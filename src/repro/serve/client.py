"""The Python client for a running ``mspec serve`` daemon.

One :class:`ServeClient` is one socket connection speaking the
``repro.serve/v1`` newline-delimited JSON protocol (:mod:`.protocol`).
Requests on a connection are strictly request/response in order, so a
client instance is not itself thread-safe — concurrent callers open one
client each (connections are cheap; the daemon's handler threads are
``daemon_threads``).

>>> with ServeClient.connect(socket_path=path) as client:   # doctest: +SKIP
...     response = client.specialise("power", {"n": 3})
...     print(response["result"]["program"])

:meth:`ServeClient.wait_ready` covers the startup race: it retries the
connection until the daemon's socket answers a ping, which is how the
CLI, the benchmark harness, and CI wait for a freshly spawned daemon.

Resilience
----------

The client owns the *wire* deadline: ``request_timeout`` (or a per-call
``timeout``) bounds how long one round trip may take, and a wedged
daemon raises :class:`ServeTimeout` instead of blocking ``readline()``
forever.  After a timeout the connection is desynchronised (the answer
may still arrive later), so the socket is dropped and the next request
reconnects.

Specialise requests are deterministic and the daemon's residual store
is atomic, so *idempotent* operations (everything except ``shutdown``)
are safe to retry.  Pass a :class:`RetryPolicy` to opt in: transport
failures (connection refused/reset, EOF, malformed response, wire
timeout) and protocol-level ``crash`` responses are retried over a
fresh connection with capped exponential backoff; ``rejected``
(backpressure, exit code 8) is retried with jittered backoff but never
counts against the circuit breaker — a daemon shedding load is healthy,
not dead.  ``shutting_down`` is returned as-is: the draining daemon
asked us to go away.

Pass a :class:`CircuitBreaker` to fail fast when the daemon is gone:
after ``failure_threshold`` consecutive transport failures the breaker
opens and requests raise :class:`CircuitOpen` immediately (no connect,
no timeout wait) until ``reset_timeout`` elapses, when one half-open
probe is allowed through.  By default there is no retry policy and no
breaker — a bare client fails loudly on the first fault, which is what
tests and one-shot CLI calls want.
"""

import random
import socket
import time
from dataclasses import dataclass, field

from repro.serve import protocol

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "RetryPolicy",
    "ServeClient",
    "ServeClientError",
    "ServeTimeout",
]


class ServeClientError(Exception):
    """The daemon could not be reached (connection, framing, EOF)."""


class ServeTimeout(ServeClientError):
    """No response within the wire deadline (the daemon may be wedged;
    the connection is dropped — any late answer would desync framing)."""


class CircuitOpen(ServeClientError):
    """The circuit breaker is open: the daemon has failed repeatedly
    and the cooldown has not elapsed, so the call fails fast."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped-exponential-backoff retry schedule for idempotent ops.

    ``attempts`` is the *total* number of tries (first call included).
    Delay before retry ``n`` (0-based) is
    ``min(cap, base * 2**n)``, shrunk by up to ``jitter`` of itself at
    random so a fleet of clients does not retry in lockstep.  ``sleep``
    and ``rng`` are injectable for deterministic tests.
    """

    attempts: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    sleep: object = field(default=time.sleep, repr=False)
    rng: object = field(default=random.random, repr=False)

    def delay(self, attempt):
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        return base * (1.0 - self.jitter * self.rng())


class CircuitBreaker:
    """A minimal closed/open/half-open breaker over transport health.

    *Closed*: requests flow; consecutive transport failures are
    counted.  At ``failure_threshold`` the breaker *opens*: every call
    fails fast with :class:`CircuitOpen` until ``reset_timeout``
    seconds pass, when the breaker goes *half-open* and admits one
    probe — success closes it, failure re-opens it for another full
    cooldown.  Only transport failures trip it; any decoded response
    (including errors like ``rejected``) proves the daemon alive and
    closes the breaker.  ``clock`` is injectable for tests.
    """

    def __init__(self, failure_threshold=5, reset_timeout=30.0,
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got %d" % failure_threshold
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._state = "closed"
        self._failures = 0
        self._opened_at = None

    @property
    def state(self):
        """``"closed"``, ``"open"`` or ``"half-open"`` (cooldown expiry
        is evaluated lazily, here)."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half-open"
        return self._state

    def allow(self):
        """Whether a request may be attempted right now."""
        return self.state != "open"

    def record_success(self):
        self._state = "closed"
        self._failures = 0
        self._opened_at = None

    def record_failure(self):
        if self.state == "half-open":
            self._state = "open"
            self._opened_at = self._clock()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = "open"
            self._opened_at = self._clock()


def _fresh_stats():
    return {
        "requests": 0,       # wire round trips attempted
        "retries": 0,        # extra attempts beyond the first
        "reconnects": 0,     # fresh sockets opened after the first
        "timeouts": 0,       # wire deadlines that fired
        "rejected": 0,       # backpressure responses seen
        "breaker_fastfail": 0,  # calls refused by an open breaker
    }


class ServeClient:
    """A connected protocol client; close it (or use ``with``)."""

    def __init__(self, sock, address, connect_args=None,
                 request_timeout=None, retry=None, breaker=None):
        self._sock = sock
        self._rfile = sock.makefile("rb") if sock is not None else None
        self.address = address
        # (socket_path, tcp, timeout) for transparent reconnect; a
        # client built from a bare socket cannot reconnect.
        self._connect_args = connect_args
        self.request_timeout = request_timeout
        self.retry = retry
        self.breaker = breaker
        self.stats = _fresh_stats()

    # -- connecting ----------------------------------------------------------

    @staticmethod
    def _open(socket_path, tcp, timeout):
        """One connected socket, or :class:`ServeClientError`."""
        try:
            if tcp is not None:
                sock = socket.create_connection(tcp, timeout=timeout)
                address = "tcp://%s:%d" % tuple(tcp)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(socket_path)
                address = "unix://%s" % socket_path
        except OSError as exc:
            raise ServeClientError(
                "cannot connect to daemon at %s: %s"
                % (socket_path or "%s:%d" % tuple(tcp), exc)
            )
        return sock, address

    @classmethod
    def connect(cls, socket_path=None, tcp=None, timeout=10.0,
                request_timeout=None, retry=None, breaker=None):
        """One connected client for a unix socket path or a
        ``(host, port)`` pair (exactly one must be given).

        ``timeout`` bounds the TCP/unix connect; ``request_timeout``
        (seconds, or ``None`` for the connect timeout) bounds each
        round trip on the wire.  ``retry``/``breaker`` arm the
        resilience layer (off by default)."""
        if (socket_path is None) == (tcp is None):
            raise ValueError("give exactly one of socket_path or tcp")
        sock, address = cls._open(socket_path, tcp, timeout)
        return cls(
            sock,
            address,
            connect_args=(socket_path, tcp, timeout),
            request_timeout=request_timeout,
            retry=retry,
            breaker=breaker,
        )

    @classmethod
    def wait_ready(cls, socket_path=None, tcp=None, timeout=30.0,
                   interval=0.05, **kwargs):
        """Connect to a daemon that may still be starting: retry until a
        ping answers, up to ``timeout`` seconds, then return the
        connected client.  Raises :class:`ServeClientError` on expiry.
        Extra keyword arguments go to :meth:`connect`."""
        deadline = time.monotonic() + timeout
        last = None
        while time.monotonic() < deadline:
            try:
                client = cls.connect(socket_path, tcp, timeout=timeout, **kwargs)
            except ServeClientError as exc:
                last = exc
            else:
                try:
                    client.ping()
                    return client
                except ServeClientError as exc:
                    last = exc
                    client.close()
            time.sleep(interval)
        raise ServeClientError(
            "daemon did not become ready within %.3gs: %s" % (timeout, last)
        )

    def _mark_broken(self):
        """Drop the socket: the stream is dead or desynchronised."""
        rfile, self._rfile = self._rfile, None
        sock, self._sock = self._sock, None
        for obj in (rfile, sock):
            if obj is not None:
                try:
                    obj.close()
                except Exception:
                    pass

    def _reconnect(self):
        """Open a fresh connection with the original parameters."""
        if self._connect_args is None:
            raise ServeClientError(
                "connection lost and this client was built from a bare "
                "socket — no parameters to reconnect with"
            )
        self._mark_broken()
        socket_path, tcp, timeout = self._connect_args
        self._sock, self.address = self._open(socket_path, tcp, timeout)
        self._rfile = self._sock.makefile("rb")
        self.stats["reconnects"] += 1

    # -- the wire ------------------------------------------------------------

    def _roundtrip(self, doc, wire_timeout):
        """One send + one response line over the current connection,
        reconnecting first if a previous fault dropped it."""
        if self._sock is None:
            self._reconnect()
        self.stats["requests"] += 1
        try:
            self._sock.settimeout(wire_timeout)
            self._sock.sendall(protocol.encode(doc))
            line = self._rfile.readline()
        except socket.timeout:
            # The response may still arrive later; reusing this stream
            # would pair it with the *next* request. Drop the socket.
            self._mark_broken()
            self.stats["timeouts"] += 1
            raise ServeTimeout(
                "no response from %s within %.3gs"
                % (self.address, wire_timeout)
            )
        except OSError as exc:
            self._mark_broken()
            raise ServeClientError("daemon connection failed: %s" % exc)
        if not line:
            self._mark_broken()
            raise ServeClientError(
                "daemon closed the connection without answering"
            )
        try:
            return protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            # Garbage on the wire: framing can no longer be trusted.
            self._mark_broken()
            raise ServeClientError("malformed daemon response: %s" % exc)

    def request(self, doc, timeout=None, idempotent=False):
        """One raw request dict in, one response dict out.

        ``timeout`` overrides the client's ``request_timeout`` for this
        call.  With ``idempotent=True`` and an armed :class:`RetryPolicy`,
        transport faults and retry-safe protocol errors (``crash``,
        ``rejected``) are retried with backoff over fresh connections;
        otherwise the first fault propagates."""
        wire_timeout = timeout if timeout is not None else self.request_timeout
        retry = self.retry if idempotent else None
        total = retry.attempts if retry is not None else 1
        attempt = 0
        while True:
            if self.breaker is not None and not self.breaker.allow():
                self.stats["breaker_fastfail"] += 1
                raise CircuitOpen(
                    "circuit breaker is open for %s (cooling down %.3gs)"
                    % (self.address, self.breaker.reset_timeout)
                )
            try:
                response = self._roundtrip(doc, wire_timeout)
            except CircuitOpen:
                raise
            except ServeClientError as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt + 1 >= total:
                    raise
                self.stats["retries"] += 1
                retry.sleep(retry.delay(attempt))
                attempt += 1
                continue
            # Any decoded response proves the daemon alive.
            if self.breaker is not None:
                self.breaker.record_success()
            code = (
                None
                if response.get("ok")
                else (response.get("error") or {}).get("code")
            )
            if code == protocol.ERR_REJECTED:
                self.stats["rejected"] += 1
            if (
                code in (protocol.ERR_REJECTED, protocol.ERR_CRASH)
                and retry is not None
                and attempt + 1 < total
            ):
                # Backpressure: back off (jittered) and try again — the
                # daemon is shedding load, not failing. Crash: the
                # request is deterministic; a replacement pool answers.
                self.stats["retries"] += 1
                retry.sleep(retry.delay(attempt))
                attempt += 1
                continue
            return response

    # -- the ops -------------------------------------------------------------

    def ping(self, timeout=None):
        return self.request({"op": "ping"}, timeout=timeout, idempotent=True)

    def health(self, timeout=None):
        return self.request({"op": "health"}, timeout=timeout, idempotent=True)

    def metrics(self, timeout=None):
        return self.request({"op": "metrics"}, timeout=timeout, idempotent=True)

    def trace(self, timeout=None):
        return self.request({"op": "trace"}, timeout=timeout, idempotent=True)

    def specialise(self, goal, static_args=None, deadline=None,
                   request_id=None, timeout=None):
        doc = {"op": "specialise", "goal": goal}
        if static_args is not None:
            # An explicitly empty dict rides the wire like any other
            # value — only omission omits the field.
            doc["static_args"] = dict(static_args)
        if deadline is not None:
            doc["deadline"] = deadline
        if request_id is not None:
            doc["id"] = request_id
        return self.request(doc, timeout=timeout, idempotent=True)

    def run(self, goal, static_args=None, dynamic_args=None, deadline=None,
            request_id=None, timeout=None):
        """Execute ``goal`` through the daemon's tiered ladder; the
        response carries ``value`` (tuples as JSON arrays — see
        :func:`repro.serve.protocol.value_from_json`), ``tier`` and
        ``origin``.  Idempotent, so the retry layer applies."""
        doc = {"op": "run", "goal": goal}
        if static_args is not None:
            doc["static_args"] = dict(static_args)
        if dynamic_args is not None:
            doc["dynamic_args"] = [
                protocol.value_to_json(v) for v in dynamic_args
            ]
        if deadline is not None:
            doc["deadline"] = deadline
        if request_id is not None:
            doc["id"] = request_id
        return self.request(doc, timeout=timeout, idempotent=True)

    def shutdown(self, timeout=None):
        """Ask the daemon to drain and exit; returns its acknowledgement
        (the daemon answers first, then closes everything).  Never
        retried — a second shutdown could hit a freshly restarted
        daemon."""
        return self.request({"op": "shutdown"}, timeout=timeout)

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Idempotent and never-raising: drop the connection if any."""
        self._mark_broken()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
