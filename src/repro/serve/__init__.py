"""The persistent specialisation service: ``mspec serve`` / ``mspec client``.

The CLI pays the whole pipeline — parse, analyse, cogen, link, pool
fork — on every invocation, for requests that cost microseconds once the
caches are warm.  This package keeps everything resident instead:

* :mod:`.daemon` — the long-lived server: the module directory loaded
  and linked **once**, a pre-forked :class:`~repro.pipeline.pool.WorkerPool`
  whose workers inherit the linked program, the persistent residual
  cache and RTCG LRU hot across requests, an admission/backpressure
  layer, per-request deadlines, live observability, graceful drain, and
  digest-based re-link when the source directory changes.
* :mod:`.client` — :class:`~repro.serve.client.ServeClient`, the Python
  client (and the engine behind ``mspec client``): per-request wire
  deadlines (:class:`~repro.serve.client.ServeTimeout`), transparent
  reconnect with capped-backoff retries for idempotent ops
  (:class:`~repro.serve.client.RetryPolicy`), and a closed/open/half-open
  :class:`~repro.serve.client.CircuitBreaker`.
* :mod:`.supervise` — ``mspec serve --supervise``: restart a crashed
  daemon process with backoff; stale sockets are reclaimed and the
  atomic residual store makes recovery crash-consistent.
* :mod:`.protocol` — the ``repro.serve/v1`` newline-delimited JSON wire
  format and its error-code → exit-code contract.

See ``docs/serving.md`` for the protocol reference, the daemon
lifecycle, and the failure-mode matrix.
"""

from repro.serve.client import (
    CircuitBreaker,
    CircuitOpen,
    RetryPolicy,
    ServeClient,
    ServeClientError,
    ServeTimeout,
)
from repro.serve.daemon import ServeConfig, SpecServer, serve_forever
from repro.serve.protocol import (
    EXIT_REJECTED,
    OPS,
    SERVE_SCHEMA,
    ProtocolError,
    exit_code_for,
)
from repro.serve.supervise import Supervisor, supervise

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "EXIT_REJECTED",
    "OPS",
    "ProtocolError",
    "RetryPolicy",
    "SERVE_SCHEMA",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeTimeout",
    "SpecServer",
    "Supervisor",
    "serve_forever",
    "supervise",
    "exit_code_for",
]
