"""The persistent specialisation daemon behind ``mspec serve``.

The paper's economics say analysis and cogen happen once, and
specialisation is the cheap repeated step — but the CLI re-pays the
expensive part on every invocation: re-parse, re-analyse, re-link,
re-fork a pool, all for requests that take microseconds once warm
(``BENCH_spec_throughput.json``: warm cache hits ~100µs, RTCG LRU hits
~2400×; ``BENCH_parallel_pipeline.json``: parallel *losing* to serial
because fork/pickle overhead dominates).  :class:`SpecServer` keeps all
of it resident:

* the module directory is loaded, analysed, cogen'd, and **linked
  once**; the linked :class:`~repro.genext.link.GenextProgram` lives in
  the parent for the daemon's lifetime;
* a :class:`~repro.pipeline.pool.WorkerPool` is **pre-forked at
  startup** — on ``fork`` platforms the workers inherit the linked
  program through :data:`repro.genext.batch._WORKER_PROGRAMS`, so a
  cold request never pickles a program and never re-links;
* the persistent residual cache (:class:`~repro.speccache.SpecCache`)
  and the RTCG LRU stay **hot across requests**: a warm request is
  answered in-parent from the cache, exactly the
  :func:`~repro.genext.batch.specialise_many` warm path, without
  touching the pool at all;
* requests pass an **admission layer** first: at most ``max_inflight``
  specialisations run at once, at most ``queue`` more may wait, and
  anything beyond that is *rejected immediately* with a distinct
  backpressure error (exit code 8 at the client) rather than silently
  piling up latency;
* per-request **deadlines** bound queue wait plus run time, enforced by
  the :class:`~repro.pipeline.faults.WaveSupervisor` /
  :class:`~repro.pipeline.faults.FaultPolicy` machinery — a request
  past its deadline kills the hung worker (the pool respawns
  transparently) and answers a ``deadline`` error;
* concurrent identical cold requests are **coalesced**: one leader
  computes, the followers wait and answer from the cache
  (``serve.coalesced``);
* the **source directory is watched by digest**: an edited module is
  detected on the next request, triggering one controlled re-link —
  the daemon never serves an answer for source it no longer has;
* :mod:`repro.obs` is live over the same socket: ``metrics`` returns
  the ``repro.obs.metrics/v1`` snapshot (with the ``serve.*`` counters),
  ``health`` the vitals, ``trace`` a bounded ring of recent spans as a
  Chrome trace document;
* ``shutdown`` (or SIGTERM/SIGINT) **drains gracefully**: in-flight
  requests finish, new ones are refused with ``shutting_down``, then
  the pool and socket are released.

Residual semantics are byte-identical to the CLI path by construction:
warm answers are the same canonical ``repro.speccache/v1`` payloads the
CLI reads, and cold answers run through the same
:func:`~repro.genext.batch.specialise_many` machinery with the same
options — the load-test harness (``benchmarks/bench_serve.py``) and the
CI serve job both enforce it.
"""

import hashlib
import os
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.api import BuildOptions, SpecOptions
from repro.genext.runtime import SpecError
from repro.modsys.program import SOURCE_SUFFIX
from repro.obs import EventBus, MetricsRegistry, Obs, Tracer
from repro.pipeline import faultinject
from repro.pipeline.faults import FaultPolicy, KIND_TIMEOUT
from repro.pipeline.pool import WorkerPool
from repro.serve import protocol
from repro.speccache import SpecCache, encode_result, residual_cache_key

__all__ = ["ServeConfig", "SpecServer", "serve_forever"]

DEFAULT_SOCKET_NAME = ".mspec-serve.sock"
DEFAULT_CACHE_DIRNAME = ".mspec-cache"


@dataclass
class ServeConfig:
    """Everything one daemon can be told.

    ``max_inflight`` defaults to the pool width (each worker busy plus
    the warm path is the saturation point); ``queue`` to four times
    that.  ``deadline`` is the default per-request budget (a request
    may narrow it, never widen it).  ``watch_source`` enables the
    digest check + controlled re-link on source edits.
    ``max_requests_per_worker`` / ``max_worker_rss_mb`` arm graceful
    worker recycling (see :class:`~repro.pipeline.pool.WorkerPool`): a
    long-lived pool generation is retired after its request budget or
    when a worker's RSS crosses the ceiling, so leaky workers never
    degrade the daemon.

    ``tier_hot`` (``mspec serve --tier-hot N``) arms the execution
    ladder for ``run`` requests and warm-hit promotion: a goal's N-th
    request compiles + persists its residual
    (:mod:`repro.backend.tiers`).  ``None`` leaves ``run`` on the
    default :class:`~repro.backend.tiers.TierPolicy` and skips warm-hit
    promotion; an explicit ``options.tier_policy`` wins.
    """

    dir: str
    socket_path: Optional[str] = None
    tcp: Optional[Tuple[str, int]] = None
    jobs: int = 1
    max_inflight: Optional[int] = None
    queue: Optional[int] = None
    deadline: Optional[float] = None
    drain_timeout: float = 30.0
    cache_dir: Optional[str] = None
    options: SpecOptions = field(default_factory=SpecOptions)
    retries: int = 0
    watch_source: bool = True
    warm_pool: bool = True
    trace_buffer: int = 2048
    metrics_path: Optional[str] = None
    max_requests_per_worker: Optional[int] = None
    max_worker_rss_mb: Optional[float] = None
    tier_hot: Optional[int] = None

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % self.jobs)
        if self.tier_hot is not None and self.tier_hot < 1:
            raise ValueError(
                "tier_hot must be >= 1, got %d" % self.tier_hot
            )
        if self.socket_path is None and self.tcp is None:
            self.socket_path = os.path.join(self.dir, DEFAULT_SOCKET_NAME)
        if self.cache_dir is None:
            self.cache_dir = os.path.join(self.dir, DEFAULT_CACHE_DIRNAME)
        if self.max_inflight is None:
            self.max_inflight = self.jobs
        if self.max_inflight < 1:
            raise ValueError(
                "max_inflight must be >= 1, got %d" % self.max_inflight
            )
        if self.queue is None:
            self.queue = 4 * self.max_inflight
        if self.queue < 0:
            raise ValueError("queue must be >= 0, got %d" % self.queue)

    @property
    def address(self):
        if self.tcp is not None:
            return "tcp://%s:%d" % self.tcp
        return "unix://%s" % self.socket_path


class _ProgramState:
    """One immutable generation of the served program.  Swapped
    atomically on re-link; a request reads ``server.state`` once and
    works against a consistent (gp, fingerprint, digest, ladder)
    tuple.  ``ladder`` is the generation's
    :class:`~repro.backend.tiers.TierLadder` (the ``run`` op's
    executor; its persisted artifacts are keyed by the generation's
    fingerprint, so a relink naturally re-promotes)."""

    __slots__ = (
        "gp", "fingerprint", "digest", "ladder", "loaded_at",
        "loaded_at_wall",
    )

    def __init__(self, gp, fingerprint, digest, ladder=None):
        self.gp = gp
        self.fingerprint = fingerprint
        self.digest = digest
        self.ladder = ladder
        # Monotonic for age arithmetic — wall clocks jump under NTP
        # steps and DST, and a negative "age" has broken real daemons.
        # The wall timestamp exists only to be displayed.
        self.loaded_at = time.monotonic()
        self.loaded_at_wall = time.time()


def _source_digest(directory):
    """SHA-256 over the module directory's ``*.mod`` names and bytes —
    the daemon's staleness check."""
    h = hashlib.sha256(b"mspec-serve-source\x00")
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(SOURCE_SUFFIX):
            continue
        h.update(entry.encode("utf-8"))
        h.update(b"\x00")
        with open(os.path.join(directory, entry), "rb") as f:
            h.update(f.read())
        h.update(b"\x00")
    return h.hexdigest()


class SpecServer:
    """The daemon's request brain, transport-agnostic.

    :meth:`handle_request` maps one parsed request dict to one response
    dict; the socket layer (:func:`serve_forever`) only does framing.
    Tests drive this class directly as well as over real sockets.
    """

    def __init__(self, config, obs=None):
        self.config = config
        if obs is None:
            bus = EventBus()
            obs = Obs(
                tracer=Tracer(bus=bus),
                metrics=MetricsRegistry(bus=bus),
                bus=bus,
            )
        self.obs = obs
        self.options = config.options.replace(cache_dir=config.cache_dir)
        if config.tier_hot is not None and self.options.tier_policy is None:
            from repro.backend.tiers import TierPolicy

            self.options = self.options.replace(
                tier_policy=TierPolicy(hot_after=config.tier_hot)
            )
        self.cache = SpecCache(
            config.cache_dir, metrics=obs.metrics, bus=obs.bus
        )

        # Admission state: inflight + queued under one condition.
        self._adm = threading.Condition()
        self.inflight = 0
        self.queued = 0
        self._draining = False

        # Cold-request coalescing: cache key -> leader's done event.
        self._keys_lock = threading.Lock()
        self._inflight_keys = {}

        # Recent-span ring for the live trace endpoint.
        self._trace_ring = deque(maxlen=config.trace_buffer)
        if obs.bus is not None:
            obs.bus.on_span_end(self._trace_ring.append)

        # Load + link once; seed the worker memo *before* the pool so
        # forked workers inherit the linked program.
        self._relink_lock = threading.Lock()
        self.state = self._load()
        self.pool = WorkerPool(
            config.jobs,
            max_requests_per_worker=config.max_requests_per_worker,
            max_worker_rss=(
                None
                if config.max_worker_rss_mb is None
                else int(config.max_worker_rss_mb * 1024 * 1024)
            ),
        )
        if config.warm_pool:
            self.pool.warm()
        # Same split as _ProgramState: uptime_s must come from the
        # monotonic clock, not wall-clock subtraction.
        self.started = time.monotonic()
        self.started_wall = time.time()
        self.obs.metrics.gauge("serve.jobs").set(config.jobs)

    # -- program lifecycle ---------------------------------------------------

    def _load(self):
        from repro.pipeline.build import build_dir

        with self.obs.tracer.span("serve:link", cat="serve"):
            # Digest first: an edit racing the build makes the digest
            # stale, so the next request relinks again — never the
            # other way round (a fresh digest over a stale program).
            digest = _source_digest(self.config.dir)
            # Relinks ride the incremental build cache: a watched-source
            # edit re-derives only its definition cone and reassembles
            # the rest from the cache's per-def records.
            result = build_dir(
                self.config.dir,
                BuildOptions(
                    cache_dir=self.config.cache_dir,
                    force_residual=self.options.force_residual,
                ),
                obs=self.obs,
            )
            gp = result.link()
        from repro.backend.tiers import TierLadder
        from repro.genext.batch import seed_worker_program
        from repro.modsys.program import load_program_dir

        fingerprint = seed_worker_program(gp)
        ladder = TierLadder(
            gp,
            options=self.options,
            obs=self.obs,
            program=load_program_dir(self.config.dir),
            store=self.cache.store,
        )
        return _ProgramState(gp, fingerprint, digest, ladder)

    def current_state(self):
        """The program generation to serve this request from, re-linking
        first if the source directory's digest changed — a stale answer
        is never produced for source the daemon can see has moved."""
        if not self.config.watch_source:
            return self.state
        digest = _source_digest(self.config.dir)
        state = self.state
        if digest == state.digest:
            return state
        with self._relink_lock:
            state = self.state
            if digest != state.digest:
                self.state = self._load()
                self.obs.metrics.counter("serve.relinks").inc()
                self.obs.bus.emit(
                    "serve.relink",
                    old_digest=state.digest,
                    new_digest=self.state.digest,
                )
            return self.state

    # -- request dispatch ----------------------------------------------------

    def handle_request(self, doc):
        """One response dict for one parsed request dict."""
        op = doc.get("op")
        request_id = doc.get("id")
        try:
            if op == "ping":
                return protocol.ok_response("ping", request_id)
            if op == "health":
                return self._handle_health(request_id)
            if op == "metrics":
                return protocol.ok_response(
                    "metrics", request_id, metrics=self.obs.metrics.snapshot()
                )
            if op == "trace":
                return self._handle_trace(request_id)
            if op == "shutdown":
                return protocol.ok_response(
                    "shutdown", request_id, draining=True
                )
            if op == "specialise":
                return self._handle_specialise(doc)
            if op == "run":
                return self._handle_run(doc)
            return protocol.error_response(
                op or "?", protocol.ERR_BAD_REQUEST,
                "unknown op %r" % (op,), request_id,
            )
        except Exception as exc:  # a bug must answer, not hang the client
            return protocol.error_response(
                op or "?",
                protocol.ERR_ERROR,
                "%s: %s" % (type(exc).__name__, exc),
                request_id,
            )
        finally:
            self.obs.tracer.trim(4 * self.config.trace_buffer)

    def _handle_health(self, request_id):
        with self._adm:
            inflight, queued = self.inflight, self.queued
        return protocol.ok_response(
            "health",
            request_id,
            pid=os.getpid(),
            uptime_s=time.monotonic() - self.started,
            started_at=self.started_wall,
            program_loaded_at=self.state.loaded_at_wall,
            program_age_s=time.monotonic() - self.state.loaded_at,
            inflight=inflight,
            queued=queued,
            max_inflight=self.config.max_inflight,
            queue=self.config.queue,
            jobs=self.config.jobs,
            pool_alive=self.pool.alive,
            pool_spawns=self.pool.spawns,
            pool_kills=self.pool.kills,
            pool_recycles=self.pool.recycles,
            program_digest=self.state.digest,
            fingerprint=self.state.fingerprint,
            draining=self._draining,
            address=self.config.address,
        )

    def _handle_trace(self, request_id):
        events = sorted(self._trace_ring, key=lambda e: e.get("ts", 0))
        return protocol.ok_response(
            "trace",
            request_id,
            trace={
                "traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {"schema": "repro.obs.trace/v1", "tool": "mspec"},
            },
        )

    # -- the specialise path -------------------------------------------------

    def _admit(self, deadline_at, op="specialise"):
        """Take one inflight slot, queueing within bounds.  Returns the
        seconds spent queued, or a response dict when refused."""
        metrics = self.obs.metrics
        with self._adm:
            if self._draining:
                return protocol.error_response(
                    op, protocol.ERR_SHUTTING_DOWN,
                    "daemon is draining",
                )
            if self.inflight >= self.config.max_inflight:
                if self.queued >= self.config.queue:
                    metrics.counter("serve.rejections").inc()
                    self.obs.bus.emit(
                        "serve.rejected", queued=self.queued,
                        inflight=self.inflight,
                    )
                    return protocol.error_response(
                        op, protocol.ERR_REJECTED,
                        "admission queue full (%d inflight, %d queued)"
                        % (self.inflight, self.queued),
                    )
                self.queued += 1
                metrics.gauge("serve.queue_depth").max_of(self.queued)
                started = time.perf_counter()
                try:
                    while (
                        self.inflight >= self.config.max_inflight
                        and not self._draining
                    ):
                        timeout = None
                        if deadline_at is not None:
                            timeout = deadline_at - time.perf_counter()
                            if timeout <= 0:
                                metrics.counter("serve.deadline_kills").inc()
                                return protocol.error_response(
                                    op, protocol.ERR_DEADLINE,
                                    "deadline expired while queued",
                                    kind="timeout",
                                )
                        self._adm.wait(timeout)
                finally:
                    self.queued -= 1
                if self._draining:
                    return protocol.error_response(
                        op, protocol.ERR_SHUTTING_DOWN,
                        "daemon is draining",
                    )
                waited = time.perf_counter() - started
                metrics.timer("serve.queue_wait").add(waited)
            else:
                waited = 0.0
            self.inflight += 1
            metrics.gauge("serve.inflight").max_of(self.inflight)
        return waited

    def _release(self):
        with self._adm:
            self.inflight -= 1
            self._adm.notify_all()

    def _handle_specialise(self, doc):
        request_id = doc.get("id")
        goal = doc["goal"]
        static_args = doc.get("static_args") or {}
        deadline = doc.get("deadline")
        if deadline is None:
            deadline = self.config.deadline
        elif self.config.deadline is not None:
            deadline = min(deadline, self.config.deadline)
        started = time.perf_counter()
        deadline_at = None if deadline is None else started + deadline

        metrics = self.obs.metrics
        metrics.counter("serve.requests").inc()
        admitted = self._admit(deadline_at)
        if isinstance(admitted, dict):  # refused: rejected/draining/expired
            admitted["id"] = request_id
            return admitted
        try:
            with self.obs.tracer.span("serve:request", cat="serve", goal=goal):
                response = self._answer(
                    goal, static_args, deadline_at, request_id
                )
            response["seconds"] = time.perf_counter() - started
            metrics.timer("serve.request").add(response["seconds"])
            return response
        finally:
            self._release()

    def _handle_run(self, doc):
        """Execute a goal through the tiered ladder (see
        :mod:`repro.backend.tiers`): hot goals are answered by the
        persisted compiled residual, cold ones interpreted."""
        request_id = doc.get("id")
        goal = doc["goal"]
        static_args = doc.get("static_args") or {}
        dynamic_args = tuple(doc.get("dynamic_args") or ())
        deadline = doc.get("deadline")
        if deadline is None:
            deadline = self.config.deadline
        elif self.config.deadline is not None:
            deadline = min(deadline, self.config.deadline)
        started = time.perf_counter()
        deadline_at = None if deadline is None else started + deadline

        metrics = self.obs.metrics
        metrics.counter("serve.requests").inc()
        admitted = self._admit(deadline_at, op="run")
        if isinstance(admitted, dict):  # refused: rejected/draining/expired
            admitted["id"] = request_id
            return admitted
        try:
            state = self.current_state()
            with self.obs.tracer.span("serve:run", cat="serve", goal=goal):
                try:
                    run = state.ladder.call(goal, static_args, dynamic_args)
                except Exception as exc:
                    metrics.counter("serve.failures").inc()
                    return protocol.error_response(
                        "run", protocol.ERR_ERROR,
                        "%s: %s" % (type(exc).__name__, exc), request_id,
                    )
            metrics.counter("serve.runs").inc()
            response = protocol.ok_response(
                "run",
                request_id,
                value=protocol.value_to_json(run.value),
                tier=run.tier,
                origin=run.origin,
            )
            response["seconds"] = time.perf_counter() - started
            metrics.timer("serve.request").add(response["seconds"])
            return response
        finally:
            self._release()

    def _answer(self, goal, static_args, deadline_at, request_id):
        state = self.current_state()
        try:
            key = residual_cache_key(
                state.fingerprint, goal, static_args, self.options
            )
        except TypeError as exc:
            return protocol.error_response(
                "specialise", protocol.ERR_BAD_REQUEST,
                "bad static arguments: %s" % exc, request_id,
            )

        # Warm path: answered in the parent from the shared cache, no
        # process boundary crossed — exactly specialise_many's probe.
        payload = self.cache.get(key, goal=goal)
        if payload is not None:
            self.obs.metrics.counter("serve.warm").inc()
            if self.options.tier_policy is not None:
                from repro.backend import tiers

                tiers.note_warm(
                    self.cache, key, goal, self.options,
                    obs=self.obs, payload=payload,
                )
            return protocol.ok_response(
                "specialise", request_id, served="warm", result=payload
            )

        # Cold: coalesce concurrent identical requests behind a leader.
        with self._keys_lock:
            leader_done = self._inflight_keys.get(key)
            if leader_done is None:
                self._inflight_keys[key] = threading.Event()
        if leader_done is not None:
            self.obs.metrics.counter("serve.coalesced").inc()
            timeout = None
            if deadline_at is not None:
                timeout = max(0.0, deadline_at - time.perf_counter())
            leader_done.wait(timeout)
            payload = self.cache.get(key, goal=goal)
            if payload is not None:
                self.obs.metrics.counter("serve.warm").inc()
                return protocol.ok_response(
                    "specialise", request_id, served="warm", result=payload
                )
            # Leader failed (or we timed out waiting): fall through and
            # compute independently so the failure mode is our own.

        try:
            return self._dispatch_cold(
                goal, static_args, deadline_at, request_id, state
            )
        finally:
            with self._keys_lock:
                done = self._inflight_keys.pop(key, None)
            if done is not None:
                done.set()

    def _dispatch_cold(self, goal, static_args, deadline_at, request_id, state):
        """Run one cold request through the batch driver against the
        resident pool; per-request deadline via the fault policy."""
        from repro.genext.batch import specialise_many

        timeout = None
        if deadline_at is not None:
            timeout = deadline_at - time.perf_counter()
            if timeout <= 0:
                self.obs.metrics.counter("serve.deadline_kills").inc()
                return protocol.error_response(
                    "specialise", protocol.ERR_DEADLINE,
                    "deadline expired before dispatch", request_id,
                    kind="timeout",
                )
        policy = FaultPolicy(timeout=timeout, retries=self.config.retries)
        try:
            batch = specialise_many(
                state.gp,
                [(goal, static_args)],
                self.options,
                jobs=self.config.jobs,
                policy=policy,
                obs=self.obs,
                pool=self.pool,
            )
        except SpecError as exc:
            self.obs.metrics.counter("serve.failures").inc()
            return protocol.error_response(
                "specialise", protocol.ERR_ERROR, str(exc), request_id,
                kind="error",
            )
        finally:
            # The supervisor submitted straight to the executor, so
            # charge the recycle budget here and retire a generation
            # past it (graceful: in-flight work finishes elsewhere).
            self.pool.note_tasks(1)
            reason = self.pool.maybe_recycle()
            if reason is not None:
                self.obs.metrics.counter("serve.recycles").inc()
                self.obs.bus.emit("serve.recycle", reason=reason)
        if batch.ok:
            self.obs.metrics.counter("serve.cold").inc()
            return protocol.ok_response(
                "specialise",
                request_id,
                served="cold",
                result=encode_result(batch.results[0]),
            )
        failure = batch.failures[0]
        if failure.kind == KIND_TIMEOUT:
            self.obs.metrics.counter("serve.deadline_kills").inc()
        else:
            self.obs.metrics.counter("serve.failures").inc()
        return protocol.error_response(
            "specialise",
            protocol.error_code_for_kind(failure.kind),
            failure.message,
            request_id,
            kind=failure.kind,
        )

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout=None):
        """Refuse new specialisations, wait for in-flight ones.  Returns
        True when everything finished inside ``timeout``."""
        if timeout is None:
            timeout = self.config.drain_timeout
        deadline_at = time.perf_counter() + timeout
        with self._adm:
            self._draining = True
            self._adm.notify_all()
            while self.inflight > 0:
                remaining = deadline_at - time.perf_counter()
                if remaining <= 0:
                    return False
                self._adm.wait(remaining)
        return True

    def close(self):
        """Release the pool (after :meth:`drain` for a graceful exit)."""
        self.pool.shutdown()
        if self.config.metrics_path:
            self.obs.metrics.export(self.config.metrics_path)


# ---------------------------------------------------------------------------
# Transport: threaded stream servers speaking NDJSON.
# ---------------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        spec = self.server.spec_server
        try:
            for line in self.rfile:
                if not line.strip():
                    continue
                try:
                    doc = protocol.parse_request(line)
                except protocol.ProtocolError as exc:
                    self.wfile.write(
                        protocol.encode(
                            protocol.error_response(
                                "?", protocol.ERR_BAD_REQUEST, str(exc)
                            )
                        )
                    )
                    continue
                response = spec.handle_request(doc)
                if self._transport_fault(spec, doc):
                    return
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
                if doc.get("op") == "shutdown":
                    self.server.initiate_shutdown()
                    return
        except OSError:
            # The client went away mid-conversation (or gave up on an
            # injected stall) — there is no one left to answer.
            return

    def _transport_fault(self, spec, doc):
        """Perform any planned serve-phase transport fault for this
        request; returns True when the connection must be dropped
        instead of answered.  The fault ``module`` names the goal under
        attack (or the op for non-specialise requests); ``"*"`` matches
        anything."""
        victim = doc.get("goal") or doc.get("op") or "?"
        fault = faultinject.claim_action("serve", victim, "drop-connection")
        if fault is not None:
            spec.obs.metrics.counter("serve.faults_injected").inc()
            return True  # close without answering: client sees EOF
        fault = faultinject.claim_action("serve", victim, "stall")
        if fault is not None:
            # A wedged handler: the response is late, not absent — the
            # client's wire deadline must fire first.
            spec.obs.metrics.counter("serve.faults_injected").inc()
            time.sleep(fault.seconds)
        fault = faultinject.claim_action("serve", victim, "corrupt-response")
        if fault is not None:
            spec.obs.metrics.counter("serve.faults_injected").inc()
            self.wfile.write(faultinject.CORRUPT_BYTES + b"\n")
            self.wfile.flush()
            return True  # framing is now garbage; drop the stream
        return False


class _ServerMixin:
    daemon_threads = True
    allow_reuse_address = True

    def attach(self, spec_server):
        self.spec_server = spec_server
        self._shutdown_started = threading.Event()

    def initiate_shutdown(self):
        """Graceful drain + stop, idempotent, off the handler thread
        (``BaseServer.shutdown`` deadlocks when called from inside
        ``serve_forever``'s own loop)."""
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()

        def _drain_and_stop():
            self.spec_server.drain()
            self.shutdown()

        threading.Thread(target=_drain_and_stop, daemon=True).start()


class _TcpServer(_ServerMixin, socketserver.ThreadingMixIn, socketserver.TCPServer):
    pass


if hasattr(socketserver, "UnixStreamServer"):

    class _UnixServer(
        _ServerMixin, socketserver.ThreadingMixIn, socketserver.UnixStreamServer
    ):
        pass

else:  # pragma: no cover - non-POSIX
    _UnixServer = None


def make_transport(spec_server):
    """The listening socket server for a :class:`SpecServer`."""
    config = spec_server.config
    if config.tcp is not None:
        transport = _TcpServer(config.tcp, _Handler)
    else:
        if _UnixServer is None:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "unix sockets are unavailable on this platform; use --tcp"
            )
        path = config.socket_path
        if os.path.exists(path):
            # A previous daemon's leftover: connecting decides stale vs
            # live — never steal a live daemon's socket.
            import socket as _socket

            probe = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(path)
            except OSError:
                os.unlink(path)
            else:
                probe.close()
                raise RuntimeError(
                    "socket %s already has a live daemon" % path
                )
        transport = _UnixServer(path, _Handler)
    transport.attach(spec_server)
    return transport


def serve_forever(config, obs=None, ready=None):
    """Run one daemon until shut down; returns the process exit code.

    ``ready``, if given, is called with the :class:`SpecServer` and its
    transport once the socket is listening (tests use it; the CLI prints
    the address).  SIGTERM/SIGINT trigger the same graceful drain as the
    ``shutdown`` op.
    """
    import signal as _signal

    spec_server = SpecServer(config, obs=obs)
    transport = make_transport(spec_server)

    installed = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            transport.initiate_shutdown()

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            installed[signum] = _signal.signal(signum, _on_signal)
    try:
        if ready is not None:
            ready(spec_server, transport)
        transport.serve_forever(poll_interval=0.1)
    finally:
        for signum, old in installed.items():
            _signal.signal(signum, old)
        transport.server_close()
        if config.tcp is None and os.path.exists(config.socket_path):
            try:
                os.unlink(config.socket_path)
            except OSError:
                pass
        spec_server.close()
    return 0
