"""The ``repro.serve/v1`` wire protocol: newline-delimited JSON.

One request per line, one response line per request, over a unix-domain
stream socket (default) or TCP.  Keeping the framing this dumb is a
feature: any language with a socket and a JSON parser is a client, and
a request is greppable in a packet capture.

Requests
--------

``{"op": OP, "id": ID?, ...}`` where ``OP`` is one of:

* ``ping``        — liveness probe; answers ``{"ok": true}``.
* ``health``      — daemon vitals: uptime, inflight/queued requests,
  worker-pool state, the served program's source digest.
* ``metrics``     — the live ``repro.obs.metrics/v1`` snapshot
  (``serve.*`` counters included).
* ``trace``       — recent spans as a Chrome trace-event document
  (bounded ring; load it in Perfetto).
* ``specialise``  — ``goal`` (function name), ``static_args`` (JSON
  object; lists become object-language lists, so a pair is
  ``["pair", 1, 2]``), optional ``deadline`` (seconds, caps queue wait
  plus run time).
* ``run``         — *execute* ``goal`` through the daemon's tiered
  ladder (:mod:`repro.backend.tiers`): ``goal``, ``static_args`` (as
  for ``specialise``), ``dynamic_args`` (JSON array, same value
  conventions), optional ``deadline``.  Hot goals are answered by a
  persisted compiled residual — one dict probe + one native call.
* ``shutdown``    — graceful drain: in-flight requests finish, new ones
  are refused, then the daemon exits 0.

``id`` is an optional client correlation token echoed verbatim.

Responses
---------

``{"schema": "repro.serve/v1", "op": OP, "id": ID?, "ok": BOOL, ...}``.
A successful ``specialise`` carries ``served`` (``"warm"`` — answered
in-parent from the residual cache — or ``"cold"`` — computed by the
worker pool), ``seconds``, and ``result``: the canonical
``repro.speccache/v1`` payload, whose ``program`` text is byte-identical
to what ``mspec specialise`` prints for the same request.

A successful ``run`` carries ``value`` (the object-language result;
tuples encode as JSON arrays — :func:`value_from_json` restores them),
``tier`` (0/1/2), ``origin`` (how the tier-2 callable was obtained:
``memo``/``code``/``source``/``emitted``, or ``interp``/``residual``
for the lower rungs), and ``seconds``.

A failure carries ``error``: ``{"code": CODE, "message": ...}`` plus a
``kind`` mirroring :class:`~repro.pipeline.faults.ModuleFailure` where
one exists.  Codes → client exit codes:

========================  ======================================  ====
code                      meaning                                 exit
========================  ======================================  ====
``bad_request``           malformed request line / unknown op        3
``error``                 the specialisation itself raised           3
``deadline``              per-request deadline exceeded              4
``crash``                 a worker process died                      5
``rejected``              admission queue full (backpressure)        8
``shutting_down``         daemon is draining                         8
========================  ======================================  ====
"""

import json

from repro.pipeline.faults import (
    EXIT_CRASH,
    EXIT_ERROR,
    EXIT_TIMEOUT,
    KIND_CRASH,
    KIND_ERROR,
    KIND_TIMEOUT,
)

__all__ = [
    "SERVE_SCHEMA",
    "OPS",
    "EXIT_REJECTED",
    "ERR_BAD_REQUEST",
    "ERR_CRASH",
    "ERR_DEADLINE",
    "ERR_ERROR",
    "ERR_REJECTED",
    "ERR_SHUTTING_DOWN",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_code_for_kind",
    "error_response",
    "exit_code_for",
    "ok_response",
    "parse_request",
    "value_from_json",
    "value_to_json",
]

SERVE_SCHEMA = "repro.serve/v1"

OPS = ("ping", "health", "metrics", "trace", "specialise", "run", "shutdown")

# The backpressure/drain exit code; 3/4/5 reuse the build pipeline's
# failure-class codes (see docs/robustness.md and `mspec --help`).
EXIT_REJECTED = 8

ERR_BAD_REQUEST = "bad_request"
ERR_REJECTED = "rejected"
ERR_DEADLINE = "deadline"
ERR_ERROR = "error"
ERR_CRASH = "crash"
ERR_SHUTTING_DOWN = "shutting_down"

_EXIT_BY_CODE = {
    ERR_BAD_REQUEST: EXIT_ERROR,
    ERR_ERROR: EXIT_ERROR,
    ERR_DEADLINE: EXIT_TIMEOUT,
    ERR_CRASH: EXIT_CRASH,
    ERR_REJECTED: EXIT_REJECTED,
    ERR_SHUTTING_DOWN: EXIT_REJECTED,
}

_CODE_BY_KIND = {
    KIND_ERROR: ERR_ERROR,
    KIND_TIMEOUT: ERR_DEADLINE,
    KIND_CRASH: ERR_CRASH,
}


class ProtocolError(Exception):
    """A request line the server cannot make sense of."""


def encode(doc):
    """One protocol line: compact JSON + newline, as bytes."""
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_line(line):
    """Parse one received line into a dict (raises ProtocolError)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("request is not UTF-8: %s" % exc)
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("request is not JSON: %s" % exc)
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")
    return doc


def _conv_static(v):
    """JSON static-argument values into object-language values: lists
    become tuples recursively (same convention as ``--batch`` files —
    a pair is ``["pair", 1, 2]``)."""
    if isinstance(v, list):
        return tuple(_conv_static(x) for x in v)
    return v


def value_to_json(v):
    """An object-language value as JSON (tuples become arrays)."""
    if isinstance(v, tuple):
        return [value_to_json(x) for x in v]
    return v


def value_from_json(v):
    """The inverse of :func:`value_to_json` (arrays become tuples)."""
    if isinstance(v, list):
        return tuple(value_from_json(x) for x in v)
    return v


def parse_request(line):
    """Decode and validate one request line; returns the request dict
    with ``static_args``/``dynamic_args`` values converted.  Raises
    ProtocolError."""
    doc = decode_line(line)
    op = doc.get("op")
    if op not in OPS:
        raise ProtocolError(
            "op must be one of %s, got %r" % ("/".join(OPS), op)
        )
    if op in ("specialise", "run"):
        goal = doc.get("goal")
        if not isinstance(goal, str) or not goal:
            raise ProtocolError("%s needs a 'goal' function name" % op)
        static = doc.get("static_args")
        if static is None:
            static = {}
        if not isinstance(static, dict):
            raise ProtocolError("static_args must be a JSON object")
        doc["static_args"] = {
            name: _conv_static(v) for name, v in static.items()
        }
        deadline = doc.get("deadline")
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or deadline <= 0
        ):
            raise ProtocolError("deadline must be a positive number")
    if op == "run":
        dynamic = doc.get("dynamic_args")
        if dynamic is None:
            dynamic = []
        if not isinstance(dynamic, list):
            raise ProtocolError("dynamic_args must be a JSON array")
        doc["dynamic_args"] = [_conv_static(v) for v in dynamic]
    return doc


def ok_response(op, request_id=None, **fields):
    doc = {"schema": SERVE_SCHEMA, "op": op, "ok": True}
    if request_id is not None:
        doc["id"] = request_id
    doc.update(fields)
    return doc


def error_response(op, code, message, request_id=None, kind=None):
    doc = {
        "schema": SERVE_SCHEMA,
        "op": op,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if kind is not None:
        doc["error"]["kind"] = kind
    if request_id is not None:
        doc["id"] = request_id
    return doc


def error_code_for_kind(kind):
    """The protocol error code for a ModuleFailure kind."""
    return _CODE_BY_KIND.get(kind, ERR_ERROR)


def exit_code_for(response):
    """The client exit code a response maps to (0 when ok)."""
    if response.get("ok"):
        return 0
    code = (response.get("error") or {}).get("code")
    return _EXIT_BY_CODE.get(code, EXIT_ERROR)
