"""The parallel batch-specialisation driver.

A specialisation service rarely receives one request: it receives a
*batch* — many goals, many static-argument vectors, often with
duplicates (every user who wants cubes asks for ``power`` at ``n=3``).
:func:`specialise_many` fans a batch across a process pool, reusing the
build pipeline's supervision machinery
(:class:`~repro.pipeline.faults.WaveSupervisor` +
:class:`~repro.pipeline.faults.FaultPolicy`: deadlines, retries,
crash degradation), and returns one result per request.

Three layers of work avoidance stack:

1. **Parent-side dedup** — requests with identical cache keys
   (:func:`repro.speccache.residual_cache_key`) are specialised once
   and the result is shared across every aligned request index
   (``batch.deduped``).
2. **Shared persistent cache** — with ``options.cache_dir`` set, warm
   requests are answered in the parent (one probe of the shared
   :class:`~repro.speccache.SpecCache`, no dispatch at all), and every
   worker publishes what it computes; work one process did — in this
   batch, a previous batch, or a previous session — is a warm hit for
   all the others.  The store's atomic publication makes concurrent
   writers safe.
3. **The pool itself** — independent requests run concurrently, one
   :class:`~repro.genext.link.GenextProgram` re-link per worker
   process, memoised in :data:`_WORKER_PROGRAMS` (pre-seeded in the
   parent before the pool forks, so on ``fork`` platforms workers
   inherit the already-linked program and re-link nothing).  Pass a
   :class:`~repro.pipeline.pool.WorkerPool` as ``pool`` to keep those
   forked workers alive *across calls*: the pool is created once,
   reused by every batch (and every retry wave within a batch), and
   shut down by its owner — this is the daemon steady state
   (:mod:`repro.serve`), where per-call fork/pickle overhead would
   otherwise dominate microsecond jobs.  With a resident pool even a
   single cold request is dispatched to it rather than run inline, so
   the caller's thread (a server's request handler) never does
   specialisation work itself and per-request deadlines are enforced
   from any thread.

Determinism: requests are independent, the residual program of each is
a pure function of (program fingerprint, goal, static args, options),
and results travel as canonical payloads (:mod:`repro.speccache`) —
so the outputs are byte-identical for every ``jobs`` width, warm or
cold.  The property test in ``tests/test_batch.py`` pins this.

Programs that cannot be shipped as text (no
:meth:`~repro.genext.link.GenextProgram.genext_modules`, e.g. a
:class:`~repro.specialiser.mix.MixProgram`) degrade to supervised
serial execution in the parent process; everything else still applies.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.genext.runtime import SpecError
from repro.pipeline.faults import FaultPolicy, ModuleFailure, WaveSupervisor

__all__ = [
    "BatchRequest",
    "BatchResult",
    "seed_worker_program",
    "specialise_many",
]


@dataclass(frozen=True)
class BatchRequest:
    """One specialisation request of a batch."""

    goal: str
    static_args: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, request, index):
        """Coerce one element of the ``requests`` argument: a
        ``BatchRequest``, a ``(goal, static_args)`` pair, or a
        ``{"goal": ..., "static_args": {...}}`` mapping (the
        ``--batch`` file format)."""
        if isinstance(request, cls):
            return request
        if isinstance(request, dict):
            unknown = set(request) - {"goal", "static_args"}
            if unknown:
                raise SpecError(
                    "request #%d has unknown key(s): %s"
                    % (index, ", ".join(sorted(unknown)))
                )
            goal = request.get("goal")
            static_args = request.get("static_args") or {}
        else:
            try:
                goal, static_args = request
            except (TypeError, ValueError):
                raise SpecError(
                    "request #%d is not a (goal, static_args) pair: %r"
                    % (index, request)
                )
        if not isinstance(goal, str):
            raise SpecError("request #%d has no goal name" % index)
        if not isinstance(static_args, dict):
            raise SpecError(
                "request #%d static_args must be a mapping" % index
            )
        return cls(goal, tuple(sorted(static_args.items())))

    @property
    def args(self):
        return dict(self.static_args)


@dataclass
class BatchResult:
    """What one :func:`specialise_many` run produced.

    ``results`` aligns with the input requests; a failed request's slot
    is ``None`` and its diagnostic is in ``failures`` under the same
    index.  Deduplicated requests share one
    :class:`~repro.genext.engine.SpecialisationResult` object.
    """

    results: List[object]
    failures: Dict[int, ModuleFailure]
    stats: Dict[str, int]

    @property
    def ok(self):
        return not self.failures

    def render_failures(self):
        lines = []
        for index in sorted(self.failures):
            f = self.failures[index]
            lines.append(
                "request #%d (%s): [%s] %s" % (index, f.module, f.kind, f.message)
            )
        return "\n".join(lines)


# Worker-process memo: fingerprint -> linked GenextProgram.  Pre-seeded
# in the parent before the pool is created, so fork-started workers
# inherit the linked program; spawn-started (or evicted) workers re-link
# once from the shipped module sources.
_WORKER_PROGRAMS = {}


def seed_worker_program(gp):
    """Memoise ``gp`` under its fingerprint so workers forked *after*
    this call inherit the linked program and re-link nothing.  Call it
    before :meth:`~repro.pipeline.pool.WorkerPool.warm` when holding a
    resident pool (the daemon and the benches do); ``specialise_many``
    seeds it automatically for pools it forks itself.  Returns the
    fingerprint (``None`` for unfingerprinted programs, which cannot be
    shipped to workers at all)."""
    fingerprint = getattr(gp, "fingerprint", None)
    fingerprint = fingerprint() if callable(fingerprint) else None
    if fingerprint is not None:
        _WORKER_PROGRAMS[fingerprint] = gp
    return fingerprint


def _worker_program(fingerprint, modules):
    gp = _WORKER_PROGRAMS.get(fingerprint)
    if gp is None:
        from repro.genext.link import link_genexts

        gp = link_genexts(modules)
        _WORKER_PROGRAMS[fingerprint] = gp
    return gp


def _specialise_worker(payload):
    """Top-level (picklable) worker: one request in, one canonical
    residual payload out.  Results travel as text payloads, never as
    pickled residual ASTs — the same discipline the persistent cache
    uses, which is what makes the jobs-width byte-identity hold."""
    name, fingerprint, modules, goal, static_args, options = payload
    from repro.genext.engine import specialise
    from repro.pipeline import faultinject
    from repro.speccache import encode_result

    # Serve-phase chaos hook: a planned kill-worker fault SIGKILLs this
    # worker mid-request (the parent sees BrokenProcessPool and the
    # supervisor's degradation path answers off the retry budget).
    faultinject.fire("serve", goal)
    gp = _worker_program(fingerprint, modules)
    return encode_result(specialise(gp, goal, dict(static_args), options))


def specialise_many(
    gp, requests, options=None, jobs=1, policy=None, obs=None, pool=None,
    **legacy
):
    """Specialise every request of a batch; returns a :class:`BatchResult`.

    ``requests`` is a sequence of ``(goal, static_args)`` pairs (or
    mappings, or :class:`BatchRequest` objects).  ``jobs`` is the pool
    width; ``policy`` the :class:`~repro.pipeline.faults.FaultPolicy`
    (default: fail fast, no retries — but one request's failure never
    abandons the others' results).  ``options`` applies to every
    request; set ``options.cache_dir`` to give the workers a shared
    persistent residual cache.  ``pool`` is an optional borrowed
    :class:`~repro.pipeline.pool.WorkerPool`: its pre-forked workers
    are reused (and left running) across calls, and cold requests are
    always dispatched to it — the persistent-daemon operating point.
    """
    from repro.api import spec_options
    from repro.obs import Obs

    options = spec_options("specialise_many", options, legacy)
    if options.sink is not None:
        raise SpecError(
            "specialise_many cannot stream definitions; sink must be None"
        )
    if jobs < 1:
        raise ValueError("jobs must be >= 1, got %d" % jobs)
    if obs is None:
        obs = Obs()
    if policy is None:
        policy = FaultPolicy()

    reqs = [BatchRequest.of(r, i) for i, r in enumerate(requests)]

    fingerprint = getattr(gp, "fingerprint", None)
    fingerprint = fingerprint() if callable(fingerprint) else None
    modules = getattr(gp, "genext_modules", None)
    modules = modules() if callable(modules) else None

    # Parent-side dedup: one specialisation per distinct cache key.
    groups = {}  # key -> list of request indices
    order = []  # distinct keys, first-appearance order
    for i, req in enumerate(reqs):
        if fingerprint is not None:
            from repro.speccache import residual_cache_key

            key = residual_cache_key(fingerprint, req.goal, req.args, options)
        else:
            key = ("request", i)  # unfingerprinted: no dedup possible
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)

    obs.metrics.counter("batch.requests").inc(len(reqs))
    obs.metrics.counter("batch.deduped").inc(len(reqs) - len(order))
    obs.metrics.gauge("batch.jobs").set(jobs)
    obs.bus.emit(
        "batch.start", requests=len(reqs), unique=len(order), jobs=jobs
    )

    from repro.speccache import decode_result

    # Warm unique requests are answered in the parent, against the
    # caller's obs, without crossing a process boundary at all; only
    # cold ones are dispatched.
    cache = None
    if options.cache_dir is not None and fingerprint is not None:
        from repro.speccache import SpecCache

        cache = SpecCache(options.cache_dir, metrics=obs.metrics, bus=obs.bus)

    answered = {}  # key -> decoded SpecialisationResult
    cold = []  # keys still needing a specialisation run
    for key in order:
        if cache is not None:
            goal = reqs[groups[key][0]].goal
            payload = cache.get(key, goal=goal)
            if payload is not None:
                answered[key] = decode_result(
                    payload, obs=obs, fuel=options.fuel
                )
                if options.tier_policy is not None:
                    # A warm hit is a reuse signal: let the execution
                    # ladder promote hot goals to a compiled artifact.
                    from repro.backend import tiers

                    tiers.note_warm(
                        cache, key, goal, options,
                        obs=obs, result=answered[key],
                    )
                continue
        cold.append(key)

    # A pool needs the program as text; without it, degrade to
    # supervised serial execution in this process.  A borrowed resident
    # pool is used for *any* cold work (its workers are already forked
    # and must own the jobs — deadlines only bind in pool mode off the
    # main thread); an ephemeral pool is only worth forking for >1 job.
    use_pool = modules is not None and (
        len(cold) > 1 if pool is None else len(cold) >= 1
    ) and (jobs > 1 or pool is not None)
    effective_jobs = (pool.jobs if pool is not None else jobs) if use_pool else 1
    shipped = modules if use_pool else None
    # Pre-seed so forked workers (and the serial path) skip re-linking.
    _WORKER_PROGRAMS[fingerprint] = gp

    payloads = []
    for key in cold:
        index = groups[key][0]
        req = reqs[index]
        payloads.append(
            (
                "req%d" % index,
                fingerprint,
                shipped,
                req.goal,
                req.static_args,
                options,
            )
        )

    supervisor = WaveSupervisor(
        _specialise_worker, effective_jobs, policy, obs=obs,
        pool=pool if use_pool else None,
    )
    try:
        done, failed = supervisor.run_wave(payloads)
    finally:
        supervisor.shutdown()
        if fingerprint is None:
            del _WORKER_PROGRAMS[fingerprint]

    results = [None] * len(reqs)
    failures = {}
    for key in order:
        indices = groups[key]
        name = "req%d" % indices[0]
        if key in answered:
            result = answered[key]
            for i in indices:
                results[i] = result
        elif name in done:
            result = decode_result(done[name], obs=obs, fuel=options.fuel)
            for i in indices:
                results[i] = result
        else:
            for i in indices:
                failures[i] = failed[name]

    obs.metrics.counter("batch.failed").inc(len(failures))
    obs.bus.emit(
        "batch.done",
        requests=len(reqs),
        unique=len(order),
        failed=len(failures),
    )
    return BatchResult(
        results=results,
        failures=failures,
        stats={
            "requests": len(reqs),
            "unique": len(order),
            "deduped": len(reqs) - len(order),
            "failed": len(failures),
            "jobs": effective_jobs,
        },
    )
