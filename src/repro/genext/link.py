"""Compiling and linking generating extensions.

"Runnable generating extensions are produced by linking together the
modules produced by cogen with libraries providing the basic mechanisms
of specialisation" (Sec. 6).  Here each generated module is compiled
with CPython and executed in its own namespace; ``_link`` hooks then wire
cross-module ``mk_f`` references through a global registry.  Only the
*generated* modules are needed — never the source of the modules they
came from, which is the paper's black-box property for libraries.
"""

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.genext.cogen import GenextModule
from repro.genext.runtime import SpecState
from repro.modsys.graph import ModuleGraph


@dataclass
class LoadedModule:
    """A compiled, executed generating-extension module.

    ``source`` is the module's generated Python text when it is known
    (always, for the in-tree loaders); it feeds the program fingerprint
    that keys the residual caches (:mod:`repro.speccache`)."""

    name: str
    imports: Tuple[str, ...]
    namespace: dict
    source: Optional[str] = None

    @property
    def exports(self):
        return self.namespace["_EXPORTS"]

    @property
    def signatures(self):
        return self.namespace["_SIGNATURES"]

    @property
    def fn_info(self):
        return self.namespace["_FN_INFO"]


class GenextProgram:
    """A linked set of generating-extension modules, ready to run."""

    def __init__(self, modules):
        self.modules = {m.name: m for m in modules}
        self.graph = ModuleGraph({m.name: m.imports for m in modules})
        self.graph.check_acyclic()
        self.registry = {}
        self.signatures = {}
        self.fn_info = {}
        for m in modules:
            for fname, fn in m.exports.items():
                if fname in self.registry:
                    raise ValueError("duplicate function %r at link time" % fname)
                self.registry[fname] = fn
            self.signatures.update(m.signatures)
            self.fn_info.update(m.fn_info)
        missing = set()
        for m in modules:
            for needed in m.namespace.get("_IMPORTED", {}):
                if needed not in self.registry:
                    missing.add(needed)
        if missing:
            raise ValueError(
                "unresolved functions at link time: %s" % ", ".join(sorted(missing))
            )
        for m in modules:
            m.namespace["_link"](self.registry)
        self._fingerprint = None

    def fingerprint(self):
        """A SHA-256 hex digest identifying this linked program: the
        generating-extension module *sources* plus the link topology
        (module names and import lists).  Two programs with the same
        fingerprint specialise identically, so it anchors the keys of
        the persistent residual cache and the RTCG callable LRU
        (:mod:`repro.speccache`).  ``None`` when any module was loaded
        without its source text (caching is then disabled)."""
        if self._fingerprint is None:
            h = hashlib.sha256(b"mspec-genext-fingerprint\x00")
            for name in sorted(self.modules):
                m = self.modules[name]
                if m.source is None:
                    return None
                h.update(name.encode("utf-8"))
                h.update(b"(%s)" % ",".join(m.imports).encode("utf-8"))
                h.update(hashlib.sha256(m.source.encode("utf-8")).digest())
                h.update(b"\x00")
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def new_state(
        self,
        strategy="bfs",
        sink=None,
        max_versions=10_000,
        deadline=None,
        obs=None,
    ):
        """A fresh :class:`SpecState` for one specialisation run.

        ``deadline`` is a wall-clock budget in seconds (see
        :meth:`SpecState.check_deadline`); ``obs`` an optional
        :class:`repro.obs.Obs` whose tracer receives the run's spans."""
        return SpecState(
            self.fn_info,
            self.graph,
            strategy=strategy,
            sink=sink,
            max_versions=max_versions,
            deadline=deadline,
            obs=obs,
        )

    def genext_modules(self):
        """The :class:`GenextModule` records this program links, or
        ``None`` when any source is missing.  The batch driver ships
        these across process boundaries (text, per the paper's
        interface discipline) so workers can re-link the program."""
        out = []
        for name in sorted(self.modules):
            m = self.modules[name]
            if m.source is None:
                return None
            out.append(GenextModule(name, m.imports, m.source))
        return out

    def mk(self, fname):
        """The generating version of ``fname``."""
        return self.registry[fname]

    def signature(self, fname):
        return self.signatures[fname]


def load_genext(genext_module, filename=None, code=None):
    """Compile and execute one generated module.

    ``code`` may supply an already compiled code object of the module's
    source (e.g. from the build pipeline's artifact cache), skipping
    compilation."""
    if code is None:
        code = compile(
            genext_module.source,
            filename or "<genext:%s>" % genext_module.name,
            "exec",
        )
    namespace = {"__name__": "genext_%s" % genext_module.name}
    exec(code, namespace)
    return LoadedModule(
        genext_module.name,
        genext_module.imports,
        namespace,
        source=genext_module.source,
    )


def link_genexts(genext_modules):
    """Compile, execute, and link a collection of generated modules."""
    return GenextProgram([load_genext(m) for m in genext_modules])


def write_genexts(genext_modules, directory):
    """Write generated modules to ``directory`` as ``*.genext.py`` files
    (the on-disk form a library vendor would ship)."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for m in genext_modules:
        path = os.path.join(directory, "%s.genext.py" % m.name)
        with open(path, "w") as f:
            f.write(m.source)
        paths.append(path)
    return paths


def load_genext_dir(directory):
    """Load and link every ``*.genext.py`` module in ``directory``.

    The import list of each module is recovered from its ``_IMPORTED``
    table (mapping to defining modules is only needed for placement, and
    that arrives through ``_FN_INFO``), so the original sources are not
    required."""
    loaded = []
    sources = {}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".genext.py"):
            continue
        name = entry[: -len(".genext.py")]
        with open(os.path.join(directory, entry)) as f:
            sources[name] = f.read()
    # First pass: execute everything to get _FN_INFO for import recovery.
    namespaces = {}
    for name, source in sources.items():
        code = compile(source, "%s.genext.py" % name, "exec")
        ns = {"__name__": "genext_%s" % name}
        exec(code, ns)
        namespaces[name] = ns
    module_of = {}
    for name, ns in namespaces.items():
        for fname in ns["_EXPORTS"]:
            module_of[fname] = name
    modules = []
    for name, ns in namespaces.items():
        imports = sorted(
            {
                module_of[f]
                for f in ns.get("_IMPORTED", {})
                if f in module_of and module_of[f] != name
            }
        )
        modules.append(
            LoadedModule(name, tuple(imports), ns, source=sources[name])
        )
    return GenextProgram(modules)
