"""Generating extensions: the cogen, its runtime library, and the linker.

This is the paper's core contribution (Secs. 2, 4.2, 6):

* :mod:`repro.genext.cogen` — the cogen proper: compiles one *annotated*
  module into a generating-extension module (generated Python source in
  the shape of Fig. 3: one ``mk_f`` / ``mk_f_body`` pair per function).
  Runs once per module, independently of all other modules.
* :mod:`repro.genext.runtime` — the runtime library linked with every
  generating extension: partially static values, ``mk_resid`` with its
  pending/done discipline, ``mk_if``/``mk_prim``/``mk_app``, binding-time
  coercions, static closures carrying body generators, residual-module
  placement, and statistics.
* :mod:`repro.genext.link` — compiles and links generating-extension
  modules into a runnable whole (no source code needed).
* :mod:`repro.genext.engine` — drives specialisation: sets up a goal,
  runs the breadth-first (or depth-first) engine, and assembles the
  residual program.
"""

from repro.genext.cogen import cogen_module, cogen_program
from repro.genext.engine import SpecialisationResult, specialise
from repro.genext.link import GenextProgram, link_genexts
from repro.genext.runtime import SpecError, SpecState

__all__ = [
    "GenextProgram",
    "SpecError",
    "SpecState",
    "SpecialisationResult",
    "cogen_module",
    "cogen_program",
    "link_genexts",
    "specialise",
]
