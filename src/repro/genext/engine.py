"""Driving a specialisation run end to end.

Given a linked :class:`~repro.genext.link.GenextProgram`, a goal function
and a division of its arguments into static (values supplied) and dynamic
(values unknown), this module:

1. derives the goal binding-time instantiation from the embedded
   signatures (saturating shared binding-time parameters: a parameter
   mentioned by any dynamic argument becomes ``D``);
2. injects the static values as partially static values, coercing them
   to the instantiated parameter types (which may dynamise components);
3. calls the goal's generating version and runs the pending list to
   exhaustion (breadth-first) or lets recursion finish (depth-first);
4. assembles the residual program: placed definitions become modules with
   computed imports, plus an entry definition carrying the goal's name.

The result can be pretty-printed, written to disk, or run directly with
the object-language interpreter.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.genext.runtime import (
    DCode,
    S,
    D,
    SpecError,
    deep_recursion,
    TBase,
    TFun,
    TList,
    TPair,
    TSkel,
    coerce,
    dynamize,
    from_python,
)
from repro.lang.ast import Call, Def, Var
from repro.lang.names import called_functions
from repro.modsys.program import link_program
from repro.residual.module import assemble_monolithic, assemble_program


@dataclass
class SpecialisationResult:
    """Everything a specialisation run produced."""

    program: object  # residual lang Program
    linked: object  # residual LinkedProgram (validated, runnable)
    entry: str  # name of the entry function
    dynamic_params: Tuple[str, ...]
    stats: Dict[str, int]
    module_names: Dict[frozenset, str]
    obs: Optional[object] = None  # the run's repro.obs.Obs, if any
    fuel: int = 1_000_000  # default fuel for :meth:`run`

    def run(self, *dynamic_args, fuel=None):
        """Run the residual program on the dynamic arguments."""
        from repro.interp import run_program

        fuel = self.fuel if fuel is None else fuel
        return run_program(self.linked, self.entry, list(dynamic_args), fuel=fuel)


def _is_fully_dynamic(t):
    if isinstance(t, (TBase, TSkel)):
        return t.bt.dyn
    if isinstance(t, TList):
        return t.bt.dyn and _is_fully_dynamic(t.elem)
    if isinstance(t, TPair):
        return t.bt.dyn and _is_fully_dynamic(t.fst) and _is_fully_dynamic(t.snd)
    if isinstance(t, TFun):
        return t.bt.dyn and _is_fully_dynamic(t.arg) and _is_fully_dynamic(t.res)
    raise SpecError("bad runtime type %r" % (t,))


def goal_binding_times(signature, static_names):
    """The binding-time environment for a goal: parameters of dynamic
    arguments become ``D``, everything else stays ``S``."""
    env = {b: S for b in signature.bt_params}
    for param, mentioned in zip(signature.params, signature.param_bts):
        if param in static_names:
            continue
        for b in mentioned:
            env[b] = D
    for a, b in signature.quals:
        if env.get(a, S).dyn:
            env[b] = D
    for b in signature.dyn_inputs:
        env[b] = D
    # Contravariant result inputs: the residual program's returned
    # closures face unknown (dynamic) contexts.
    for b in signature.result_inputs:
        env[b] = D
    return env


def _absorb_spec_stats(metrics, stats):
    """Unify a run's :class:`~repro.genext.runtime.Stats` into the
    metrics registry (``spec.*``): counts become counters, peaks become
    max-gauges, so repeated runs against one registry accumulate."""
    for name, value in stats.as_dict().items():
        if name.endswith("_peak"):
            metrics.gauge("spec." + name).max_of(value)
        else:
            metrics.counter("spec." + name).inc(value)


def specialise(gp, goal, static_args=None, options=None, obs=None, **legacy):
    """Specialise ``goal`` with respect to ``static_args``.

    ``static_args`` maps parameter names of the goal function to Python
    values; parameters not mentioned stay dynamic and become the
    parameters of the residual entry function.

    ``options`` is a :class:`repro.api.SpecOptions` (legacy keywords —
    ``strategy=...``, ``sink=...`` — still work, with a once-per-process
    :class:`repro.api.LegacyOptionsWarning`).  Its ``timeout`` is a
    wall-clock budget in seconds for the whole run — the time-domain
    companion of the ``max_versions`` (polyvariance) and interpreter
    ``fuel`` guards.  Past it the run is aborted with
    :class:`~repro.genext.runtime.SpecTimeout`, so a pathological
    division cannot wedge an unattended build worker.

    ``obs``, if given, receives the run's spans (``specialise`` →
    ``pending-pump`` → ``mk_resid:<version>``) and its ``spec.*``
    metrics.

    With ``options.cache_dir`` set, results are kept in the persistent
    residual cache (:mod:`repro.speccache`): a warm hit decodes the
    stored residual program — byte-identical to a cold run's — without
    constructing a :class:`~repro.genext.runtime.SpecState` at all.
    Runs with a ``sink`` bypass the cache, as do programs that cannot
    report a :meth:`~repro.genext.link.GenextProgram.fingerprint`.
    """
    from repro.api import spec_options
    from repro.obs import Obs

    options = spec_options("specialise", options, legacy)
    if obs is None:
        obs = Obs()
    tracer = obs.tracer
    static_args = dict(static_args or {})

    cache = key = None
    if options.cache_dir is not None and options.sink is None:
        fingerprint = getattr(gp, "fingerprint", None)
        fingerprint = fingerprint() if callable(fingerprint) else None
        if fingerprint is not None:
            from repro.speccache import SpecCache, decode_result

            cache = SpecCache(
                options.cache_dir, metrics=obs.metrics, bus=obs.bus
            )
            key = cache.key(fingerprint, goal, static_args, options)
            payload = cache.get(key, goal=goal)
            if payload is not None:
                return decode_result(payload, obs=obs, fuel=options.fuel)

    signature = gp.signature(goal)
    unknown = set(static_args) - set(signature.params)
    if unknown:
        raise SpecError(
            "%r has no parameter(s) %s" % (goal, ", ".join(sorted(unknown)))
        )
    env = goal_binding_times(signature, set(static_args))
    types = signature.param_types(env)
    st = gp.new_state(
        strategy=options.strategy,
        sink=options.sink,
        max_versions=options.max_versions,
        deadline=options.timeout,
        obs=obs,
    )

    args = []
    dynamic_params = []
    for param, t in zip(signature.params, types):
        if param in static_args:
            args.append(coerce(st, from_python(static_args[param]), t))
        else:
            if not _is_fully_dynamic(t):
                raise SpecError(
                    "parameter %r of %r cannot be dynamic: its binding-time "
                    "type has a static component" % (param, goal)
                )
            dynamic_params.append(param)
            args.append(DCode(Var(param)))

    bt_values = [env[b] for b in signature.bt_params]
    with tracer.span(
        "specialise", cat="spec", goal=goal, strategy=options.strategy
    ):
        with deep_recursion():
            result = gp.mk(goal)(st, *bt_values, *args)
            st.run_pending()

            entry_code = dynamize(st, result).code
            st.run_pending()  # dynamisation may residualise further calls

            placed = list(st.defs)
            entry_name, placed = _attach_entry(
                st, goal, args, entry_code, tuple(dynamic_params), placed
            )

            with tracer.span("assemble", cat="spec"):
                if options.monolithic:
                    program = assemble_monolithic(placed)
                    names = {frozenset(["Residual"]): "Residual"}
                else:
                    program, names = assemble_program(placed)
                # Linking walks the (possibly very deep) residual
                # expressions.
                linked = link_program(program)
    _absorb_spec_stats(obs.metrics, st.stats)
    result = SpecialisationResult(
        program=program,
        linked=linked,
        entry=entry_name,
        dynamic_params=tuple(dynamic_params),
        stats=st.stats.as_dict(),
        module_names=names,
        obs=obs,
        fuel=options.fuel,
    )
    if cache is not None:
        from repro.speccache import encode_result

        cache.put(key, encode_result(result))
    return result


def _attach_entry(st, goal, args, entry_code, dynamic_params, placed):
    """Add the entry definition, folding away a trivial wrapper.

    If the goal itself was residualised, the entry code is just a call
    of that residual version on the goal's dynamic parameters; in that
    case the residual version is renamed to the goal's name instead of
    generating a one-line wrapper (this reproduces the paper's residual
    ``main``)."""
    if (
        isinstance(entry_code, Call)
        and entry_code.args == tuple(Var(p) for p in dynamic_params)
    ):
        target = entry_code.func
        refs = 0
        for _, d in placed:
            if target in called_functions(d.body):
                refs += 1
        if refs == 0:
            out = []
            for placement, d in placed:
                if d.name == target:
                    out.append((placement, Def(goal, d.params, d.body)))
                else:
                    out.append((placement, d))
            return goal, _rename_calls(out, target, goal)
    placement = st.place(goal, args)
    return goal, placed + [(placement, Def(goal, dynamic_params, entry_code))]


def _rename_calls(placed, old, new):
    from repro.lang.ast import App, If, Lam, Lit, Prim

    def go(e):
        if isinstance(e, (Lit, Var)):
            return e
        if isinstance(e, Prim):
            return Prim(e.op, tuple(go(a) for a in e.args))
        if isinstance(e, If):
            return If(go(e.cond), go(e.then_branch), go(e.else_branch))
        if isinstance(e, Call):
            func = new if e.func == old else e.func
            return Call(func, tuple(go(a) for a in e.args))
        if isinstance(e, Lam):
            return Lam(e.var, go(e.body))
        if isinstance(e, App):
            return App(go(e.fun), go(e.arg))
        raise TypeError(e)

    return [(pl, Def(d.name, d.params, go(d.body))) for pl, d in placed]
