"""The specialisation runtime linked with every generating extension.

This corresponds to the paper's ~300 lines of "libraries providing the
basic mechanisms of specialisation, and generating versions of the
language primitives" (Sec. 6).  Generated modules import it as ``rt``.

Partially static values
-----------------------

Specialisation-time values (:class:`PE`) mirror the binding-time types:

* :class:`SBase` — a known base value;
* :class:`SList` — a list with a known spine (elements are again
  :class:`PE`, so lists may be partially static);
* :class:`SPair` — a pair of :class:`PE`;
* :class:`SClo` — a static closure; following the paper it carries the
  bound variable, the environment, *and a function which generates
  specialisations of the closure's body* (so generating extensions never
  interpret source code), plus a label and the free function names of
  its body (for residual-module placement, Sec. 5);
* :class:`DCode` — a dynamic value: residual object-language code.

``mk_resid``
------------

The exact shape of Fig. 3: it receives the (evaluated) unfold binding
time, an identification triple ``(name, binding-times, arguments)``, a
thunk giving the result of unfolding the call, and a function building
the body of a new specialised version from fresh formal parameters.  The
first time a triple is seen it allocates a residual name, *places* the
specialisation in a residual module (before the body exists, from the
free function names of the call), and schedules the body for
construction — on the pending list (breadth-first, the paper's choice)
or immediately (depth-first, kept for the space-consumption comparison).
"""

import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.bt.bt import BT, D, S, bt_lub
from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var, count_nodes
from repro.lang.names import NameSupply
from repro.lang.prims import PrimError, apply_prim, is_pair
from repro.obs.trace import NULL_TRACER

# ``slots=True`` (3.10+) removes the per-instance ``__dict__`` from the
# partially static values and runtime types — the two object families a
# specialisation run allocates by the million.
_DC_SLOTS = {"frozen": True}
if sys.version_info >= (3, 10):
    _DC_SLOTS["slots"] = True

# The ``rt.lub`` of generated code.  Generated code only ever passes
# concrete S/D operands, for which :func:`~repro.bt.bt.bt_lub` returns
# the shared singletons on an allocation-free path — measurably cheaper
# than memoising the call (see benchmarks/bench_spec_throughput.py).
lub = bt_lub

__all__ = [
    "BT",
    "D",
    "DCode",
    "PE",
    "S",
    "SBase",
    "SClo",
    "SList",
    "SPair",
    "Signature",
    "SpecError",
    "SpecState",
    "SpecTimeout",
    "TBase",
    "TFun",
    "TList",
    "TPair",
    "TSkel",
    "code_of",
    "coerce",
    "deep_recursion",
    "dynamize",
    "from_python",
    "lit",
    "lub",
    "mk_app",
    "mk_if",
    "mk_lam",
    "mk_prim",
    "mk_resid",
    "nil",
    "to_python",
]


class SpecError(Exception):
    """A specialisation-time error (the static part of the program went
    wrong, or generated code violated an invariant)."""


class SpecTimeout(SpecError):
    """The wall-clock deadline of a specialisation run expired.

    The ``fuel``/``max_versions`` guards bound *logical* work; this one
    bounds *time*, so a pathological division cannot wedge an unattended
    build worker even when each individual step is cheap."""


class deep_recursion:
    """Context manager giving specialisation a deep Python stack and
    turning stack exhaustion into a diagnostic :class:`SpecError`
    (static unfolding mirrors the program's own recursion depth)."""

    def __init__(self, limit=200_000):
        self.limit = limit

    def __enter__(self):
        import sys

        self._old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(self._old, self.limit))
        return self

    def __exit__(self, exc_type, exc, tb):
        import sys

        sys.setrecursionlimit(self._old)
        if exc_type is RecursionError:
            raise SpecError(
                "specialisation recursed too deeply: static unfolding "
                "does not terminate for this division (or the program "
                "recurses extremely deeply on its static data)"
            ) from None
        return False


# ---------------------------------------------------------------------------
# Runtime binding-time types (concrete S/D in every slot).
# ---------------------------------------------------------------------------


@dataclass(**_DC_SLOTS)
class TBase:
    name: str
    bt: BT


@dataclass(**_DC_SLOTS)
class TList:
    bt: BT
    elem: object


@dataclass(**_DC_SLOTS)
class TPair:
    bt: BT
    fst: object
    snd: object


@dataclass(**_DC_SLOTS)
class TFun:
    bt: BT
    arg: object
    res: object


@dataclass(**_DC_SLOTS)
class TSkel:
    """A still-polymorphic position; coercion through it is an identity
    unless the target is dynamic."""

    bt: BT


# ---------------------------------------------------------------------------
# Partially static values.
# ---------------------------------------------------------------------------


class PE:
    """Base class of specialisation-time values."""

    __slots__ = ()


@dataclass(**_DC_SLOTS)
class SBase(PE):
    """A known base value (natural or boolean)."""

    value: object


@dataclass(**_DC_SLOTS)
class SList(PE):
    """A list with known spine; elements are partially static values."""

    items: Tuple[PE, ...]


@dataclass(**_DC_SLOTS)
class SPair(PE):
    """A known pair of partially static values."""

    fst: PE
    snd: PE


@dataclass(**_DC_SLOTS)
class DCode(PE):
    """A dynamic value: a fragment of residual code."""

    code: object  # repro.lang.ast.Expr


@dataclass(**_DC_SLOTS)
class SClo(PE):
    """A static closure.

    ``helper`` is the compiled body generator: called as
    ``helper(st, *bts, arg, *env_values)`` it builds a specialisation of
    the closure's body — the extra field the paper adds to Similix-style
    closures so that generating extensions need never interpret a body.
    ``env`` is an ordered tuple of ``(name, PE)``; ``fvs`` are the named
    functions free in the body (with those of nested lambdas), used by
    the placement algorithm.
    """

    var: str
    helper: Callable
    bts: Tuple[BT, ...]
    env: Tuple[Tuple[str, PE], ...]
    label: str
    fvs: Tuple[str, ...]

    def apply(self, st, arg):
        """Unfold the closure on ``arg`` (a :class:`PE`)."""
        return self.helper(st, *self.bts, arg, *(v for _, v in self.env))


def lit(value):
    """The partially static value of a literal."""
    return SBase(value)


def nil():
    return SList(())


def from_python(value):
    """Convert a plain Python value into a fully static :class:`PE`."""
    if isinstance(value, bool) or isinstance(value, int):
        return SBase(value)
    if is_pair(value):
        return SPair(from_python(value[1]), from_python(value[2]))
    if isinstance(value, (tuple, list)):
        return SList(tuple(from_python(v) for v in value))
    raise SpecError("cannot inject %r into the object language" % (value,))


def to_python(pe):
    """Convert a fully static :class:`PE` back to a Python value."""
    if isinstance(pe, SBase):
        return pe.value
    if isinstance(pe, SList):
        return tuple(to_python(v) for v in pe.items)
    if isinstance(pe, SPair):
        return ("pair", to_python(pe.fst), to_python(pe.snd))
    raise SpecError("value is not fully static: %r" % (pe,))


def code_of(pe):
    """The residual code of a dynamic value (it must be one)."""
    if isinstance(pe, DCode):
        return pe.code
    raise SpecError(
        "expected a dynamic value, got %s (the binding-time analysis "
        "should have inserted a coercion)" % type(pe).__name__
    )


# ---------------------------------------------------------------------------
# Dynamisation and coercion.
# ---------------------------------------------------------------------------


def dynamize(st, pe):
    """Coerce any partially static value all the way to residual code."""
    if isinstance(pe, DCode):
        return pe
    if isinstance(pe, SBase):
        return DCode(Lit(pe.value))
    if isinstance(pe, SList):
        code = Lit(())
        for item in reversed(pe.items):
            code = Prim("cons", (dynamize(st, item).code, code))
        return DCode(code)
    if isinstance(pe, SPair):
        return DCode(
            Prim("pair", (dynamize(st, pe.fst).code, dynamize(st, pe.snd).code))
        )
    if isinstance(pe, SClo):
        # Residualise the lambda: apply the body generator to a fresh
        # dynamic variable.  Well-annotatedness guarantees the body then
        # produces dynamic code.
        fresh = st.fresh_var(pe.var)
        body = pe.apply(st, DCode(Var(fresh)))
        return DCode(Lam(fresh, dynamize(st, body).code))
    raise SpecError("cannot dynamize %r" % (pe,))


def coerce(st, pe, dst):
    """Coerce ``pe`` to the runtime binding-time type ``dst``.

    Value-directed: only the *target* type matters.  Static targets are
    identities; dynamic targets lift/residualise; partially static list
    and pair targets recurse.
    """
    if isinstance(dst, TSkel):
        return dynamize(st, pe) if dst.bt.dyn else pe
    if isinstance(dst, TBase):
        if dst.bt.dyn:
            return dynamize(st, pe)
        if not isinstance(pe, SBase):
            raise SpecError(
                "value %r does not fit binding-time type %s"
                % (pe, dst.name)
            )
        return pe
    if isinstance(dst, TList):
        if dst.bt.dyn:
            return dynamize(st, pe)
        if not isinstance(pe, SList):
            raise SpecError(
                "value %r where a static-spine list is required" % (pe,)
            )
        return SList(tuple(coerce(st, item, dst.elem) for item in pe.items))
    if isinstance(dst, TPair):
        if dst.bt.dyn:
            return dynamize(st, pe)
        if not isinstance(pe, SPair):
            raise SpecError("value %r where a static pair is required" % (pe,))
        return SPair(coerce(st, pe.fst, dst.fst), coerce(st, pe.snd, dst.snd))
    if isinstance(dst, TFun):
        # Function components are invariant; only full dynamisation
        # changes the representation.
        if dst.bt.dyn:
            return dynamize(st, pe)
        if not isinstance(pe, SClo):
            raise SpecError(
                "value %r where a static closure is required" % (pe,)
            )
        return pe
    raise SpecError("bad coercion target %r" % (dst,))


# ---------------------------------------------------------------------------
# Argument splitting for mk_resid.
# ---------------------------------------------------------------------------


@dataclass(**({"slots": True} if sys.version_info >= (3, 10) else {}))
class _Split:
    """One argument split into a memoisation key, dynamic code leaves,
    fresh-name hints for those leaves, and a rebuild function taking
    replacement leaves (as PEs)."""

    key: object
    dyn: tuple
    hints: tuple
    rebuild: Callable


# Memo-key helpers for ``_split``.  Static leaves use the (frozen,
# hashable) PE itself as its own key — type-discriminated equality for
# free, no per-call tuple allocation; the all-dynamic leaf shares one
# key object, as do the empty dyn/hint tuples.
_DYN_KEY = ("d",)
_EMPTY = ()


def _split(pe, hint):
    if isinstance(pe, SBase):
        return _Split(pe, _EMPTY, _EMPTY, lambda leaves: pe)
    if isinstance(pe, DCode):
        return _Split(_DYN_KEY, (pe.code,), (hint,), lambda leaves: leaves[0])
    if isinstance(pe, SList):
        parts = [_split(item, hint) for item in pe.items]
        return _combine("l", parts, lambda rebuilt: SList(tuple(rebuilt)))
    if isinstance(pe, SPair):
        parts = [_split(pe.fst, hint), _split(pe.snd, hint)]
        return _combine("p", parts, lambda rebuilt: SPair(rebuilt[0], rebuilt[1]))
    if isinstance(pe, SClo):
        parts = [_split(v, name) for name, v in pe.env]
        names = tuple(name for name, _ in pe.env)

        def rebuild_clo(rebuilt):
            return SClo(
                pe.var,
                pe.helper,
                pe.bts,
                tuple(zip(names, rebuilt)),
                pe.label,
                pe.fvs,
            )

        split = _combine("c", parts, rebuild_clo)
        split.key = ("c", pe.label, pe.bts, split.key)
        return split
    raise SpecError("cannot split %r" % (pe,))


def _combine(tag, parts, assemble):
    key = (tag,) + tuple(p.key for p in parts)
    dyn = tuple(c for p in parts for c in p.dyn)
    hints = tuple(h for p in parts for h in p.hints)
    sizes = [len(p.dyn) for p in parts]

    def rebuild(leaves):
        rebuilt = []
        i = 0
        for p, n in zip(parts, sizes):
            rebuilt.append(p.rebuild(leaves[i : i + n]))
            i += n
        return assemble(rebuilt)

    return _Split(key, dyn, hints, rebuild)


def _closure_fvs(pe, out):
    """Collect free function names of all closures inside ``pe``."""
    if isinstance(pe, SClo):
        out.update(pe.fvs)
        for _, v in pe.env:
            _closure_fvs(v, out)
    elif isinstance(pe, SList):
        for v in pe.items:
            _closure_fvs(v, out)
    elif isinstance(pe, SPair):
        _closure_fvs(pe.fst, out)
        _closure_fvs(pe.snd, out)


# ---------------------------------------------------------------------------
# Specialisation state.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Signature:
    """Goal-setup information embedded in a generating extension for each
    exported function (binding-time interface, in executable form)."""

    bt_params: Tuple[str, ...]
    params: Tuple[str, ...]
    param_bts: Tuple[Tuple[str, ...], ...]  # bt params mentioned per param
    param_types: Callable  # bt-env dict -> tuple of runtime types
    quals: Tuple[Tuple[str, str], ...]  # (a <= b) over bt param names
    dyn_inputs: Tuple[str, ...]  # bt params forced dynamic
    result_inputs: Tuple[str, ...] = ()  # contravariant result params


@dataclass(frozen=True)
class FnInfo:
    """Per-function metadata a generating extension registers with the
    linker: defining module, parameter names (used as fresh-variable
    hints), and per-definition free function names."""

    name: str
    module: str
    params: Tuple[str, ...]
    fvs: Tuple[str, ...]


@dataclass
class _ResidInfo:
    name: str
    placement: frozenset
    params: Tuple[str, ...]


@dataclass
class Stats:
    """Counters for the paper's performance/space claims."""

    specialisations: int = 0
    unfolds: int = 0
    memo_hits: int = 0
    pending_peak: int = 0
    active_peak: int = 0
    residual_nodes: int = 0
    coercions: int = 0

    def as_dict(self):
        return dict(self.__dict__)


class SpecState:
    """All mutable state of one specialisation run.

    The paper keeps this in a monad; we pass it explicitly (``st``) to
    every generated function.
    """

    def __init__(
        self,
        fn_info,
        module_graph,
        strategy="bfs",
        sink=None,
        max_versions=10_000,
        deadline=None,
        obs=None,
    ):
        """``fn_info`` maps function names to :class:`FnInfo`;
        ``module_graph`` is the *source* import graph (placement needs
        its transitive-import relation); ``strategy`` is ``'bfs'`` or
        ``'dfs'``; ``sink``, if given, receives each finished residual
        definition as ``sink(placement, definition)``.

        ``max_versions`` bounds the polyvariance of any single function:
        a division with unbounded static variation (the classic
        static-under-dynamic-control pitfall, e.g. a program counter
        that only stops on a dynamic test) would otherwise specialise
        forever; exceeding the bound raises a diagnostic
        :class:`SpecError` instead.  ``None`` disables the guard.

        ``deadline`` is a wall-clock budget in seconds for the whole
        run; past it, :meth:`check_deadline` raises
        :class:`SpecTimeout`.  ``None`` (the default) disables the
        clock entirely.

        ``obs``, if given, is a :class:`repro.obs.Obs`: every
        pending-pump drain and every residual version built get spans on
        its tracer (``pending-pump`` / ``mk_resid:<name>``), so
        ``mspec specialise --trace`` shows where a run's time went."""
        if strategy not in ("bfs", "dfs"):
            raise ValueError("strategy must be 'bfs' or 'dfs'")
        self.fn_info = fn_info
        self.module_graph = module_graph
        self.strategy = strategy
        self.sink = sink
        self.max_versions = max_versions
        self.pending = deque()
        self.done = {}
        self.defs = []  # list of (placement, Def)
        self.stats = Stats()
        self._names = NameSupply()
        self._vars = NameSupply()
        self._versions = {}
        self._active = 0
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self.deadline = deadline
        self._deadline_at = (
            None if deadline is None else time.monotonic() + deadline
        )

    def check_deadline(self):
        """Raise :class:`SpecTimeout` once the wall-clock budget is
        spent.  Called on every ``mk_resid`` and every pending-list
        step — the two places all specialisation loops pass through —
        so even a non-terminating unfold is cut off promptly."""
        if self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            raise SpecTimeout(
                "specialisation exceeded its %.3gs deadline "
                "(%d specialisation(s), %d unfold(s) so far)"
                % (self.deadline, self.stats.specialisations, self.stats.unfolds)
            )

    def count_version(self, fname):
        """Record one more specialised version of ``fname``; raise when
        the polyvariance bound is exceeded."""
        n = self._versions.get(fname, 0) + 1
        self._versions[fname] = n
        if self.max_versions is not None and n > self.max_versions:
            raise SpecError(
                "more than %d specialised versions of %r: the chosen "
                "division has unbounded static variation (a static value "
                "changes under dynamic control); make that argument "
                "dynamic or raise max_versions" % (self.max_versions, fname)
            )

    # -- name supplies ------------------------------------------------------

    def fresh_fun_name(self, base):
        return self._names.fresh(base + "_")

    def fresh_var(self, hint):
        return self._vars.fresh(hint + "_")

    # -- placement (Sec. 5) --------------------------------------------------

    def place(self, fname, args):
        """Choose the residual module for a specialisation of ``fname``
        with static parts ``args`` — *before* its body is constructed.

        Collects the function names free in the call (the callee plus
        the free function names of every static closure reachable in the
        static parts), maps them to their defining modules, removes
        modules imported (transitively) into others, and returns the
        remaining combination."""
        names = {fname}
        for a in args:
            _closure_fvs(a, names)
        modules = {self.fn_info[n].module for n in names if n in self.fn_info}
        return self.module_graph.reduce_by_dominance(modules)

    # -- the engine ----------------------------------------------------------

    def _emit(self, info, body_pe):
        body = code_of(body_pe)
        d = _make_def(info.name, info.params, body)
        self.stats.residual_nodes += count_nodes(body)
        self.defs.append((info.placement, d))
        if self.sink is not None:
            self.sink(info.placement, d)

    def _build_now(self, info, build):
        self._active += 1
        self.stats.active_peak = max(self.stats.active_peak, self._active)
        try:
            with self._tracer.span(
                "mk_resid:%s" % info.name,
                cat="mk_resid",
                version=info.name,
                placement="+".join(sorted(info.placement)),
            ):
                self._emit(info, build())
        finally:
            self._active -= 1

    def schedule(self, info, build):
        if self.strategy == "dfs":
            self._build_now(info, build)
            return
        self.pending.append((info, build))
        self.stats.pending_peak = max(self.stats.pending_peak, len(self.pending))

    def run_pending(self):
        """Process the pending list to exhaustion (breadth-first mode)."""
        if not self.pending:
            return
        with self._tracer.span("pending-pump", cat="spec") as span:
            drained = 0
            while self.pending:
                self.check_deadline()
                info, build = self.pending.popleft()
                self._build_now(info, build)
                drained += 1
            span.note(drained=drained)


def _make_def(name, params, body):
    from repro.lang.ast import Def

    return Def(name, tuple(params), body)


# ---------------------------------------------------------------------------
# Generating versions of the language constructs.
# ---------------------------------------------------------------------------


def mk_resid(st, unfold, fname, bts, args, unfolded, build):
    """Create a specialised call of ``fname`` (Fig. 3's ``mk-resid``).

    ``unfold`` is the callee's evaluated unfold binding time: static
    means the call is unfolded (``unfolded`` is forced), dynamic means a
    residual version is looked up or created and a residual call
    returned.
    """
    st.check_deadline()
    if not unfold.dyn:
        st.stats.unfolds += 1
        return unfolded()
    splits = [
        _split(a, hint)
        for a, hint in zip(args, _param_hints(st, fname, len(args)))
    ]
    key = (fname, tuple(bts), tuple(s.key for s in splits))
    info = st.done.get(key)
    if info is None:
        st.count_version(fname)
        st.stats.specialisations += 1
        fresh = [st.fresh_var(h) for s in splits for h in s.hints]
        it = iter(fresh)
        fresh_per_split = [[next(it) for _ in s.hints] for s in splits]
        info = _ResidInfo(
            name=st.fresh_fun_name(fname),
            placement=st.place(fname, args),
            params=tuple(fresh),
        )
        st.done[key] = info
        rebuilt = [
            s.rebuild([DCode(Var(v)) for v in names])
            for s, names in zip(splits, fresh_per_split)
        ]
        st.schedule(info, lambda: build(rebuilt))
    else:
        st.stats.memo_hits += 1
    dyn_args = tuple(c for s in splits for c in s.dyn)
    return DCode(Call(info.name, dyn_args))


# Hoisted fallback hints for functions with no FnInfo: one shared tuple,
# grown on demand, instead of a fresh 64-tuple per mk_resid call.  Sizing
# it to the actual argument count matters for correctness, not just
# speed: a fixed-size tuple would silently truncate the ``zip(args,
# hints)`` in mk_resid for functions with more parameters, dropping
# their argument splits.
_FALLBACK_HINTS = tuple("a%d" % i for i in range(64))


def _param_hints(st, fname, nargs):
    """Fresh-variable hints for the ``nargs`` parameters of ``fname``."""
    fn = st.fn_info.get(fname)
    if fn is not None and fn.params:
        return fn.params
    global _FALLBACK_HINTS
    if nargs > len(_FALLBACK_HINTS):
        _FALLBACK_HINTS = tuple("a%d" % i for i in range(nargs))
    return _FALLBACK_HINTS


def mk_if(st, bt, cond, then_thunk, else_thunk):
    """Generating version of the conditional."""
    if not bt.dyn:
        test = cond
        if not isinstance(test, SBase) or not isinstance(test.value, bool):
            raise SpecError("static conditional on non-boolean %r" % (test,))
        return then_thunk() if test.value else else_thunk()
    return DCode(
        If(code_of(cond), code_of(then_thunk()), code_of(else_thunk()))
    )


def mk_prim(st, op, bt, args):
    """Generating version of a primitive operation."""
    if bt.dyn:
        return DCode(Prim(op, tuple(code_of(a) for a in args)))
    return _static_prim(op, args)


def _static_prim(op, args):
    if op == "cons":
        head, tail = args
        if not isinstance(tail, SList):
            raise SpecError("static 'cons' onto non-static list")
        return SList((head,) + tail.items)
    if op == "head":
        (xs,) = args
        if not isinstance(xs, SList):
            raise SpecError("static 'head' of non-static list")
        if not xs.items:
            raise SpecError("head of empty list during specialisation")
        return xs.items[0]
    if op == "tail":
        (xs,) = args
        if not isinstance(xs, SList):
            raise SpecError("static 'tail' of non-static list")
        if not xs.items:
            raise SpecError("tail of empty list during specialisation")
        return SList(xs.items[1:])
    if op == "null":
        (xs,) = args
        if not isinstance(xs, SList):
            raise SpecError("static 'null' of non-static list")
        return SBase(xs.items == ())
    if op == "pair":
        return SPair(args[0], args[1])
    if op == "fst":
        (p,) = args
        if not isinstance(p, SPair):
            raise SpecError("static 'fst' of non-static pair")
        return p.fst
    if op == "snd":
        (p,) = args
        if not isinstance(p, SPair):
            raise SpecError("static 'snd' of non-static pair")
        return p.snd
    values = []
    for a in args:
        if not isinstance(a, SBase):
            raise SpecError("static %r applied to non-static operand" % op)
        values.append(a.value)
    try:
        return SBase(apply_prim(op, values))
    except PrimError as e:
        raise SpecError("primitive failed during specialisation: %s" % e)


def mk_app(st, bt, fun, arg):
    """Generating version of ``@``: unfold static closures, residualise
    dynamic applications."""
    if not bt.dyn:
        if not isinstance(fun, SClo):
            raise SpecError("static application of a non-closure")
        return fun.apply(st, arg)
    return DCode(App(code_of(fun), code_of(arg)))


def mk_lam(st, var, helper, bts, env, label, fvs):
    """Build a static closure for a lambda."""
    return SClo(var, helper, tuple(bts), tuple(env), label, tuple(fvs))
