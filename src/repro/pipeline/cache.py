"""An on-disk content-addressed artifact store.

Artifacts (binding-time interfaces, generating-extension sources,
compiled code objects) are filed under the SHA-256 *build key* of the
module they belong to (:func:`repro.bt.interface.module_key`) plus a
short ``kind`` tag:

    <root>/objects/<key[:2]>/<key>.<kind>

Keys are immutable — the same key always denotes the same bytes — so a
hit needs no validation beyond reading the file, a cache can be shared
between checkouts, and eviction is safe at any time (a miss merely
recomputes).  All writes go through a temp file in the final directory
followed by ``os.replace``, so parallel workers racing to publish the
same artifact can never expose a torn file; the losing writer simply
overwrites with identical bytes.
"""

import os
import tempfile


class ArtifactCache:
    """Content-addressed artifact storage rooted at ``root``."""

    def __init__(self, root):
        self.root = root

    def path(self, key, kind):
        """Where an artifact lives (the file may not exist)."""
        return os.path.join(self.root, "objects", key[:2], "%s.%s" % (key, kind))

    def has(self, key, kind):
        return os.path.exists(self.path(key, kind))

    def get_bytes(self, key, kind):
        """The artifact's bytes, or ``None`` on a miss."""
        try:
            with open(self.path(key, kind), "rb") as f:
                return f.read()
        except OSError:
            return None

    def get_text(self, key, kind):
        data = self.get_bytes(key, kind)
        return None if data is None else data.decode("utf-8")

    def put_bytes(self, key, kind, data):
        """Atomically publish an artifact; returns its path."""
        path = self.path(key, kind)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp.", suffix="~")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def put_text(self, key, kind, text):
        return self.put_bytes(key, kind, text.encode("utf-8"))
