"""An on-disk content-addressed artifact store.

Artifacts (binding-time interfaces, generating-extension sources,
compiled code objects) are filed under the SHA-256 *build key* of the
module they belong to (:func:`repro.bt.interface.module_key`) plus a
short ``kind`` tag:

    <root>/objects/<key[:2]>/<key>.<kind>

Keys are immutable — the same key always denotes the same bytes — so a
hit needs no validation beyond reading the file, a cache can be shared
between checkouts, and eviction is safe at any time (a miss merely
recomputes).  All writes go through a temp file in the final directory
followed by ``os.replace``, so parallel workers racing to publish the
same artifact can never expose a torn file; the losing writer simply
overwrites with identical bytes.

Integrity is checked lazily on read (a corrupt entry is a miss) and
eagerly by ``mspec fsck`` (:func:`repro.pipeline.faults.fsck_cache`),
which moves damaged objects into ``<root>/quarantine``.
"""

import json
import os
import sys
import tempfile

# Compiled code objects are interpreter-specific; the kind tag carries
# the cache tag so interpreters never read each other's bytecode.
CODE_KIND = "code-%s.bin" % (sys.implementation.cache_tag or "unknown")
IFACE_KIND = "bti.json"
GENEXT_KIND = "genext.py"
# Cached residual programs (repro.speccache payloads).  They share the
# object store with the build artifacts: keys come from a different
# hash domain, so the namespaces can never collide, and fsck validates
# the payloads like any other kind.
RESID_KIND = "resid.json"
# The residual program emitted as a real Python module
# (repro.backend.tiers): the durable tier-2 format, stored next to the
# resid.json payload under the same residual cache key.  The matching
# marshalled code object lives under CODE_KIND (cache-tag keyed, so a
# different interpreter recompiles from this source instead).
RESID_PY_KIND = "resid.py"
# Per-definition build records (repro.pipeline.incremental): one JSON
# document per module build holding each SCC's schemes, dependency
# reads and cogen fragments, keyed like the module's other artifacts.
DEFS_KIND = "defs.json"

OBJECTS_DIRNAME = "objects"
QUARANTINE_DIRNAME = "quarantine"
REFS_FILENAME = "refs.json"

TMP_PREFIX = ".tmp."
TMP_SUFFIX = "~"


class ArtifactCache:
    """Content-addressed artifact storage rooted at ``root``.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`, set at
    construction or assigned later) makes the store count its own I/O:
    ``cache.reads`` / ``cache.read_bytes`` for successful gets,
    ``cache.writes`` / ``cache.write_bytes`` for puts.  With no
    registry attached the accounting is a single attribute test.
    """

    def __init__(self, root, metrics=None):
        self.root = root
        self.metrics = metrics

    def _count(self, name, nbytes):
        if self.metrics is not None:
            self.metrics.counter("cache." + name).inc()
            self.metrics.counter("cache.%s_bytes" % name[:-1]).inc(nbytes)

    def path(self, key, kind):
        """Where an artifact lives (the file may not exist)."""
        return os.path.join(
            self.root, OBJECTS_DIRNAME, key[:2], "%s.%s" % (key, kind)
        )

    def has(self, key, kind):
        return os.path.exists(self.path(key, kind))

    def get_bytes(self, key, kind):
        """The artifact's bytes, or ``None`` on a miss."""
        try:
            with open(self.path(key, kind), "rb") as f:
                data = f.read()
        except OSError:
            return None
        self._count("reads", len(data))
        return data

    def get_text(self, key, kind):
        """The artifact decoded as UTF-8; ``None`` on a miss *or* on
        undecodable bytes (a corrupt entry is a miss — the caller
        recomputes and overwrites it)."""
        data = self.get_bytes(key, kind)
        if data is None:
            return None
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError:
            return None

    def put_bytes(self, key, kind, data):
        """Atomically publish an artifact; returns its path."""
        path = self.path(key, kind)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=TMP_PREFIX, suffix=TMP_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        finally:
            # Remove the temp file iff it is still there — i.e. the
            # write or rename failed for *any* reason, including
            # KeyboardInterrupt/SystemExit, which propagate untouched.
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._count("writes", len(data))
        return path

    def put_text(self, key, kind, text):
        return self.put_bytes(key, kind, text.encode("utf-8"))

    # -- refs: the one mutable file in the store -------------------------

    def refs_path(self):
        return os.path.join(self.root, REFS_FILENAME)

    def read_refs(self):
        """The ``module name -> last successful build key`` map.

        Refs are the store's only mutable state (git-refs-style): they
        let a rebuild find the *previous* build's immutable artifacts
        after an edit changed every key.  A missing or corrupt refs
        file is an empty map — incremental rebuilds then simply fall
        back to full analysis."""
        try:
            with open(self.refs_path()) as f:
                refs = json.load(f)
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(refs, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in refs.items()
        ):
            return {}
        return refs

    def write_refs(self, refs):
        """Atomically replace the refs map."""
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=TMP_PREFIX, suffix=TMP_SUFFIX
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(refs, f, indent=1, sort_keys=True)
                f.write("\n")
            os.replace(tmp, self.refs_path())
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def objects(self):
        """Yield ``(dirpath, filename)`` for every file under
        ``objects/`` (fsck's walk; droppings and misfiled names
        included)."""
        objects_root = os.path.join(self.root, OBJECTS_DIRNAME)
        for dirpath, _, filenames in os.walk(objects_root):
            for filename in sorted(filenames):
                yield dirpath, filename
