"""The parallel, incremental analyse→cogen build engine.

The paper's separate-analysis property (Sec. 4.1) says each module can
be analysed and compiled to a generating extension given only the
binding-time *interfaces* of its imports.  The build engine exploits
that twice:

* **Wave scheduling** — the import DAG is partitioned into antichains
  (:meth:`~repro.modsys.graph.ModuleGraph.waves`); every module of a
  wave depends only on interfaces produced by earlier waves, so a
  wave's BTA+cogen jobs run concurrently in a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=1`` falls
  back to a plain serial loop).  Workers receive *only* a module's
  source text and its imports' interface texts — the paper's interface
  discipline is also the process-communication protocol.

* **Content-addressed caching** — each module's artifacts (interface,
  genext source, compiled code object) are keyed by
  :func:`repro.bt.interface.module_key` (SHA-256 of the source plus the
  imports' interface digests) and stored in an
  :class:`~repro.pipeline.cache.ArtifactCache`.  A warm no-op rebuild
  performs zero re-analyses; an edit re-does exactly its dirty cone,
  with early cutoff wherever an interface comes out byte-identical.

Determinism: a module's artifacts are a pure function of its source and
its imports' interfaces, so ``jobs=1`` and ``jobs=N`` produce
byte-identical interface files and genext sources.
"""

import marshal
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bt.analysis import analyse_module
from repro.bt.interface import (
    INTERFACE_SUFFIX,
    KEY_SUFFIX,
    InterfaceError,
    atomic_write_text,
    digest_text,
    interface_from_text,
    interface_text,
    module_key,
)
from repro.genext.cogen import GenextModule, cogen_module
from repro.genext.link import GenextProgram, load_genext
from repro.lang.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.validate import resolve_module
from repro.modsys.graph import ModuleGraph
from repro.modsys.program import SOURCE_SUFFIX
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.stats import PipelineStats

DEFAULT_CACHE_DIRNAME = ".mspec-cache"

# Compiled code objects are interpreter-specific; the kind tag carries
# the cache tag so interpreters never read each other's bytecode.
CODE_KIND = "code-%s.bin" % (sys.implementation.cache_tag or "unknown")
IFACE_KIND = "bti.json"
GENEXT_KIND = "genext.py"


@dataclass(frozen=True)
class SourceModule:
    """One scanned source file."""

    name: str
    path: str
    text: str
    imports: Tuple[str, ...]


def _analyse_cogen_worker(payload):
    """Analyse and cogen one module; pure function of its inputs.

    ``payload`` is ``(name, source_text, ((dep, dep_interface_text), ...),
    force_residual_tuple)`` — text in, text out, so the job crosses
    process boundaries carrying nothing but what the paper says a
    separate analysis may see.  Returns ``(name, interface_text,
    genext_source)``.
    """
    name, text, deps, force_residual = payload
    module = parse_program(text).modules[0]
    visible = {}
    for dep_name, dep_text in deps:
        iface_name, schemes = interface_from_text(
            dep_text, origin="<interface of %s>" % dep_name
        )
        if iface_name != dep_name:
            raise InterfaceError(
                "interface for %s names module %s" % (dep_name, iface_name)
            )
        visible.update(schemes)
    arities = {fname: len(s.args) for fname, s in visible.items()}
    resolved = resolve_module(module, arities)
    analysis = analyse_module(resolved, visible, frozenset(force_residual))
    genext = cogen_module(analysis)
    return name, interface_text(name, analysis.schemes), genext.source


@dataclass
class BuildResult:
    """Everything one build produced."""

    genexts: Tuple[GenextModule, ...]  # in concatenated-wave (topo) order
    keys: Dict[str, str]  # module name -> content-addressed build key
    waves: Tuple[Tuple[str, ...], ...]
    analysed: List[str]
    cached: List[str]
    stats: PipelineStats
    cache: ArtifactCache = field(repr=False, default=None)

    def link(self):
        """Compile, execute, and link the generating extensions.

        Code objects are taken from (and published to) the build cache,
        so a warm link recompiles nothing."""
        loaded = []
        with self.stats.stage("link"):
            for m in self.genexts:
                code = None
                data = self.cache.get_bytes(self.keys[m.name], CODE_KIND)
                if data is not None:
                    try:
                        code = marshal.loads(data)
                    except (EOFError, ValueError, TypeError):
                        code = None  # corrupt or foreign: recompile
                if code is None:
                    code = compile(m.source, "%s.genext.py" % m.name, "exec")
                    self.cache.put_bytes(
                        self.keys[m.name], CODE_KIND, marshal.dumps(code)
                    )
                loaded.append(load_genext(m, code=code))
        return GenextProgram(loaded)


class BuildEngine:
    """Wave-parallel, cache-aware driver for analyse→cogen.

    ``src_dir`` holds ``*.mod`` sources (one module per file, file name
    matching the module name).  Artifacts land in ``cache_dir``
    (defaults to ``<src_dir>/.mspec-cache``); when ``iface_dir`` /
    ``out_dir`` are given, ``*.bti`` (+ ``.bti.key`` sidecars) and
    ``*.genext.py`` are additionally published there for the classic
    on-disk vendor workflow.
    """

    def __init__(
        self,
        src_dir,
        cache_dir=None,
        jobs=1,
        force_residual=frozenset(),
        iface_dir=None,
        out_dir=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.src_dir = src_dir
        self.cache = ArtifactCache(
            cache_dir or os.path.join(src_dir, DEFAULT_CACHE_DIRNAME)
        )
        self.jobs = jobs
        self.force_residual = frozenset(force_residual)
        self.iface_dir = iface_dir
        self.out_dir = out_dir

    # -- scanning -----------------------------------------------------------

    def scan(self):
        """Parse every source file; returns ``{name: SourceModule}``.

        Performs the same structural checks as
        :func:`~repro.modsys.program.load_program_dir` (one module per
        file, name matches file name, no functors) but resolves nothing:
        resolution happens per module, against interfaces, inside the
        build jobs."""
        sources = {}
        for entry in sorted(os.listdir(self.src_dir)):
            if not entry.endswith(SOURCE_SUFFIX):
                continue
            path = os.path.join(self.src_dir, entry)
            with open(path) as f:
                text = f.read()
            parsed = parse_program(text)
            if len(parsed.modules) != 1:
                raise ValidationError(
                    "%s: expected exactly one module per file" % entry
                )
            module = parsed.modules[0]
            expected = entry[: -len(SOURCE_SUFFIX)]
            if module.name != expected:
                raise ValidationError(
                    "%s: file defines module %s (file name must match)"
                    % (entry, module.name)
                )
            if module.is_functor:
                raise ValidationError(
                    "%s: parameterised module %s cannot be built directly "
                    "(instantiate it with repro.functor first)"
                    % (entry, module.name)
                )
            sources[module.name] = SourceModule(
                name=module.name,
                path=path,
                text=text,
                imports=tuple(module.imports),
            )
        return sources

    # -- building -----------------------------------------------------------

    def _publish(self, name, key, iface, genext_source):
        """Mirror one module's artifacts into iface_dir/out_dir (skipping
        byte-identical files so no-op rebuilds do not churn mtimes)."""

        def publish_text(path, text):
            try:
                with open(path) as f:
                    if f.read() == text:
                        return
            except OSError:
                pass
            atomic_write_text(path, text)

        if self.iface_dir is not None:
            os.makedirs(self.iface_dir, exist_ok=True)
            publish_text(
                os.path.join(self.iface_dir, name + INTERFACE_SUFFIX), iface
            )
            publish_text(
                os.path.join(self.iface_dir, name + KEY_SUFFIX), key + "\n"
            )
        if self.out_dir is not None:
            os.makedirs(self.out_dir, exist_ok=True)
            publish_text(
                os.path.join(self.out_dir, "%s.genext.py" % name), genext_source
            )

    def build(self, stats=None):
        """Run the pipeline; returns a :class:`BuildResult`."""
        stats = stats if stats is not None else PipelineStats()
        stats.jobs = self.jobs
        with stats.stage("scan"):
            sources = self.scan()
        stats.modules = len(sources)
        with stats.stage("schedule"):
            graph = ModuleGraph(
                {s.name: s.imports for s in sources.values()}
            )
            waves = graph.waves()
        stats.wave_widths = tuple(len(w) for w in waves)

        ifaces = {}  # name -> canonical interface text, this build
        genexts = {}
        keys = {}
        order = []
        pool = None
        try:
            for wave in waves:
                misses = []
                with stats.stage("cache"):
                    for name in wave:
                        src = sources[name]
                        key = module_key(
                            src.text.encode("utf-8"),
                            [
                                (dep, digest_text(ifaces[dep]))
                                for dep in src.imports
                            ],
                            self.force_residual,
                        )
                        keys[name] = key
                        order.append(name)
                        iface = self.cache.get_text(key, IFACE_KIND)
                        genext_source = self.cache.get_text(key, GENEXT_KIND)
                        hit = False
                        if iface is not None and genext_source is not None:
                            try:
                                iface_name, _ = interface_from_text(
                                    iface, origin=self.cache.path(key, IFACE_KIND)
                                )
                                hit = iface_name == name
                            except InterfaceError:
                                hit = False  # corrupt entry: rebuild it
                        if hit:
                            ifaces[name] = iface
                            genexts[name] = GenextModule(
                                name, src.imports, genext_source
                            )
                            stats.cached.append(name)
                        else:
                            misses.append(name)
                if not misses:
                    continue
                payloads = [
                    (
                        name,
                        sources[name].text,
                        tuple(
                            (dep, ifaces[dep])
                            for dep in sources[name].imports
                        ),
                        tuple(sorted(self.force_residual)),
                    )
                    for name in misses
                ]
                with stats.stage("analyse"):
                    if self.jobs > 1 and len(payloads) > 1:
                        if pool is None:
                            pool = ProcessPoolExecutor(max_workers=self.jobs)
                        results = list(pool.map(_analyse_cogen_worker, payloads))
                    else:
                        results = [_analyse_cogen_worker(p) for p in payloads]
                with stats.stage("publish"):
                    for name, iface, genext_source in results:
                        self.cache.put_text(keys[name], IFACE_KIND, iface)
                        self.cache.put_text(keys[name], GENEXT_KIND, genext_source)
                        ifaces[name] = iface
                        genexts[name] = GenextModule(
                            name, sources[name].imports, genext_source
                        )
                        stats.analysed.append(name)
        finally:
            if pool is not None:
                pool.shutdown()

        with stats.stage("publish"):
            for name in order:
                self._publish(name, keys[name], ifaces[name], genexts[name].source)

        return BuildResult(
            genexts=tuple(genexts[name] for name in order),
            keys=keys,
            waves=waves,
            analysed=list(stats.analysed),
            cached=list(stats.cached),
            stats=stats,
            cache=self.cache,
        )


def build_dir(src_dir, cache_dir=None, jobs=1, force_residual=frozenset(),
              iface_dir=None, out_dir=None, stats=None):
    """One-call convenience: build a directory of ``*.mod`` sources."""
    engine = BuildEngine(
        src_dir,
        cache_dir=cache_dir,
        jobs=jobs,
        force_residual=force_residual,
        iface_dir=iface_dir,
        out_dir=out_dir,
    )
    return engine.build(stats=stats)
