"""The parallel, incremental analyse→cogen build engine.

The paper's separate-analysis property (Sec. 4.1) says each module can
be analysed and compiled to a generating extension given only the
binding-time *interfaces* of its imports.  The build engine exploits
that twice:

* **Wave scheduling** — the import DAG is partitioned into antichains
  (:meth:`~repro.modsys.graph.ModuleGraph.waves`); every module of a
  wave depends only on interfaces produced by earlier waves, so a
  wave's BTA+cogen jobs run concurrently in a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=1`` falls
  back to a plain serial loop).  Workers receive *only* a module's
  source text and its imports' interface texts — the paper's interface
  discipline is also the process-communication protocol.

* **Content-addressed caching** — each module's artifacts (interface,
  genext source, compiled code object) are keyed by
  :func:`repro.bt.interface.module_key` (SHA-256 of the source plus the
  imports' interface digests) and stored in an
  :class:`~repro.pipeline.cache.ArtifactCache`.  A warm no-op rebuild
  performs zero re-analyses; an edit re-does exactly its dirty cone,
  with early cutoff wherever an interface comes out byte-identical.

Determinism: a module's artifacts are a pure function of its source and
its imports' interfaces, so ``jobs=1`` and ``jobs=N`` produce
byte-identical interface files and genext sources.

Fault tolerance: jobs run under a
:class:`~repro.pipeline.faults.WaveSupervisor` governed by a
:class:`~repro.pipeline.faults.FaultPolicy` — per-module wall-clock
deadlines, bounded retries with capped backoff, automatic degradation
from the process pool to serial execution when a worker crashes, and a
*keep-going* mode that still builds the maximal cone of modules
unaffected by any failure, reporting every failure in one
:class:`~repro.pipeline.faults.BuildReport`.  A failed module publishes
nothing, so the cache is never poisoned: the next build re-analyses
exactly the failed cone.  See ``docs/robustness.md``.
"""

import marshal
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bt.analysis import analyse_module
from repro.bt.interface import (
    INTERFACE_SUFFIX,
    KEY_SUFFIX,
    InterfaceError,
    InterfaceStore,
    atomic_write_text,
    digest_text,
    interface_text,
    module_key,
    module_key_v2,
)
from repro.genext.cogen import (
    GenextModule,
    assemble_module,
    cogen_fragments,
)
from repro.genext.link import GenextProgram, load_genext
from repro.lang.errors import LangError, ValidationError
from repro.lang.parser import parse_program
from repro.lang.validate import resolve_module
from repro.modsys.graph import ModuleGraph
from repro.modsys.program import SOURCE_SUFFIX
from repro.obs import Obs
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pipeline import faultinject
from repro.pipeline.cache import (  # re-exported; the canonical home
    ArtifactCache,
    CODE_KIND,
    DEFS_KIND,
    GENEXT_KIND,
    IFACE_KIND,
)
from repro.pipeline.faults import (
    KIND_ERROR,
    BuildError,
    BuildReport,
    FaultPolicy,
    ModuleFailure,
    WaveSupervisor,
)
from repro.pipeline.incremental import (
    defs_doc_for_analysis,
    defs_doc_text,
    parse_defs_doc,
    try_incremental,
    used_import_digests,
)
from repro.pipeline.report import ModuleRebuild, RebuildReport
from repro.pipeline.stats import PipelineStats

DEFAULT_CACHE_DIRNAME = ".mspec-cache"

# When True, an exception inside the incremental fast path propagates
# instead of silently degrading to whole-module analysis.  Production
# keeps the fallback (the build's *output* never depends on the fast
# path); the test suite flips this on (tests/conftest.py) so a fast-path
# bug fails loudly there instead of hiding as a perf regression —
# the same treatment EventBus handler errors got.
STRICT_INCREMENTAL = False


@dataclass(frozen=True)
class SourceModule:
    """One scanned source file (plus its parsed, unresolved module)."""

    name: str
    path: str
    text: str
    imports: Tuple[str, ...]
    module: object = field(default=None, compare=False, repr=False)


def _analyse_cogen_worker(payload):
    """Analyse and cogen one module; pure function of its inputs.

    ``payload`` is ``(name, source_text, ((dep, dep_interface_text), ...),
    force_residual_tuple[, trace])`` — text in, text out, so the job
    crosses process boundaries carrying nothing but what the paper says
    a separate analysis may see.  Returns ``(name, interface_text,
    genext_source, defs_record_text)`` — the defs record is the
    per-definition build state (``repro.defs/v1``) a later incremental
    rebuild mines — extended with the job's span events (plain dicts)
    when ``trace`` is set: the worker records its own ``job`` /
    ``analyse`` / ``cogen`` spans on a short-lived local tracer, and the
    parent merges them into the build trace — one timeline across
    processes.  Works identically in-process (``jobs=1``), so traces are
    span-for-span comparable between serial and parallel builds.
    """
    name, text, deps, force_residual = payload[:4]
    trace = payload[4] if len(payload) > 4 else False
    tracer = Tracer() if trace else NULL_TRACER
    store = InterfaceStore()
    with tracer.span("job:%s" % name, cat="job", module=name):
        faultinject.fire("analyse", name)
        with tracer.span("analyse:%s" % name, cat="analyse", module=name):
            module = parse_program(text).modules[0]
            visible = {}
            visible_digests = {}
            for dep_name, dep_text in deps:
                dep_iface = store.load_text(
                    dep_text, origin="<interface of %s>" % dep_name
                )
                if dep_iface.module != dep_name:
                    raise InterfaceError(
                        "interface for %s names module %s"
                        % (dep_name, dep_iface.module)
                    )
                visible.update(dep_iface.schemes)
                visible_digests.update(dep_iface.digests)
            arities = {fname: len(s.args) for fname, s in visible.items()}
            resolved = resolve_module(module, arities)
            analysis = analyse_module(resolved, visible, frozenset(force_residual))
        faultinject.fire("cogen", name)
        with tracer.span("cogen:%s" % name, cat="cogen", module=name):
            fragments = cogen_fragments(analysis)
            genext = assemble_module(name, resolved.imports, fragments)
            defs_doc = defs_doc_for_analysis(
                resolved,
                analysis,
                fragments,
                visible_digests,
                frozenset(force_residual),
            )
    iface = interface_text(name, analysis.schemes)
    defs_text = defs_doc_text(defs_doc)
    if trace:
        return name, iface, genext.source, defs_text, tracer.events
    return name, iface, genext.source, defs_text


@contextmanager
def _stage(stats, tracer, name):
    """One pipeline stage: a ``stage.<name>`` timer in the metrics
    registry and a ``stage:<name>`` span in the trace."""
    with tracer.span("stage:%s" % name, cat="stage"):
        with stats.stage(name):
            yield


@dataclass
class BuildResult:
    """Everything one build produced.

    Under ``keep_going`` the result may be *partial*: ``genexts`` holds
    only the modules outside every failed cone (an import-closed set,
    so :meth:`link` still works) and :attr:`report` records the rest.
    """

    genexts: Tuple[GenextModule, ...]  # in concatenated-wave (topo) order
    keys: Dict[str, str]  # module name -> content-addressed build key
    waves: Tuple[Tuple[str, ...], ...]
    analysed: List[str]
    cached: List[str]
    stats: PipelineStats
    cache: Optional[ArtifactCache] = field(repr=False, default=None)
    report: BuildReport = field(default_factory=BuildReport)
    obs: Optional[Obs] = field(repr=False, default=None)
    incremental: List[str] = field(default_factory=list)
    rebuild: RebuildReport = field(default_factory=RebuildReport)

    def link(self):
        """Compile, execute, and link the generating extensions.

        Code objects are taken from (and published to) the build cache,
        so a warm link recompiles nothing; without a cache every module
        is compiled afresh."""
        loaded = []
        tracer = self.obs.tracer if self.obs is not None else NULL_TRACER
        with _stage(self.stats, tracer, "link"):
            for m in self.genexts:
                code = None
                if self.cache is not None:
                    data = self.cache.get_bytes(self.keys[m.name], CODE_KIND)
                    if data is not None:
                        try:
                            code = marshal.loads(data)
                        except (EOFError, ValueError, TypeError):
                            code = None  # corrupt or foreign: recompile
                if code is None:
                    code = compile(m.source, "%s.genext.py" % m.name, "exec")
                    if self.cache is not None:
                        self.cache.put_bytes(
                            self.keys[m.name], CODE_KIND, marshal.dumps(code)
                        )
                loaded.append(load_genext(m, code=code))
        return GenextProgram(loaded)


class BuildEngine:
    """Wave-parallel, cache-aware driver for analyse→cogen.

    ``src_dir`` holds ``*.mod`` sources (one module per file, file name
    matching the module name).  Artifacts land in ``cache_dir``
    (defaults to ``<src_dir>/.mspec-cache``); when ``iface_dir`` /
    ``out_dir`` are given, ``*.bti`` (+ ``.bti.key`` sidecars) and
    ``*.genext.py`` are additionally published there for the classic
    on-disk vendor workflow.  ``policy`` governs supervision (deadlines,
    retries, keep-going); the default policy fails fast with no
    deadline, matching the classic behaviour.
    """

    def __init__(self, src_dir, options=None, obs=None, **legacy):
        from repro.api import build_options

        options = build_options("BuildEngine", options, legacy)
        self.src_dir = src_dir
        self.options = options
        self.cache = ArtifactCache(
            options.cache_dir or os.path.join(src_dir, DEFAULT_CACHE_DIRNAME)
        )
        self.jobs = options.jobs
        self.force_residual = options.force_residual
        self.iface_dir = options.iface_dir
        self.out_dir = options.out_dir
        self.policy = options.fault_policy()
        self.obs = obs if obs is not None else Obs()
        # First-failure-per-module memory for incremental.error events:
        # a module that keeps failing across rebuilds logs once, not
        # once per build.
        self._incremental_errors_seen = set()

    # -- scanning -----------------------------------------------------------

    def scan(self):
        """Parse every source file; returns ``({name: SourceModule},
        {name: ModuleFailure})``.

        Performs the same structural checks as
        :func:`~repro.modsys.program.load_program_dir` (one module per
        file, name matches file name, no functors) but resolves nothing:
        resolution happens per module, against interfaces, inside the
        build jobs.  A file that fails to parse (or fails the structural
        checks) does not abort the scan: it becomes a
        :class:`~repro.pipeline.faults.ModuleFailure` under the name the
        file name implies, so the build treats it exactly like a module
        that failed in a worker — its cone is skipped, everything else
        still builds under ``keep_going``."""
        sources = {}
        failures = {}
        for entry in sorted(os.listdir(self.src_dir)):
            if not entry.endswith(SOURCE_SUFFIX):
                continue
            path = os.path.join(self.src_dir, entry)
            with open(path) as f:
                text = f.read()
            expected = entry[: -len(SOURCE_SUFFIX)]
            try:
                parsed = parse_program(text)
                if len(parsed.modules) != 1:
                    raise ValidationError(
                        "%s: expected exactly one module per file" % entry
                    )
                module = parsed.modules[0]
                if module.name != expected:
                    raise ValidationError(
                        "%s: file defines module %s (file name must match)"
                        % (entry, module.name)
                    )
                if module.is_functor:
                    raise ValidationError(
                        "%s: parameterised module %s cannot be built directly "
                        "(instantiate it with repro.functor first)"
                        % (entry, module.name)
                    )
            except LangError as exc:
                failures[expected] = ModuleFailure.from_exception(
                    expected, KIND_ERROR, exc, attempts=1
                )
                continue
            sources[module.name] = SourceModule(
                name=module.name,
                path=path,
                text=text,
                imports=tuple(module.imports),
                module=module,
            )
        return sources, failures

    # -- building -----------------------------------------------------------

    def _publish(self, name, key, iface, genext_source):
        """Mirror one module's artifacts into iface_dir/out_dir (skipping
        byte-identical files so no-op rebuilds do not churn mtimes)."""

        def publish_text(path, text):
            try:
                with open(path) as f:
                    if f.read() == text:
                        return
            except OSError:
                pass
            atomic_write_text(path, text)

        if self.iface_dir is not None:
            os.makedirs(self.iface_dir, exist_ok=True)
            publish_text(
                os.path.join(self.iface_dir, name + INTERFACE_SUFFIX), iface
            )
            publish_text(
                os.path.join(self.iface_dir, name + KEY_SUFFIX), key + "\n"
            )
        if self.out_dir is not None:
            os.makedirs(self.out_dir, exist_ok=True)
            publish_text(
                os.path.join(self.out_dir, "%s.genext.py" % name), genext_source
            )

    def _failed_root(self, graph, name, failures):
        """The root-cause module for ``name``: the failed module(s) in
        its import cone (deterministically the alphabetically first)."""
        roots = sorted(
            failures[f].root_cause
            for f in graph.reachable_from(name)
            if f in failures
        )
        return roots[0] if roots else None

    def build(self, stats=None):
        """Run the pipeline; returns a :class:`BuildResult`.

        With the default fail-fast policy a module failure raises
        :class:`~repro.pipeline.faults.BuildError` (carrying the
        :class:`~repro.pipeline.faults.BuildReport`) once the failing
        wave has been drained.  With ``policy.keep_going`` all failures
        are collected and a partial :class:`BuildResult` is returned;
        inspect ``result.report``."""
        if stats is None:
            stats = PipelineStats(metrics=self.obs.metrics, bus=self.obs.bus)
        obs = self.obs.with_metrics(stats.metrics)
        tracer = obs.tracer
        self.cache.metrics = stats.metrics
        stats.jobs = self.jobs
        with tracer.span(
            "build", cat="build", src_dir=self.src_dir, jobs=self.jobs
        ):
            return self._build(stats, obs, tracer)

    def _build(self, stats, obs, tracer):
        with _stage(stats, tracer, "scan"):
            sources, failures = self.scan()  # name -> ModuleFailure
        stats.modules = len(sources) + len(failures)
        for name in sorted(failures):
            stats.note_failed(name)
        with _stage(stats, tracer, "schedule"):
            # Unparseable modules enter the graph as import-less nodes:
            # their name is known (from the file name), so importers
            # still land in their cone and are skipped, not crashed.
            graph = ModuleGraph(
                {
                    **{s.name: s.imports for s in sources.values()},
                    **{name: () for name in failures},
                }
            )
            waves = graph.waves()
        stats.wave_widths = tuple(len(w) for w in waves)

        store = InterfaceStore()
        # The per-def rebuild path is bypassed while a fault plan is
        # armed: it runs analyse/cogen in the *parent*, where an
        # injected crash would kill the build instead of a worker.
        incremental_on = (
            self.options.incremental and faultinject.active_plan() is None
        )
        prev_refs = self.cache.read_refs()  # module -> last build's key
        changed = set()  # modules whose interface changed vs. last build
        rebuilds = {}  # name -> ModuleRebuild

        def prev_iface_digests(name):
            """Per-def digests of the module's previous build, if any."""
            prev_key = prev_refs.get(name)
            if prev_key is None:
                return None
            text = self.cache.get_text(prev_key, IFACE_KIND)
            if text is None:
                return None
            try:
                return store.load_text(text, origin="<previous>").digests
            except InterfaceError:
                return None

        def note_interface(name, iface):
            """Track whether the module's interface moved this build —
            a hit on a module with a changed dep is a module def-level
            keying specifically saved (module-level keys would miss)."""
            prev_key = prev_refs.get(name)
            if prev_key is not None and prev_key != keys[name]:
                prev_text = self.cache.get_text(prev_key, IFACE_KIND)
                if prev_text is not None and prev_text != iface.text:
                    changed.add(name)

        ifaces = {}  # name -> parsed Interface, this build
        genexts = {}
        keys = {}
        order = []
        skipped = {}  # name -> root-cause module
        if failures and not self.policy.keep_going:
            for name in graph.modules():
                if name in failures:
                    continue
                root = self._failed_root(graph, name, failures)
                if root is not None:
                    skipped[name] = root
                    stats.note_skipped(name)
            raise BuildError(self._report(failures, skipped, order, stats))
        supervisor = WaveSupervisor(
            _analyse_cogen_worker, self.jobs, self.policy, stats, obs=obs
        )
        def dep_maps(src):
            """Merged (schemes, per-def digests) of a module's imports."""
            schemes, digests = {}, {}
            for dep in src.imports:
                schemes.update(ifaces[dep].schemes)
                digests.update(ifaces[dep].digests)
            return schemes, digests

        try:
            for wave_index, wave in enumerate(waves):
                misses = []
                with tracer.span(
                    "wave[%d]" % wave_index, cat="build", width=len(wave)
                ):
                    with _stage(stats, tracer, "cache"):
                        for name in wave:
                            if name in failures:  # failed at scan: no source
                                continue
                            src = sources[name]
                            root = self._failed_root(graph, name, failures)
                            if root is not None:
                                skipped[name] = root
                                stats.note_skipped(name)
                                continue
                            if self.options.incremental:
                                # Def-level keying: the key reads only
                                # the digests of the imported defs the
                                # module references, so an upstream
                                # scheme change it never looks at
                                # cannot miss it.
                                _, digests = dep_maps(src)
                                key = module_key_v2(
                                    src.text.encode("utf-8"),
                                    src.imports,
                                    used_import_digests(src.module, digests),
                                    self.force_residual,
                                )
                            else:
                                key = module_key(
                                    src.text.encode("utf-8"),
                                    [
                                        (dep, digest_text(ifaces[dep].text))
                                        for dep in src.imports
                                    ],
                                    self.force_residual,
                                )
                            keys[name] = key
                            order.append(name)
                            iface_text_ = self.cache.get_text(key, IFACE_KIND)
                            genext_source = self.cache.get_text(key, GENEXT_KIND)
                            iface = None
                            if iface_text_ is not None and genext_source is not None:
                                try:
                                    parsed = store.load_text(
                                        iface_text_,
                                        origin=self.cache.path(key, IFACE_KIND),
                                    )
                                    if parsed.module == name:
                                        iface = parsed
                                except InterfaceError:
                                    iface = None  # corrupt entry: rebuild it
                            if iface is not None:
                                ifaces[name] = iface
                                genexts[name] = GenextModule(
                                    name, src.imports, genext_source
                                )
                                note_interface(name, iface)
                                stats.note_cache_hit(name)
                                obs.bus.emit("cache.hit", module=name, key=key)
                                rebuilds[name] = ModuleRebuild(
                                    module=name,
                                    action="cached",
                                    reused=tuple(src.module.def_names()),
                                )
                                if any(dep in changed for dep in src.imports):
                                    # A dep's interface moved but the
                                    # def-level key still hit: exactly
                                    # the re-analysis module-level
                                    # keying would have paid.
                                    stats.note_cutoff_skip(name)
                            else:
                                misses.append(name)
                                stats.note_cache_miss(name)
                                obs.bus.emit("cache.miss", module=name, key=key)
                    if misses and incremental_on:
                        with _stage(stats, tracer, "incremental"):
                            misses = self._incremental_pass(
                                misses, sources, ifaces, genexts, keys,
                                rebuilds, prev_refs, dep_maps,
                                note_interface, store, stats, obs,
                            )
                    if misses:
                        payloads = [
                            (
                                name,
                                sources[name].text,
                                tuple(
                                    (dep, ifaces[dep].text)
                                    for dep in sources[name].imports
                                ),
                                tuple(sorted(self.force_residual)),
                                tracer.enabled,
                            )
                            for name in misses
                        ]
                        with _stage(stats, tracer, "analyse"):
                            results, wave_failures = supervisor.run_wave(
                                payloads
                            )
                        for name, failure in wave_failures.items():
                            failures[name] = failure
                            stats.note_failed(name)
                            order.remove(name)
                            del keys[name]
                        with _stage(stats, tracer, "publish"):
                            for name in misses:
                                if name not in results:
                                    continue
                                res = results[name]
                                iface_text_, genext_source = res[1], res[2]
                                defs_text = res[3]
                                if len(res) > 4:
                                    tracer.add_events(res[4])
                                data = faultinject.corrupt(
                                    "publish", name, IFACE_KIND,
                                    iface_text_.encode("utf-8"),
                                )
                                self.cache.put_bytes(
                                    keys[name], IFACE_KIND, data
                                )
                                data = faultinject.corrupt(
                                    "publish", name, GENEXT_KIND,
                                    genext_source.encode("utf-8"),
                                )
                                self.cache.put_bytes(
                                    keys[name], GENEXT_KIND, data
                                )
                                self.cache.put_text(
                                    keys[name], DEFS_KIND, defs_text
                                )
                                # The worker's text is authoritative;
                                # the cache copy may have been corrupted
                                # by an injected fault above.
                                iface = store.load_text(
                                    iface_text_,
                                    origin="<analysis of %s>" % name,
                                )
                                ifaces[name] = iface
                                genexts[name] = GenextModule(
                                    name, sources[name].imports, genext_source
                                )
                                note_interface(name, iface)
                                stats.note_analysed(name)
                                prev_digests = prev_iface_digests(name)
                                re_derived = tuple(
                                    sources[name].module.def_names()
                                )
                                cut = tuple(
                                    n
                                    for n in re_derived
                                    if prev_digests is not None
                                    and prev_digests.get(n)
                                    == iface.digests.get(n)
                                )
                                stats.note_defs(
                                    re_derived=len(re_derived),
                                    cut_off=len(cut),
                                )
                                rebuilds[name] = ModuleRebuild(
                                    module=name,
                                    action="analysed",
                                    re_derived=re_derived,
                                    cut_off=cut,
                                )
                if failures and not self.policy.keep_going:
                    # Fail fast — but name the whole downstream cone, so
                    # the report reads the same as keep-going's.
                    for name in sources:
                        if name in genexts or name in failures or name in skipped:
                            continue
                        root = self._failed_root(graph, name, failures)
                        if root is not None:
                            skipped[name] = root
                            stats.note_skipped(name)
                    raise BuildError(
                        self._report(failures, skipped, order, stats)
                    )
        finally:
            supervisor.shutdown()

        with _stage(stats, tracer, "publish"):
            for name in order:
                # The .bti.key sidecar speaks the classic vendor
                # protocol: InterfaceManager recomputes a v1 module_key
                # from what is on disk, so that is what gets recorded —
                # regardless of which keying the cache itself used.
                sidecar_key = module_key(
                    sources[name].text.encode("utf-8"),
                    [
                        (dep, digest_text(ifaces[dep].text))
                        for dep in sources[name].imports
                    ],
                    self.force_residual,
                )
                self._publish(
                    name, sidecar_key, ifaces[name].text, genexts[name].source
                )
        if order:
            # Advance the refs so the *next* build can find this one's
            # per-def records even after an edit changes every key.
            refs = self.cache.read_refs()
            refs.update({name: keys[name] for name in order})
            self.cache.write_refs(refs)

        for name in sorted(failures):
            rebuilds[name] = ModuleRebuild(module=name, action="failed")
        for name in sorted(skipped):
            rebuilds[name] = ModuleRebuild(module=name, action="skipped")
        rebuild = RebuildReport(
            incremental=incremental_on,
            modules=tuple(
                rebuilds[name]
                for name in order + sorted(set(rebuilds) - set(order))
            ),
        )

        return BuildResult(
            genexts=tuple(genexts[name] for name in order),
            keys=keys,
            waves=waves,
            analysed=list(stats.analysed),
            cached=list(stats.cached),
            stats=stats,
            cache=self.cache,
            report=self._report(failures, skipped, order, stats),
            obs=obs,
            incremental=list(stats.incremental),
            rebuild=rebuild,
        )

    def _incremental_pass(self, misses, sources, ifaces, genexts, keys,
                          rebuilds, prev_refs, dep_maps, note_interface,
                          store, stats, obs):
        """Try the per-definition rebuild for each cache miss; returns
        the misses that still need the worker pool.

        Strictly a fast path: a module with no previous defs record, a
        structural change, or *any* exception during the attempt drops
        back to whole-module analysis — the build's output can never
        depend on this pass, only its cost can.  Exceptions are not
        silent, though: each one counts as ``incr.fallback_errors`` and
        the first per module is emitted as an ``incremental.error``
        event; under :data:`STRICT_INCREMENTAL` they propagate."""
        remaining = []
        for name in misses:
            src = sources[name]
            prev_key = prev_refs.get(name)
            prev_doc = None
            if prev_key is not None:
                prev_text = self.cache.get_text(prev_key, DEFS_KIND)
                if prev_text is not None:
                    prev_doc = parse_defs_doc(prev_text)
            if prev_doc is None:
                remaining.append(name)  # cold module: not a fallback
                continue
            schemes, digests = dep_maps(src)
            try:
                inc = try_incremental(
                    src.module, schemes, digests, prev_doc,
                    self.force_residual,
                )
            except Exception as exc:
                if STRICT_INCREMENTAL:
                    raise
                stats.note_incremental_error(name)
                if name not in self._incremental_errors_seen:
                    self._incremental_errors_seen.add(name)
                    obs.bus.emit(
                        "incremental.error",
                        module=name,
                        error="%s: %s" % (type(exc).__name__, exc),
                    )
                inc = None
            if inc is None:
                stats.note_incremental_fallback(name)
                remaining.append(name)
                continue
            key = keys[name]
            self.cache.put_text(key, IFACE_KIND, inc.iface_text)
            self.cache.put_text(key, GENEXT_KIND, inc.genext.source)
            self.cache.put_text(key, DEFS_KIND, defs_doc_text(inc.defs_doc))
            iface = store.load_text(
                inc.iface_text, origin="<incremental %s>" % name
            )
            ifaces[name] = iface
            genexts[name] = inc.genext
            note_interface(name, iface)
            stats.note_incremental(name)
            stats.note_defs(
                reused=len(inc.reused),
                re_derived=len(inc.re_derived),
                cut_off=len(inc.cut_off),
            )
            obs.bus.emit(
                "incremental.module",
                module=name,
                key=key,
                reused=len(inc.reused),
                re_derived=len(inc.re_derived),
                cut_off=len(inc.cut_off),
            )
            rebuilds[name] = ModuleRebuild(
                module=name,
                action="incremental",
                reused=tuple(inc.reused),
                re_derived=tuple(inc.re_derived),
                cut_off=tuple(inc.cut_off),
            )
        return remaining

    def _report(self, failures, skipped, order, stats):
        return BuildReport(
            failures=[failures[n] for n in sorted(failures)],
            skipped=dict(skipped),
            succeeded=list(order),
            retries=stats.retries,
            degraded=bool(stats.degradations),
        )


def build_dir(src_dir, options=None, *, stats=None, obs=None, **legacy):
    """One-call convenience: build a directory of ``*.mod`` sources.

    ``options`` is a :class:`repro.api.BuildOptions` (legacy keywords
    still work, with a :class:`repro.api.LegacyOptionsWarning`).  When
    ``options.trace_path`` / ``options.metrics_path`` are set the trace
    and metrics snapshot are written there even if the build raises.
    """
    from repro.api import build_options

    options = build_options("build_dir", options, legacy)
    if obs is None:
        obs = Obs.enabled() if options.trace_path else Obs()
    engine = BuildEngine(src_dir, options, obs=obs)
    try:
        return engine.build(stats=stats)
    finally:
        if options.trace_path:
            obs.tracer.export(options.trace_path)
        if options.metrics_path:
            registry = stats.metrics if stats is not None else obs.metrics
            registry.export(options.metrics_path)
