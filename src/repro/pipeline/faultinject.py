"""Deterministic fault injection for the build pipeline.

Every recovery path in :mod:`repro.pipeline.faults` — deadline kills,
retries, pool degradation, keep-going cone skipping, ``fsck``
quarantine — must be exercised by ordinary pytest, which means faults
have to be *injected on purpose, deterministically, across process
boundaries* (the victims run inside pool workers).  The mechanism:

* A :class:`FaultPlan` is a list of :class:`Fault` entries, each naming
  a victim module, a hook ``phase`` (``analyse``, ``cogen``,
  ``publish``), an ``action`` and an attempt budget ``times``.  Plans
  serialise to JSON; :meth:`FaultPlan.install` writes the file and
  returns the environment variable setting (``MSPEC_FAULTS=<path>``)
  that arms it — workers inherit the environment, so the same plan is
  visible on both sides of the process boundary.

* Each fault carries a budget of ``times`` firings, accounted in a
  shared ``state_dir`` by exclusively creating one sentinel file per
  firing (``O_CREAT | O_EXCL`` is atomic on a local filesystem, so
  concurrent workers never double-spend a budget).  ``times=1`` is the
  canonical "fail once, succeed on retry" transient.

* Actions:

  - ``raise``   — raise :class:`FaultInjected` (a mid-cogen error);
  - ``hang``    — sleep ``seconds`` (defaults far past any deadline);
  - ``crash``   — ``os._exit`` inside a pool worker (surfaces to the
    parent as ``BrokenProcessPool``); in-process execution downgrades
    to ``raise`` so a serial build is never killed outright;
  - ``corrupt`` — fired from the *parent* at publish time via
    :func:`corrupt`: the artifact bytes are replaced with garbage
    before they reach the cache (what a torn disk write would leave).

* Serve-phase actions (``phase="serve"``) exercise the serving path
  (:mod:`repro.serve`) the same way; the ``module`` field names the
  *goal* under attack (``"*"`` matches any goal — wildcards work for
  build faults too):

  - ``kill-worker``      — ``SIGKILL`` the pool worker mid-request
    (harsher than ``crash``: no exit handlers run), fired from the
    specialisation worker via :func:`fire`; outside a pool worker the
    fault is skipped *without spending budget* (a degraded serial
    rerun of the killed request must succeed, and the budget must stay
    armed for real workers);
  - ``drop-connection``  — the daemon closes the client connection
    after accepting the request, before answering;
  - ``stall``            — the daemon sleeps ``seconds`` before
    writing the response (a wedged handler: the client's wire deadline
    must fire);
  - ``corrupt-response`` — the daemon writes a garbage line instead of
    the real response (a torn write on the wire).

  Transport actions are claimed explicitly by the daemon's handler via
  :func:`claim_action`; :func:`fire` never spends them.

* :meth:`FaultPlan.seeded` derives victims from a seed with
  ``random.Random(seed)``, so randomised fault campaigns are exactly
  reproducible.

The hooks (:func:`fire`, :func:`corrupt`) are no-ops unless
``MSPEC_FAULTS`` is set, so production builds pay one dict lookup.
"""

import json
import multiprocessing
import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

PLAN_ENV = "MSPEC_FAULTS"

# Actions fire() may claim implicitly inside a job...
WORKER_ACTIONS = ("raise", "hang", "crash", "kill-worker")
# ...vs. actions only ever spent through an explicit claim_action()
# call at the daemon's transport layer (plus "corrupt", spent only
# through corrupt() at publish time).
TRANSPORT_ACTIONS = ("drop-connection", "stall", "corrupt-response")

ACTIONS = WORKER_ACTIONS + ("corrupt",) + TRANSPORT_ACTIONS

# Deterministic garbage: invalid JSON, invalid Python source (NUL
# bytes), invalid marshal data — corrupt for every artifact kind.
CORRUPT_BYTES = b"\x00\xfe\xedmspec-injected-corruption\x00"


class FaultInjected(Exception):
    """The error an injected ``raise`` (or in-process ``crash``) throws."""


@dataclass(frozen=True)
class Fault:
    """One planned fault against one module."""

    module: str
    action: str
    phase: str = "analyse"
    times: int = 1
    seconds: float = 3600.0  # hang duration (parent deadline kills it)
    message: str = "injected fault"
    kind: Optional[str] = None  # artifact kind to corrupt (None: any)

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError("unknown fault action %r" % (self.action,))

    def as_dict(self):
        return {
            "module": self.module,
            "action": self.action,
            "phase": self.phase,
            "times": self.times,
            "seconds": self.seconds,
            "message": self.message,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults plus its attempt ledger."""

    faults: Tuple[Fault, ...]
    state_dir: str = field(default="")

    @classmethod
    def seeded(cls, seed, modules, state_dir, actions=("raise",), times=1):
        """Pick one victim per action from ``modules`` with
        ``random.Random(seed)`` — the same seed always builds the same
        plan, so a failing fault campaign replays exactly."""
        rng = random.Random(seed)
        modules = sorted(modules)
        faults = tuple(
            Fault(module=rng.choice(modules), action=action, times=times)
            for action in actions
        )
        return cls(faults=faults, state_dir=state_dir)

    def as_dict(self):
        return {
            "state_dir": self.state_dir,
            "faults": [f.as_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            faults=tuple(
                Fault(**{k: v for k, v in f.items()}) for f in data["faults"]
            ),
            state_dir=data["state_dir"],
        )

    def install(self, path):
        """Write the plan to ``path`` and arm it for this process (and
        every child) by setting :data:`PLAN_ENV`.  Returns ``path``."""
        os.makedirs(self.state_dir, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.as_dict(), f, indent=2)
        os.environ[PLAN_ENV] = path
        _CACHE.clear()
        return path

    @staticmethod
    def uninstall():
        os.environ.pop(PLAN_ENV, None)
        _CACHE.clear()

    # -- firing --------------------------------------------------------------

    def claim(self, phase, module, action=None, kind=None, exclude=()):
        """The first matching fault with budget left, or ``None``.

        A fault whose ``module`` is ``"*"`` matches any victim.
        Claiming spends one unit of the fault's budget atomically in the
        shared ledger, so exactly ``times`` firings happen across all
        processes no matter how the work is scheduled.  Actions in
        ``exclude`` are skipped *without* spending budget (e.g.
        ``kill-worker`` outside a pool worker: the budget must stay
        available for contexts where the fault is meaningful)."""
        for idx, fault in enumerate(self.faults):
            if fault.module not in ("*", module) or fault.phase != phase:
                continue
            if fault.action in exclude:
                continue
            if action is not None and fault.action != action:
                continue
            if action is None and fault.action not in WORKER_ACTIONS:
                continue  # corrupt/transport actions need explicit claims
            if kind is not None and fault.kind not in (None, kind):
                continue
            if self._spend(idx, fault):
                return fault
        return None

    def _spend(self, idx, fault):
        os.makedirs(self.state_dir, exist_ok=True)
        for n in range(fault.times):
            sentinel = os.path.join(self.state_dir, "fault.%d.%d" % (idx, n))
            try:
                os.close(os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False


# Plans cached per path, keyed by (mtime_ns, size): a plan file
# rewritten in place at the same path must be picked up, so every
# access re-stats the file (one stat per hook firing — cheap next to
# the parse it avoids).
_CACHE = {}


def active_plan():
    """The armed plan, or ``None`` (the common case)."""
    path = os.environ.get(PLAN_ENV)
    if not path:
        return None
    try:
        st = os.stat(path)
    except OSError:
        return None
    stamp = (st.st_mtime_ns, st.st_size)
    cached = _CACHE.get(path)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    try:
        with open(path) as f:
            plan = FaultPlan.from_dict(json.load(f))
    except (OSError, ValueError, KeyError, TypeError):
        return None
    _CACHE[path] = (stamp, plan)
    return plan


def fire(phase, module):
    """Hook point inside a build job: perform any planned fault."""
    plan = active_plan()
    if plan is None:
        return
    # kill-worker only makes sense inside a pool worker; in the parent
    # (a degraded serial rerun of a killed request, say) it is skipped
    # without spending budget so the chaos lands where it belongs.
    in_worker = multiprocessing.parent_process() is not None
    fault = plan.claim(
        phase, module, exclude=() if in_worker else ("kill-worker",)
    )
    if fault is None:
        return
    if fault.action == "raise":
        raise FaultInjected(
            "%s (module %s, phase %s)" % (fault.message, module, phase)
        )
    if fault.action == "hang":
        time.sleep(fault.seconds)
        return
    if fault.action == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(66)  # a worker dying mid-job: BrokenProcessPool
        raise FaultInjected(
            "injected crash (in-process; module %s)" % module
        )
    if fault.action == "kill-worker":
        if multiprocessing.parent_process() is not None:
            # Mid-request SIGKILL: no exit handlers, no cleanup — the
            # parent sees BrokenProcessPool exactly as with a real OOM
            # kill or operator kill -9.
            os.kill(os.getpid(), signal.SIGKILL)
        raise FaultInjected(
            "injected worker kill (in-process; module %s)" % module
        )


def claim_action(phase, module, action):
    """Explicitly claim one specific planned action (the serve daemon's
    transport hooks); returns the :class:`Fault` or ``None``."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.claim(phase, module, action=action)


def corrupt(phase, module, kind, data):
    """Hook point at publish time: corrupted bytes if planned, else
    ``data`` unchanged."""
    plan = active_plan()
    if plan is None:
        return data
    fault = plan.claim(phase, module, action="corrupt", kind=kind)
    if fault is None:
        return data
    return CORRUPT_BYTES + data[:16]
