"""Reusable worker-pool lifecycle: fork once, reuse until told otherwise.

The committed benches showed process-pool startup eating the
parallelism it was meant to buy: every ``specialise_many`` call (and,
before PR 1's supervisor kept one executor per *build*, every wave)
forked a fresh pool, re-pickled state, and threw the workers away — for
jobs that take microseconds once warm.  :class:`WorkerPool` extracts
the lifecycle into one shareable object:

* **lazy spawn** — the underlying :class:`ProcessPoolExecutor` is
  created on first use, after the owner has pre-seeded whatever
  module-level state the workers should inherit (on ``fork`` platforms
  a worker gets the parent's memory image at spawn time, so a
  pre-linked :class:`~repro.genext.link.GenextProgram` rides along for
  free — no per-request pickling);
* **hard kill + transparent respawn** — :meth:`kill` terminates the
  worker processes (a hung worker never returns on its own) and drops
  the executor; the next :meth:`executor` call forks a fresh one.
  Killing is generation-checked, so a supervisor that decides to kill
  the executor it was using never tears down a replacement another
  thread already spawned;
* **sharing** — one pool instance can outlive any number of
  :class:`~repro.pipeline.faults.WaveSupervisor` runs.  The batch
  driver (:func:`repro.genext.batch.specialise_many`) and the
  specialisation daemon (:mod:`repro.serve`) both accept a borrowed
  pool: the supervisor uses it but never shuts it down — the owner
  does, once, at the end of its life.

Thread safety: all lifecycle transitions happen under one lock;
``ProcessPoolExecutor.submit`` itself is thread-safe, so concurrent
supervisors (the daemon's request handlers) can share one pool.
"""

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor

__all__ = ["WorkerPool"]


def _warm_task(seconds):
    """Top-level (picklable) task used to pre-fork pool workers: sleep
    long enough that distinct workers pick up distinct tasks, and report
    which process ran it."""
    time.sleep(seconds)
    return os.getpid()


class WorkerPool:
    """A persistent, killable, respawnable process pool of ``jobs``
    workers.

    ``spawns`` counts executors created over the pool's lifetime (1 in
    the steady state — the whole point); ``kills`` counts hard
    teardowns (hangs, worker crashes).
    """

    def __init__(self, jobs):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.jobs = jobs
        self._executor = None
        self._lock = threading.Lock()
        self.spawns = 0
        self.kills = 0

    def executor(self):
        """The live executor, forking a fresh one if needed."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
                self.spawns += 1
            return self._executor

    def submit(self, fn, *args):
        """Submit one task (convenience over :meth:`executor`)."""
        return self.executor().submit(fn, *args)

    def warm(self, timeout=10.0, sleep=0.05):
        """Pre-fork the workers by running ``jobs`` short sleeps; returns
        the set of worker pids observed.  Call this at daemon startup so
        the first real request never pays the fork."""
        futures = [self.submit(_warm_task, sleep) for _ in range(self.jobs)]
        pids = set()
        for future in futures:
            try:
                pids.add(future.result(timeout=timeout))
            except Exception:
                # A worker that cannot even warm up will resurface as a
                # crash on the first real job, where the supervisor's
                # degradation machinery handles it properly.
                break
        return pids

    def kill(self, executor=None):
        """Hard teardown: terminate the worker processes, drop the
        executor.  With ``executor`` given, only kill if it is still the
        current one (another thread may have killed and respawned
        already — its replacement must survive)."""
        with self._lock:
            current = self._executor
            if current is None:
                return
            if executor is not None and executor is not current:
                return
            self._executor = None
            self.kills += 1
        for process in list(getattr(current, "_processes", {}).values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                # Already-dead or never-started workers; anything else
                # (a programming error) must propagate.
                pass
        current.shutdown(wait=False, cancel_futures=True)

    def shutdown(self):
        """Graceful teardown: let running tasks finish, then release."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()

    @property
    def alive(self):
        """Whether an executor currently exists (workers may still be
        forking lazily inside it)."""
        return self._executor is not None
