"""Reusable worker-pool lifecycle: fork once, reuse until told otherwise.

The committed benches showed process-pool startup eating the
parallelism it was meant to buy: every ``specialise_many`` call (and,
before PR 1's supervisor kept one executor per *build*, every wave)
forked a fresh pool, re-pickled state, and threw the workers away — for
jobs that take microseconds once warm.  :class:`WorkerPool` extracts
the lifecycle into one shareable object:

* **lazy spawn** — the underlying :class:`ProcessPoolExecutor` is
  created on first use, after the owner has pre-seeded whatever
  module-level state the workers should inherit (on ``fork`` platforms
  a worker gets the parent's memory image at spawn time, so a
  pre-linked :class:`~repro.genext.link.GenextProgram` rides along for
  free — no per-request pickling);
* **hard kill + transparent respawn** — :meth:`kill` terminates the
  worker processes (a hung worker never returns on its own) and drops
  the executor; the next :meth:`executor` call forks a fresh one.
  Killing is generation-checked, so a supervisor that decides to kill
  the executor it was using never tears down a replacement another
  thread already spawned;
* **sharing** — one pool instance can outlive any number of
  :class:`~repro.pipeline.faults.WaveSupervisor` runs.  The batch
  driver (:func:`repro.genext.batch.specialise_many`) and the
  specialisation daemon (:mod:`repro.serve`) both accept a borrowed
  pool: the supervisor uses it but never shuts it down — the owner
  does, once, at the end of its life.
* **recycling** — a long-lived pool accumulates whatever its workers
  leak (memo tables, fragmentation, genuine leaks).  With
  ``max_requests_per_worker`` set, the executor is retired *gracefully*
  after ``jobs × max_requests_per_worker`` submitted tasks — running
  tasks finish on the old workers while a fresh generation forks lazily
  for new work; with ``max_worker_rss`` (bytes) set,
  :meth:`maybe_recycle` also retires the generation when any worker's
  resident set crosses the ceiling (read from ``/proc`` — on platforms
  without it the check is skipped).  ``recycles`` counts graceful
  retirements, distinct from ``kills``.

Thread safety: all lifecycle transitions happen under one lock;
``ProcessPoolExecutor.submit`` itself is thread-safe, so concurrent
supervisors (the daemon's request handlers) can share one pool.
"""

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor

__all__ = ["WorkerPool", "worker_rss_bytes"]


def worker_rss_bytes(pid):
    """The resident-set size of ``pid`` in bytes via ``/proc``, or
    ``None`` where unreadable (non-Linux, vanished process)."""
    try:
        with open("/proc/%d/statm" % pid, "rb") as f:
            fields = f.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        return None


def _warm_task(seconds):
    """Top-level (picklable) task used to pre-fork pool workers: sleep
    long enough that distinct workers pick up distinct tasks, and report
    which process ran it."""
    time.sleep(seconds)
    return os.getpid()


class WorkerPool:
    """A persistent, killable, respawnable process pool of ``jobs``
    workers.

    ``spawns`` counts executors created over the pool's lifetime (1 in
    the steady state — the whole point); ``kills`` counts hard
    teardowns (hangs, worker crashes).
    """

    def __init__(self, jobs, max_requests_per_worker=None, max_worker_rss=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        if max_requests_per_worker is not None and max_requests_per_worker < 1:
            raise ValueError(
                "max_requests_per_worker must be >= 1, got %d"
                % max_requests_per_worker
            )
        if max_worker_rss is not None and max_worker_rss < 1:
            raise ValueError(
                "max_worker_rss must be >= 1 byte, got %d" % max_worker_rss
            )
        self.jobs = jobs
        self.max_requests_per_worker = max_requests_per_worker
        self.max_worker_rss = max_worker_rss
        self._executor = None
        self._lock = threading.Lock()
        self._tasks_this_generation = 0
        self.spawns = 0
        self.kills = 0
        self.recycles = 0

    def executor(self):
        """The live executor, forking a fresh one if needed."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
                self.spawns += 1
                self._tasks_this_generation = 0
            return self._executor

    def submit(self, fn, *args):
        """Submit one task (convenience over :meth:`executor`)."""
        executor = self.executor()
        self.note_tasks(1)
        return executor.submit(fn, *args)

    def note_tasks(self, n=1):
        """Charge ``n`` tasks against the current generation's recycle
        budget.  Owners that hand the raw executor to someone else (the
        daemon hands it to a :class:`~repro.pipeline.faults.WaveSupervisor`)
        call this for work the pool cannot see."""
        with self._lock:
            self._tasks_this_generation += n

    def maybe_recycle(self):
        """Gracefully retire a generation past its budget.

        Returns the reason (``"requests"`` or ``"rss"``) when the
        executor was retired, else ``None``.  Retirement is *graceful*:
        running tasks finish on the old workers (shutdown waits on a
        background thread), while the next :meth:`executor` call forks
        a fresh generation — so recycling never fails a request, it
        only bounds how long one worker process lives.
        """
        reason = None
        with self._lock:
            executor = self._executor
            if executor is None:
                return None
            budget = self.max_requests_per_worker
            if budget is not None and (
                self._tasks_this_generation >= budget * self.jobs
            ):
                reason = "requests"
            elif self.max_worker_rss is not None:
                for process in list(
                    getattr(executor, "_processes", {}).values()
                ):
                    rss = worker_rss_bytes(process.pid)
                    if rss is not None and rss > self.max_worker_rss:
                        reason = "rss"
                        break
            if reason is None:
                return None
            self._executor = None
            self._tasks_this_generation = 0
            self.recycles += 1
        threading.Thread(
            target=executor.shutdown, kwargs={"wait": True}, daemon=True
        ).start()
        return reason

    def warm(self, timeout=10.0, sleep=0.05):
        """Pre-fork the workers by running ``jobs`` short sleeps; returns
        the set of worker pids observed.  Call this at daemon startup so
        the first real request never pays the fork.  Warm tasks are not
        charged against the recycle budget."""
        executor = self.executor()
        futures = [executor.submit(_warm_task, sleep) for _ in range(self.jobs)]
        pids = set()
        for future in futures:
            try:
                pids.add(future.result(timeout=timeout))
            except Exception:
                # A worker that cannot even warm up will resurface as a
                # crash on the first real job, where the supervisor's
                # degradation machinery handles it properly.
                break
        return pids

    def kill(self, executor=None):
        """Hard teardown: terminate the worker processes, drop the
        executor.  With ``executor`` given, only kill if it is still the
        current one (another thread may have killed and respawned
        already — its replacement must survive)."""
        with self._lock:
            current = self._executor
            if current is None:
                return
            if executor is not None and executor is not current:
                return
            self._executor = None
            self.kills += 1
        for process in list(getattr(current, "_processes", {}).values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                # Already-dead or never-started workers; anything else
                # (a programming error) must propagate.
                pass
        current.shutdown(wait=False, cancel_futures=True)

    def shutdown(self):
        """Graceful teardown: let running tasks finish, then release."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()

    @property
    def alive(self):
        """Whether an executor currently exists (workers may still be
        forking lazily inside it)."""
        return self._executor is not None
