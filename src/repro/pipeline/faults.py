"""Worker supervision and fault tolerance for the build engine.

The paper's separate-analysis discipline (Sec. 4.1) makes each module's
BTA+cogen job a pure function of its own source and its imports'
interfaces — so one broken module can never *semantically* poison a
module outside its downstream import cone.  This layer makes the build
engine honour that operationally:

* **Deadlines** — every job gets a wall-clock budget
  (:attr:`FaultPolicy.timeout`).  In pool mode a job past its deadline
  is declared dead and the (possibly hung) pool is torn down, its
  worker processes terminated; in serial mode a ``SIGALRM`` timer
  interrupts the job in place.

* **Bounded retries with capped exponential backoff** — transient
  failures (a flaky worker, a hang that a retry resolves) are retried
  up to :attr:`FaultPolicy.retries` times, sleeping
  ``min(cap, base * 2**round)`` between rounds (the sleep function is
  injectable so tests never wait).

* **Degradation** — a worker that dies mid-job breaks the whole
  ``ProcessPoolExecutor`` (``BrokenProcessPool``); victims of the
  breakage never ran, so they are re-executed *serially* — the build
  degrades to ``jobs=1`` for the rest of the run rather than failing
  modules that did nothing wrong.  The rerun does not count against
  the retry budget.

* **Keep-going** — with :attr:`FaultPolicy.keep_going`, a failed module
  removes only its downstream cone from the build; everything outside
  the cone (the maximal unaffected antichain sub-schedule) still
  builds, and all failures are collected into one :class:`BuildReport`
  of structured :class:`ModuleFailure` records instead of fail-fast.

* **fsck** — :func:`fsck_cache` scans the content-addressed store,
  validates every object against its kind (interfaces must parse,
  genext sources must compile, code objects must unmarshal), moves
  damaged objects into ``<root>/quarantine``, and deletes temp-file
  droppings a crashed writer left behind.

Every path above is exercised deterministically by the fault-injection
harness (:mod:`repro.pipeline.faultinject`).
"""

import marshal
import os
import signal
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bt.interface import InterfaceError, InterfaceStore
from repro.pipeline.pool import WorkerPool
from repro.pipeline.cache import (
    CODE_KIND,
    DEFS_KIND,
    GENEXT_KIND,
    IFACE_KIND,
    QUARANTINE_DIRNAME,
    RESID_KIND,
    RESID_PY_KIND,
    TMP_PREFIX,
    TMP_SUFFIX,
)

# Exit codes, one per failure class (the CLI contract; see
# docs/robustness.md).  Highest-severity class wins for mixed reports.
EXIT_OK = 0
EXIT_ERROR = 3  # a module's analysis/cogen raised
EXIT_TIMEOUT = 4  # a module exceeded its deadline (after retries)
EXIT_CRASH = 5  # a worker process died (after degradation + retries)
EXIT_CORRUPT = 6  # fsck quarantined corrupt cache objects

# Failure kinds carried by ModuleFailure.
KIND_ERROR = "error"
KIND_TIMEOUT = "timeout"
KIND_CRASH = "crash"

_EXIT_BY_KIND = {
    KIND_CRASH: EXIT_CRASH,
    KIND_TIMEOUT: EXIT_TIMEOUT,
    KIND_ERROR: EXIT_ERROR,
}


class DeadlineExceeded(Exception):
    """A supervised job ran past its wall-clock deadline."""


@dataclass(frozen=True)
class ModuleFailure:
    """One module's structured failure diagnostic."""

    module: str
    kind: str  # error | timeout | crash
    error_class: str  # e.g. 'BTError', 'DeadlineExceeded'
    message: str
    root_cause: str  # the module at the root of the failure cone
    attempts: int = 1
    span: Optional[Tuple[int, int]] = None  # (line, column) if known

    @classmethod
    def from_exception(cls, module, kind, exc, attempts):
        span = None
        line = getattr(exc, "line", None)
        column = getattr(exc, "column", None)
        if line is not None:
            span = (line, 0 if column is None else column)
        return cls(
            module=module,
            kind=kind,
            error_class=type(exc).__name__,
            message=str(exc) or type(exc).__name__,
            root_cause=module,
            attempts=attempts,
            span=span,
        )

    def as_dict(self):
        return {
            "module": self.module,
            "kind": self.kind,
            "error_class": self.error_class,
            "message": self.message,
            "root_cause": self.root_cause,
            "attempts": self.attempts,
            "span": list(self.span) if self.span else None,
        }

    def describe(self):
        where = self.module
        if self.span is not None:
            where = "%s:%d:%d" % (self.module, self.span[0], self.span[1])
        return "%s [%s/%s, %d attempt(s)]: %s" % (
            where,
            self.kind,
            self.error_class,
            self.attempts,
            self.message,
        )


@dataclass
class BuildReport:
    """Everything that went wrong (and what survived) in one build."""

    failures: List[ModuleFailure] = field(default_factory=list)
    skipped: Dict[str, str] = field(default_factory=dict)  # module -> root
    succeeded: List[str] = field(default_factory=list)
    retries: int = 0
    degraded: bool = False

    @property
    def ok(self):
        return not self.failures and not self.skipped

    @property
    def exit_code(self):
        if self.ok:
            return EXIT_OK
        # Highest severity wins: crash(5) > timeout(4) > error(3).
        return max(
            (_EXIT_BY_KIND[f.kind] for f in self.failures),
            default=EXIT_ERROR,
        )

    def as_dict(self):
        return {
            "failures": [f.as_dict() for f in self.failures],
            "skipped": dict(self.skipped),
            "succeeded": list(self.succeeded),
            "retries": self.retries,
            "degraded": self.degraded,
            "exit_code": self.exit_code,
        }

    def render(self):
        """A human-readable multi-line account."""
        if self.ok:
            return "build ok: %d module(s)" % len(self.succeeded)
        lines = [
            "build failed: %d failure(s), %d skipped, %d built"
            % (len(self.failures), len(self.skipped), len(self.succeeded))
        ]
        for f in self.failures:
            lines.append("  FAILED  " + f.describe())
        for module in sorted(self.skipped):
            lines.append(
                "  skipped %s (downstream of %s)"
                % (module, self.skipped[module])
            )
        if self.retries:
            lines.append("  %d retr%s spent" % (
                self.retries, "y" if self.retries == 1 else "ies"))
        if self.degraded:
            lines.append("  degraded to serial execution after a worker crash")
        return "\n".join(lines)


class BuildError(Exception):
    """A build with failures, in fail-fast mode.  Carries the report."""

    def __init__(self, report):
        self.report = report
        super().__init__(report.render())


@dataclass(frozen=True)
class FaultPolicy:
    """How the supervisor responds to misbehaving jobs."""

    timeout: Optional[float] = None  # per-module wall-clock deadline (s)
    retries: int = 0  # extra attempts after the first
    backoff_base: float = 0.05  # first retry sleeps this long
    backoff_cap: float = 2.0  # exponential backoff tops out here
    keep_going: bool = False  # collect failures instead of fail-fast
    sleep: Callable = field(default=time.sleep, repr=False)

    def backoff(self, round_index):
        """The capped exponential delay before retry round ``round_index``."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** round_index))


# ---------------------------------------------------------------------------
# Serial deadlines: a SIGALRM timer (main thread, POSIX).  In-process
# jobs cannot be preempted portably; where the timer is unavailable the
# job simply runs undeadlined (pool mode is the supervised path).
# ---------------------------------------------------------------------------


class _alarm_deadline:
    def __init__(self, seconds):
        self.seconds = seconds
        self.armed = False

    def __enter__(self):
        if (
            self.seconds is None
            or not hasattr(signal, "setitimer")
            or threading.current_thread() is not threading.main_thread()
        ):
            return self

        def _on_alarm(signum, frame):
            raise DeadlineExceeded(
                "job exceeded its %.3gs deadline" % self.seconds
            )

        self._old_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, self.seconds)
        self.armed = True
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._old_handler)
        return False


# ---------------------------------------------------------------------------
# The supervisor.
# ---------------------------------------------------------------------------

# Outcome tags inside one round.
_OK, _ERROR, _TIMEOUT, _CRASH = "ok", KIND_ERROR, KIND_TIMEOUT, KIND_CRASH


class WaveSupervisor:
    """Runs waves of payloads under a :class:`FaultPolicy`.

    ``worker`` is a picklable function of one payload; payloads are
    ``(name, ...)`` tuples whose first element names the module.  The
    supervisor drives at most one executor at a time (through a
    :class:`~repro.pipeline.pool.WorkerPool`), tears it down on hangs
    and breakage, and — once broken — stays degraded to serial
    execution for the rest of the build.

    ``pool`` may supply a *borrowed* :class:`WorkerPool`: the
    supervisor then reuses its already-forked workers and leaves the
    pool running at :meth:`shutdown` (the owner — a daemon, a bench, a
    batch driver serving many calls — shuts it down once, at the end of
    its life).  Hangs and breakage still :meth:`~WorkerPool.kill` the
    borrowed pool's executor — a hung worker must die whoever owns it —
    but the pool respawns transparently on next use.

    Fault accounting goes through the observability layer: counters
    (``faults.retries`` / ``faults.timeouts`` / ``faults.crashes`` /
    ``faults.degradations``) land in the metrics registry shared with
    the build's :class:`~repro.pipeline.stats.PipelineStats`, and each
    incident is published on the event bus (``retry`` / ``timeout`` /
    ``crash`` / ``degraded``) for subscribers such as profilers or
    benchmarks.  ``stats`` is accepted for direct callers and supplies
    the registry when no ``obs`` is given; counters are recorded exactly
    once regardless of how many of the two are passed, because both
    views read the same registry.
    """

    def __init__(self, worker, jobs, policy, stats=None, obs=None, pool=None):
        self.worker = worker
        self.jobs = pool.jobs if pool is not None else jobs
        self.policy = policy
        self.stats = stats
        if obs is not None:
            self.metrics = obs.metrics
            self.bus = obs.bus
        elif stats is not None:
            self.metrics = stats.metrics
            self.bus = stats.metrics.bus
        else:
            self.metrics = None
            self.bus = None
        self.degraded = False
        self._owns_pool = pool is None
        self._pool = pool

    def _count(self, counter):
        if self.metrics is not None:
            self.metrics.counter(counter).inc()

    def _event(self, kind, **payload):
        if self.bus is not None:
            self.bus.emit(kind, **payload)

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self):
        """The live executor (forked lazily; reused across retry waves
        and, with a borrowed pool, across supervisor lifetimes)."""
        if self._pool is None:
            self._pool = WorkerPool(self.jobs)
        return self._pool.executor()

    def _kill_pool(self, executor=None):
        """Tear the executor down hard: terminate workers (a hung worker
        never returns on its own), then release it.  A borrowed pool
        survives — killed generation-checked, respawned on next use."""
        if self._pool is not None:
            self._pool.kill(executor)

    def shutdown(self):
        """Release an owned pool; a borrowed pool is the owner's to
        shut down and is left running."""
        if self._owns_pool:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown()

    # -- one wave ------------------------------------------------------------

    def run_wave(self, payloads):
        """Run one wave; returns ``(results, failures)`` where
        ``results`` maps module name to the worker's return value and
        ``failures`` maps module name to :class:`ModuleFailure`."""
        pending = {p[0]: p for p in payloads}
        attempts = {name: 0 for name in pending}
        results, failures = {}, {}
        backoff_round = 0
        while pending:
            batch, pending = pending, {}
            outcomes = self._run_batch(batch)
            needs_backoff = False
            for name, (tag, value) in outcomes.items():
                if tag == _OK:
                    results[name] = value
                    continue
                if tag == _CRASH:
                    # A broken pool means the job may never have run at
                    # all; the degraded serial rerun is not a "retry".
                    pending[name] = batch[name]
                    continue
                attempts[name] += 1
                if tag == _TIMEOUT:
                    self._count("faults.timeouts")
                    self._event("fault.timeout", module=name, attempt=attempts[name])
                if attempts[name] <= self.policy.retries:
                    pending[name] = batch[name]
                    needs_backoff = True
                    self._count("faults.retries")
                    self._event("fault.retry", module=name, attempt=attempts[name])
                else:
                    failures[name] = ModuleFailure.from_exception(
                        name, tag, value, attempts[name]
                    )
            if pending and needs_backoff:
                self.policy.sleep(self.policy.backoff(backoff_round))
                backoff_round += 1
        return results, failures

    def _run_batch(self, batch):
        # A borrowed pool's workers are already forked: use them even
        # for a single job (so deadlines bind off the main thread and
        # the caller's thread stays free).  An owned pool is only worth
        # forking when there is real parallelism to be had.
        use_pool = not self.degraded and (
            not self._owns_pool or (self.jobs > 1 and len(batch) > 1)
        )
        if use_pool:
            return self._run_batch_pool(batch)
        return self._run_batch_serial(batch)

    def _run_batch_serial(self, batch):
        outcomes = {}
        for name, payload in batch.items():
            try:
                with _alarm_deadline(self.policy.timeout):
                    outcomes[name] = (_OK, self.worker(payload))
            except DeadlineExceeded as exc:
                outcomes[name] = (_TIMEOUT, exc)
            except Exception as exc:
                outcomes[name] = (_ERROR, exc)
        return outcomes

    def _run_batch_pool(self, batch):
        pool = self._ensure_pool()
        outcomes = {}
        broken = False
        hung = False
        futures = {}
        for name, payload in batch.items():
            try:
                futures[name] = pool.submit(self.worker, payload)
            except BrokenProcessPool as exc:
                # A worker died while the batch was still being fed.
                broken = True
                outcomes[name] = (_CRASH, exc)
        for name, future in futures.items():
            if broken:
                # The pool is gone; anything not already finished is a
                # breakage victim and will be re-run serially.
                if future.done() and future.exception() is None:
                    outcomes[name] = (_OK, future.result())
                else:
                    outcomes[name] = (
                        _CRASH,
                        BrokenProcessPool("worker pool broke"),
                    )
                continue
            try:
                outcomes[name] = (
                    _OK,
                    future.result(timeout=self.policy.timeout),
                )
            except FutureTimeoutError:
                hung = True
                outcomes[name] = (
                    _TIMEOUT,
                    DeadlineExceeded(
                        "job exceeded its %.3gs deadline"
                        % (self.policy.timeout,)
                    ),
                )
            except BrokenProcessPool as exc:
                broken = True
                outcomes[name] = (_CRASH, exc)
            except Exception as exc:
                outcomes[name] = (_ERROR, exc)
        if broken:
            self._kill_pool(pool)
            if not self.degraded:
                # One breakage = one crash + one degradation, however
                # many victims it had and however they are re-run; the
                # serial re-execution below never re-enters this path.
                self.degraded = True
                self._count("faults.crashes")
                self._count("faults.degradations")
                self._event("fault.crash", modules=sorted(batch))
                self._event("fault.degraded", jobs=self.jobs)
        elif hung:
            # The pool still holds a wedged worker: scrap it; a fresh
            # one is built lazily if another parallel batch arrives.
            self._kill_pool(pool)
        return outcomes


# ---------------------------------------------------------------------------
# fsck: scan + quarantine for the content-addressed store.
# ---------------------------------------------------------------------------


@dataclass
class FsckReport:
    """What an :func:`fsck_cache` pass found.

    ``quarantined`` is damage (torn, unparseable, wrong-named);
    ``stale`` is a *distinct* finding kind — artifacts that are intact
    but that no loader on this interpreter would use (a tier-2 code
    object with another build's cache tag, an emitted ``resid.py``
    missing its header).  Both move to the quarantine directory (a
    stale object is dead weight either way and regenerates on demand),
    but tooling can tell rot from drift."""

    scanned: int = 0
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    stale: List[Tuple[str, str]] = field(default_factory=list)
    removed_tmp: List[str] = field(default_factory=list)
    foreign: List[str] = field(default_factory=list)  # other interpreters

    @property
    def ok(self):
        return not self.quarantined and not self.stale

    @property
    def exit_code(self):
        return EXIT_OK if self.ok else EXIT_CORRUPT

    def as_dict(self):
        return {
            "scanned": self.scanned,
            "quarantined": [list(q) for q in self.quarantined],
            "stale": [list(q) for q in self.stale],
            "removed_tmp": list(self.removed_tmp),
            "foreign": list(self.foreign),
            "exit_code": self.exit_code,
        }

    def render(self):
        lines = [
            "fsck: %d object(s) scanned, %d quarantined, %d stale, "
            "%d temp file(s) removed"
            % (
                self.scanned,
                len(self.quarantined),
                len(self.stale),
                len(self.removed_tmp),
            )
        ]
        for name, reason in self.quarantined:
            lines.append("  quarantined %s: %s" % (name, reason))
        for name, reason in self.stale:
            lines.append("  stale %s: %s" % (name, reason))
        for name in self.foreign:
            lines.append("  skipped %s: foreign interpreter tag" % name)
        return "\n".join(lines)


def _validate_object(kind, data):
    """``None`` if ``data`` is a well-formed artifact of ``kind``, else
    a ``(category, reason)`` pair — ``"corrupt"`` for damage,
    ``"stale"`` for intact-but-unusable (see :class:`FsckReport`)."""
    if not data:
        return ("corrupt", "empty object")
    if kind == IFACE_KIND:
        store = InterfaceStore()
        try:
            iface = store.load_text(data.decode("utf-8"), origin="<fsck>")
        except (InterfaceError, UnicodeDecodeError) as exc:
            return ("corrupt", "corrupt interface: %s" % exc)
        findings = store.verify(iface)
        if findings:
            # A parseable interface whose stored per-def digest table
            # disagrees with its schemes: stale, not garbage — the
            # distinct reason lets tooling tell the two apart.
            rule, def_name, msg = findings[0]
            return ("stale", "iface.%s: %s" % (rule, msg))
        return None
    if kind == DEFS_KIND:
        from repro.pipeline.incremental import parse_defs_doc

        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            return ("corrupt", "corrupt defs record: %s" % exc)
        if parse_defs_doc(text) is None:
            return (
                "corrupt",
                "corrupt defs record: not a %s document" % "repro.defs/v1",
            )
        return None
    if kind == GENEXT_KIND:
        try:
            compile(data.decode("utf-8"), "<fsck>", "exec")
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            return ("corrupt", "corrupt genext source: %s" % exc)
        return None
    if kind == CODE_KIND:
        # Tier-2 code artifacts (repro.backend.tiers): unmarshallable
        # is corruption; a record this interpreter would silently skip
        # (wrong schema, wrong cache tag) is stale.
        from repro.backend.tiers import validate_code_bytes

        problem = validate_code_bytes(data)
        if problem is not None:
            category, reason = problem
            label = (
                "corrupt code object"
                if category == "corrupt"
                else "stale code artifact"
            )
            return (category, "%s: %s" % (label, reason))
        return None
    if kind == RESID_PY_KIND:
        from repro.backend.tiers import validate_source_bytes

        problem = validate_source_bytes(data)
        if problem is not None:
            category, reason = problem
            return (category, "emitted residual source: %s" % reason)
        return None
    if kind == RESID_KIND:
        from repro.speccache import validate_payload_bytes

        reason = validate_payload_bytes(data)
        if reason is not None:
            return ("corrupt", "corrupt residual payload: %s" % reason)
        return None
    return ("corrupt", "unknown artifact kind %r" % kind)


def fsck_cache(cache):
    """Scan ``cache``, quarantining every damaged object.

    Checks, per object file ``objects/<aa>/<key>.<kind>``:

    * leftover atomic-write temp files are deleted outright;
    * the file name must be ``<64-hex-key>.<kind>`` and live in the
      ``<key[:2]>`` fan-out directory;
    * the payload must be well-formed for its kind (interfaces parse,
      genext and emitted residual sources compile, code objects
      unmarshal, nothing empty).

    Intact artifacts no loader on this interpreter would use — a
    tier-2 code record with a foreign cache tag, an emitted
    ``resid.py`` without its header — are quarantined too but reported
    under the distinct ``stale`` finding kind (they regenerate on
    demand; see :class:`FsckReport`).  Code objects of *other*
    interpreters cannot be validated here and are reported as foreign,
    untouched.  Damaged objects move to
    ``<root>/quarantine/<filename>`` (same-filesystem rename), so
    nothing is destroyed — a false positive can be inspected and put
    back by hand.  Returns an :class:`FsckReport`.
    """
    report = FsckReport()
    quarantine_dir = os.path.join(cache.root, QUARANTINE_DIRNAME)

    def quarantine(path, filename, reason, category="corrupt"):
        os.makedirs(quarantine_dir, exist_ok=True)
        os.replace(path, os.path.join(quarantine_dir, filename))
        findings = (
            report.stale if category == "stale" else report.quarantined
        )
        findings.append((filename, reason))

    for dirpath, filename in cache.objects():
        path = os.path.join(dirpath, filename)
        if filename.startswith(TMP_PREFIX) and filename.endswith(TMP_SUFFIX):
            try:
                os.unlink(path)
            except OSError:
                continue
            report.removed_tmp.append(filename)
            continue
        report.scanned += 1
        key, dot, kind = filename.partition(".")
        if (
            not dot
            or len(key) != 64
            or any(c not in "0123456789abcdef" for c in key)
        ):
            quarantine(path, filename, "unrecognised object name")
            continue
        if os.path.basename(dirpath) != key[:2]:
            quarantine(path, filename, "misfiled (wrong fan-out directory)")
            continue
        if kind != CODE_KIND and kind.startswith("code-") and kind.endswith(".bin"):
            report.foreign.append(filename)
            continue
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as exc:
            quarantine(path, filename, "unreadable: %s" % exc)
            continue
        problem = _validate_object(kind, data)
        if problem is not None:
            category, reason = problem
            quarantine(path, filename, reason, category)
    return report
