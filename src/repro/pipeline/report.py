"""The structured rebuild report (``repro.api.RebuildReport``).

Defined here — below :mod:`repro.api` in the import graph — so the build
engine can construct reports without a circular import; the public home
is ``repro.api``, which re-exports both classes.
"""

from dataclasses import dataclass
from typing import Tuple

__all__ = ["ModuleRebuild", "RebuildReport"]


@dataclass(frozen=True)
class ModuleRebuild:
    """What one build did for one module.

    ``action`` is one of ``"cached"`` (module key hit — nothing ran),
    ``"incremental"`` (rebuilt per-definition in the parent),
    ``"analysed"`` (full analyse+cogen in a worker), ``"failed"`` or
    ``"skipped"`` (inside a failed cone).  The def tuples partition the
    module's definitions for the first three actions: ``reused`` came
    verbatim from the previous build, ``re_derived`` were re-analysed,
    and ``cut_off`` ⊆ ``re_derived`` landed on an unchanged scheme
    digest — the definitions at which invalidation stopped."""

    module: str
    action: str
    reused: Tuple[str, ...] = ()
    re_derived: Tuple[str, ...] = ()
    cut_off: Tuple[str, ...] = ()

    def as_dict(self):
        return {
            "module": self.module,
            "action": self.action,
            "reused": list(self.reused),
            "re_derived": list(self.re_derived),
            "cut_off": list(self.cut_off),
        }


@dataclass
class RebuildReport:
    """Per-module rebuild accounting, returned on every
    :class:`~repro.pipeline.build.BuildResult` and surfaced by
    ``mspec build --stats`` / ``--json``."""

    incremental: bool = True
    modules: Tuple[ModuleRebuild, ...] = ()

    def __iter__(self):
        return iter(self.modules)

    def by_action(self, action):
        return [m for m in self.modules if m.action == action]

    @property
    def defs_reused(self):
        return sum(len(m.reused) for m in self.modules)

    @property
    def defs_re_derived(self):
        return sum(len(m.re_derived) for m in self.modules)

    @property
    def defs_cut_off(self):
        return sum(len(m.cut_off) for m in self.modules)

    def as_dict(self):
        return {
            "incremental": self.incremental,
            "modules": [m.as_dict() for m in self.modules],
            "totals": {
                "cached": len(self.by_action("cached")),
                "incremental": len(self.by_action("incremental")),
                "analysed": len(self.by_action("analysed")),
                "failed": len(self.by_action("failed")),
                "skipped": len(self.by_action("skipped")),
                "defs_reused": self.defs_reused,
                "defs_re_derived": self.defs_re_derived,
                "defs_cut_off": self.defs_cut_off,
            },
        }

    def render(self):
        """A short human-readable summary (``mspec build --stats``)."""
        totals = self.as_dict()["totals"]
        lines = [
            "rebuild: %(cached)d cached, %(incremental)d incremental, "
            "%(analysed)d analysed (defs: %(defs_reused)d reused / "
            "%(defs_re_derived)d re-derived / %(defs_cut_off)d cut off)"
            % totals
        ]
        for m in self.by_action("incremental"):
            lines.append(
                "  %s: %d reused, re-derived %s%s"
                % (
                    m.module,
                    len(m.reused),
                    ", ".join(m.re_derived) or "-",
                    " (cut off: %s)" % ", ".join(m.cut_off)
                    if m.cut_off
                    else "",
                )
            )
        return "\n".join(lines)
