"""The parallel, incremental, fault-tolerant build pipeline.

Wave-scheduled separate analysis and cogen
(:class:`~repro.pipeline.build.BuildEngine`), backed by a
content-addressed artifact cache
(:class:`~repro.pipeline.cache.ArtifactCache`), instrumented by
:class:`~repro.pipeline.stats.PipelineStats`, and supervised by
:class:`~repro.pipeline.faults.WaveSupervisor` under a
:class:`~repro.pipeline.faults.FaultPolicy` (deadlines, retries,
degradation, keep-going, ``fsck``).  Deterministic fault injection for
tests lives in :mod:`repro.pipeline.faultinject`.  See
``docs/pipeline.md`` and ``docs/robustness.md``.
"""

from repro.pipeline.build import BuildEngine, BuildResult, build_dir
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.faultinject import Fault, FaultInjected, FaultPlan
from repro.pipeline.faults import (
    BuildError,
    BuildReport,
    FaultPolicy,
    FsckReport,
    ModuleFailure,
    WaveSupervisor,
    fsck_cache,
)
from repro.pipeline.pool import WorkerPool
from repro.pipeline.stats import PipelineStats

__all__ = [
    "ArtifactCache",
    "BuildEngine",
    "BuildError",
    "BuildReport",
    "BuildResult",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultPolicy",
    "FsckReport",
    "ModuleFailure",
    "PipelineStats",
    "WaveSupervisor",
    "WorkerPool",
    "build_dir",
    "fsck_cache",
]
