"""The parallel, incremental build pipeline.

Wave-scheduled separate analysis and cogen
(:class:`~repro.pipeline.build.BuildEngine`), backed by a
content-addressed artifact cache
(:class:`~repro.pipeline.cache.ArtifactCache`) and instrumented by
:class:`~repro.pipeline.stats.PipelineStats`.  See
``docs/pipeline.md`` ("Parallel & incremental builds").
"""

from repro.pipeline.build import BuildEngine, BuildResult, build_dir
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.stats import PipelineStats

__all__ = [
    "ArtifactCache",
    "BuildEngine",
    "BuildResult",
    "PipelineStats",
    "build_dir",
]
