"""Per-stage instrumentation for the build pipeline.

A :class:`PipelineStats` rides through one :class:`~repro.pipeline.build.
BuildEngine` run and records what a scaling experiment needs: how many
modules were re-analysed vs served from cache, the wave widths the
scheduler found (the available parallelism), and wall time per stage.
``mspec build --stats`` prints :meth:`PipelineStats.report`;
benchmarks serialise :meth:`PipelineStats.as_dict`.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# Stage names in pipeline order, for stable reporting.
STAGES = ("scan", "schedule", "cache", "analyse", "publish", "link")


@dataclass
class PipelineStats:
    """Counters and timers for one build."""

    jobs: int = 1
    modules: int = 0
    wave_widths: Tuple[int, ...] = ()
    analysed: List[str] = field(default_factory=list)  # cache misses
    cached: List[str] = field(default_factory=list)  # cache hits
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    # Fault-tolerance counters (see repro.pipeline.faults).
    failed: List[str] = field(default_factory=list)  # exhausted retries
    skipped: List[str] = field(default_factory=list)  # in a failed cone
    retries: int = 0  # re-attempts after error/timeout
    timeouts: int = 0  # deadline kills
    crashes: int = 0  # broken worker pools
    degradations: int = 0  # pool -> serial downgrades

    @contextmanager
    def stage(self, name):
        """Accumulate wall time under ``name`` (re-entrant per build:
        repeated stages — one analyse burst per wave — sum up)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed

    @property
    def total_seconds(self):
        return sum(self.stage_seconds.values())

    def as_dict(self):
        """A JSON-ready snapshot (machine-readable benchmark record)."""
        return {
            "jobs": self.jobs,
            "modules": self.modules,
            "wave_widths": list(self.wave_widths),
            "analysed": list(self.analysed),
            "cached": list(self.cached),
            "n_analysed": len(self.analysed),
            "n_cached": len(self.cached),
            "failed": list(self.failed),
            "skipped": list(self.skipped),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "degradations": self.degradations,
            "stage_seconds": dict(self.stage_seconds),
            "total_seconds": self.total_seconds,
        }

    def report(self):
        """A human-readable multi-line summary."""
        lines = []
        lines.append(
            "pipeline: %d module(s) in %d wave(s) (widths %s), jobs=%d"
            % (
                self.modules,
                len(self.wave_widths),
                "/".join(str(w) for w in self.wave_widths) or "-",
                self.jobs,
            )
        )
        lines.append(
            "artifacts: %d analysed+cogen'd, %d from cache"
            % (len(self.analysed), len(self.cached))
        )
        if self.failed or self.skipped:
            lines.append(
                "failures: %d failed, %d skipped (downstream cones)"
                % (len(self.failed), len(self.skipped))
            )
        if self.retries or self.timeouts or self.crashes:
            lines.append(
                "faults: %d retr%s, %d timeout(s), %d crash(es)%s"
                % (
                    self.retries,
                    "y" if self.retries == 1 else "ies",
                    self.timeouts,
                    self.crashes,
                    ", degraded to serial" if self.degradations else "",
                )
            )
        known = [s for s in STAGES if s in self.stage_seconds]
        extra = [s for s in self.stage_seconds if s not in STAGES]
        for name in known + sorted(extra):
            lines.append(
                "%-10s %8.2f ms" % (name, self.stage_seconds[name] * 1e3)
            )
        lines.append("%-10s %8.2f ms" % ("total", self.total_seconds * 1e3))
        return "\n".join(lines)
