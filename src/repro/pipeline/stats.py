"""Per-stage instrumentation for the build pipeline.

A :class:`PipelineStats` rides through one :class:`~repro.pipeline.build.
BuildEngine` run and records what a scaling experiment needs: how many
modules were re-analysed vs served from cache, the wave widths the
scheduler found (the available parallelism), and wall time per stage.
``mspec build --stats`` prints :meth:`PipelineStats.report`;
benchmarks serialise :meth:`PipelineStats.as_dict`.

Since the observability layer (``repro.obs``) landed, ``PipelineStats``
is a *view*: every counter and timer lives in a
:class:`~repro.obs.metrics.MetricsRegistry` (``stats.metrics``), shared
with the fault supervisor, the cache accounting, and — through
``mspec build --metrics`` — the exported snapshot.  The scalar
attributes (``retries``, ``timeouts``, ``crashes``, ``degradations``,
``jobs``, ``modules``) are properties over registry metrics, so the
legacy reading *and writing* spellings (``stats.retries += 1``) keep
working and can never disagree with the snapshot.

Metric names (see ``docs/observability.md`` for the full glossary):

========================  ======  =======================================
``cache.hits``            counter modules served from the artifact cache
``cache.misses``          counter modules scheduled for analyse+cogen
``modules.analysed``      counter modules analysed+cogen'd this build
``modules.failed``        counter modules whose job exhausted retries
``modules.skipped``       counter modules inside a failed cone
``incr.defs_reused``      counter defs reused verbatim from the last build
``incr.defs_re_derived``  counter defs whose scheme was re-derived
``incr.defs_cut_off``     counter re-derived defs with unchanged digests
``incr.modules_incremental`` counter modules rebuilt per-definition
``incr.modules_skipped``  counter dep-changed modules saved by cutoff
``incr.fallbacks``        counter incremental attempts degraded to full
``incr.fallback_errors``  counter fallbacks caused by a raised exception
``faults.retries``        counter re-attempts after error/timeout
``faults.timeouts``       counter deadline kills
``faults.crashes``        counter broken worker pools
``faults.degradations``   counter pool → serial downgrades
``build.jobs``            gauge   requested pool width
``build.modules``         gauge   modules discovered by the scan
``build.waves``           gauge   number of scheduling waves
``stage.<name>``          timer   wall seconds per pipeline stage
========================  ======  =======================================
"""

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

# Stage names in pipeline order, for stable reporting.
STAGES = ("scan", "schedule", "cache", "incremental", "analyse", "publish", "link")

_STAGE_PREFIX = "stage."


def _counter_property(metric, doc):
    def _get(self):
        return self.metrics.counter(metric).value

    def _set(self, value):
        self.metrics.counter(metric).set(value)

    return property(_get, _set, doc=doc)


def _gauge_property(metric, doc):
    def _get(self):
        return self.metrics.gauge(metric).value

    def _set(self, value):
        self.metrics.gauge(metric).set(value)

    return property(_get, _set, doc=doc)


class PipelineStats:
    """Counters and timers for one build, backed by a metrics registry.

    ``metrics`` (or a ``bus`` for a fresh registry) may be supplied to
    share the store with an :class:`~repro.obs.Obs`; by default each
    stats object owns a private registry.
    """

    def __init__(self, metrics=None, bus=None):
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(bus=bus)
        )
        self.jobs = 1
        self.wave_widths = ()
        self.analysed = []  # cache misses, in publish order
        self.cached = []  # cache hits
        self.incremental = []  # rebuilt per-definition in the parent
        self.failed = []  # exhausted retries
        self.skipped = []  # in a failed cone

    # -- registry-backed scalars --------------------------------------------

    jobs = _gauge_property("build.jobs", "requested pool width")
    modules = _gauge_property("build.modules", "modules found by the scan")
    retries = _counter_property(
        "faults.retries", "re-attempts after error/timeout"
    )
    timeouts = _counter_property("faults.timeouts", "deadline kills")
    crashes = _counter_property("faults.crashes", "broken worker pools")
    degradations = _counter_property(
        "faults.degradations", "pool -> serial downgrades"
    )

    @property
    def wave_widths(self):
        return self._wave_widths

    @wave_widths.setter
    def wave_widths(self, widths):
        self._wave_widths = tuple(widths)
        self.metrics.gauge("build.waves").set(len(self._wave_widths))

    # -- recording ----------------------------------------------------------

    @contextmanager
    def stage(self, name):
        """Accumulate wall time under ``name`` (re-entrant per build:
        repeated stages — one analyse burst per wave — sum up)."""
        with self.metrics.timer(_STAGE_PREFIX + name).time():
            yield

    def note_cache_hit(self, name):
        self.cached.append(name)
        self.metrics.counter("cache.hits").inc()

    def note_cache_miss(self, name):
        self.metrics.counter("cache.misses").inc()

    def note_analysed(self, name):
        self.analysed.append(name)
        self.metrics.counter("modules.analysed").inc()

    def note_incremental(self, name):
        """One module rebuilt per-definition in the parent (no worker)."""
        self.incremental.append(name)
        self.metrics.counter("incr.modules_incremental").inc()

    def note_defs(self, reused=0, re_derived=0, cut_off=0):
        """Per-definition accounting for one module's rebuild."""
        if reused:
            self.metrics.counter("incr.defs_reused").inc(reused)
        if re_derived:
            self.metrics.counter("incr.defs_re_derived").inc(re_derived)
        if cut_off:
            self.metrics.counter("incr.defs_cut_off").inc(cut_off)

    def note_cutoff_skip(self, name):
        """A cache hit on a module whose deps' interfaces changed this
        build — i.e. a module that def-level keying specifically saved
        from re-analysis (module-level keys would have missed)."""
        self.metrics.counter("incr.modules_skipped").inc()

    def note_incremental_fallback(self, name):
        """An incremental attempt that degraded to full module analysis."""
        self.metrics.counter("incr.fallbacks").inc()

    def note_incremental_error(self, name):
        """An incremental attempt that degraded because it *raised* —
        a fast-path bug being papered over, as opposed to a structural
        change legitimately outside the fast path's scope."""
        self.metrics.counter("incr.fallback_errors").inc()

    def note_failed(self, name):
        self.failed.append(name)
        self.metrics.counter("modules.failed").inc()

    def note_skipped(self, name):
        self.skipped.append(name)
        self.metrics.counter("modules.skipped").inc()

    # -- derived views -------------------------------------------------------

    @property
    def stage_seconds(self):
        """``{stage: seconds}`` — a live view over the registry timers."""
        return {
            name[len(_STAGE_PREFIX):]: t.seconds
            for name, t in self.metrics.timers.items()
            if name.startswith(_STAGE_PREFIX)
        }

    @property
    def total_seconds(self):
        return sum(self.stage_seconds.values())

    def as_dict(self):
        """A JSON-ready snapshot (machine-readable benchmark record)."""
        counter = lambda name: self.metrics.counter(name).value
        return {
            "jobs": self.jobs,
            "modules": self.modules,
            "wave_widths": list(self.wave_widths),
            "analysed": list(self.analysed),
            "cached": list(self.cached),
            "incremental": list(self.incremental),
            "n_analysed": len(self.analysed),
            "n_cached": len(self.cached),
            "n_incremental": len(self.incremental),
            "defs_reused": counter("incr.defs_reused"),
            "defs_re_derived": counter("incr.defs_re_derived"),
            "defs_cut_off": counter("incr.defs_cut_off"),
            "modules_cutoff_skipped": counter("incr.modules_skipped"),
            "incremental_fallbacks": counter("incr.fallbacks"),
            "incremental_fallback_errors": counter("incr.fallback_errors"),
            "failed": list(self.failed),
            "skipped": list(self.skipped),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "degradations": self.degradations,
            "stage_seconds": dict(self.stage_seconds),
            "total_seconds": self.total_seconds,
        }

    def report(self):
        """A human-readable multi-line summary."""
        lines = []
        lines.append(
            "pipeline: %d module(s) in %d wave(s) (widths %s), jobs=%d"
            % (
                self.modules,
                len(self.wave_widths),
                "/".join(str(w) for w in self.wave_widths) or "-",
                self.jobs,
            )
        )
        lines.append(
            "artifacts: %d analysed+cogen'd, %d from cache"
            % (len(self.analysed), len(self.cached))
        )
        counter = lambda name: self.metrics.counter(name).value
        if self.incremental or counter("incr.defs_cut_off"):
            lines.append(
                "incremental: %d module(s) rebuilt per-def "
                "(%d defs reused / %d re-derived / %d cut off), "
                "%d dependent module(s) skipped by cutoff"
                % (
                    len(self.incremental),
                    counter("incr.defs_reused"),
                    counter("incr.defs_re_derived"),
                    counter("incr.defs_cut_off"),
                    counter("incr.modules_skipped"),
                )
            )
        if self.failed or self.skipped:
            lines.append(
                "failures: %d failed, %d skipped (downstream cones)"
                % (len(self.failed), len(self.skipped))
            )
        if self.retries or self.timeouts or self.crashes:
            lines.append(
                "faults: %d retr%s, %d timeout(s), %d crash(es)%s"
                % (
                    self.retries,
                    "y" if self.retries == 1 else "ies",
                    self.timeouts,
                    self.crashes,
                    ", degraded to serial" if self.degradations else "",
                )
            )
        stage_seconds = self.stage_seconds
        known = [s for s in STAGES if s in stage_seconds]
        extra = [s for s in stage_seconds if s not in STAGES]
        for name in known + sorted(extra):
            lines.append("%-10s %8.2f ms" % (name, stage_seconds[name] * 1e3))
        lines.append("%-10s %8.2f ms" % ("total", self.total_seconds * 1e3))
        return "\n".join(lines)
