"""Definition-level incremental recompilation with early cutoff.

The module-granular cache (PR 1) keys a module's artifacts on its source
plus its imports' *whole interface files*: one changed scheme upstream
re-analyses every dependent module whose digest chain moves.  This
module pushes the paper's separate-analysis claim — analyse a module
without knowing its uses — down to the *definition* level:

* every successful build publishes a **per-definition record**
  (``defs.json``, :data:`repro.pipeline.cache.DEFS_KIND`) next to the
  module's interface and genext source: for each intra-module SCC, the
  schemes, the scheme digests, the dependency reads the analysis made,
  and the cogen fragments (:class:`repro.genext.cogen.DefFragment`);

* each SCC's record carries an :func:`scc_key` — a hash of the SCC's
  (resolved, canonically printed) definition sources, the scheme
  digests of every external definition it calls, and its
  forced-residual members;

* on a rebuild whose module key missed, :func:`try_incremental` walks
  the SCCs in dependency order against the *previous* build's record
  (found via the cache's refs): an SCC whose key is unchanged is reused
  verbatim — schemes, annotations, fragments — and an SCC that must be
  re-derived but lands on byte-identical scheme digests **cuts off**
  invalidation: every downstream key (built from digests, not files)
  stays unchanged, so dependent modules hit their caches without being
  re-analysed.

Reassembly is exact: :func:`repro.genext.cogen.assemble_module` rebuilds
the genext source from any mix of cached and fresh fragments
byte-identically to a cold cogen run, and the interface text is
re-serialised from the (partly reused) schemes — so incremental output
is indistinguishable from a from-scratch build, which the property tests
check seed-by-seed against the pinned corpus.

The path is deliberately conservative: any structural change (import
list, definition list), any malformed record, or any exception at all
falls back to whole-module analysis in the worker pool — correctness
never depends on this module, only speed does.
"""

import hashlib
import json
from dataclasses import dataclass
from typing import List

from repro.bt.analysis import analyse_scc
from repro.bt.interface import (
    CACHE_EPOCH,
    interface_text,
    scheme_digest,
    scheme_from_json,
    scheme_to_json,
)
from repro.genext.cogen import (
    DefFragment,
    GenextModule,
    assemble_module,
    cogen_def,
)
from repro.lang.names import called_functions, def_called_functions, free_vars
from repro.lang.pretty import pretty_def
from repro.lang.validate import resolve_module
from repro.types.infer import module_def_sccs

DEFS_FORMAT = "repro.defs/v1"

_SCC_KEY_SALT = b"mspec-scc-key\x00"


def referenced_names(module):
    """Every function name a module's definitions could reference.

    Computed *before* resolution, so it must be conservative: a
    0-arity function reference still parses as a ``Var`` until
    resolution turns it into a ``Call``, hence free variables count as
    potential references alongside call heads.  Intersected with the
    imports' exported names, this is the set of definitions a module's
    cache key may legitimately depend on."""
    names = set()
    for d in module.defs:
        names |= called_functions(d.body)
        names |= free_vars(d.body, frozenset(d.params))
    return frozenset(names)


def used_import_digests(module, visible_digests):
    """Sorted ``(def_name, scheme_digest)`` pairs for exactly the
    imported definitions ``module`` syntactically references — the
    def-level dependency edge set its build key hashes."""
    own = set(module.def_names())
    return sorted(
        (name, visible_digests[name])
        for name in referenced_names(module) & set(visible_digests)
        if name not in own
    )


def scc_key(module_name, by_name, group, digests, force_residual):
    """The content key of one SCC's analysis+cogen work.

    Hashes the SCC members' resolved definition sources (canonical
    pretty-printing), the scheme digests of every *external* definition
    they call, and the members forced residual.  Unchanged key ⇒ the
    fixpoint would re-derive byte-identical schemes and fragments, so
    the previous build's record is reused without running it."""
    h = hashlib.sha256(_SCC_KEY_SALT)
    h.update(b"epoch=%d\x00" % CACHE_EPOCH)
    h.update(module_name.encode("utf-8"))
    h.update(b"\x00")
    external = set()
    for name in group:
        external |= def_called_functions(by_name[name])
    external -= set(group)
    for name in sorted(group):
        h.update(b"def:")
        h.update(name.encode("utf-8"))
        h.update(b"=")
        h.update(pretty_def(by_name[name]).encode("utf-8"))
        h.update(b"\x00")
    for callee in sorted(external):
        h.update(b"read:")
        h.update(callee.encode("utf-8"))
        h.update(b"=")
        h.update((digests.get(callee) or "<missing>").encode("utf-8"))
        h.update(b"\x00")
    for name in sorted(set(group) & set(force_residual)):
        h.update(b"resid:")
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def build_defs_doc(resolved, schemes, deps, fragments, visible_digests,
                   force_residual):
    """The per-definition build record published alongside a module's
    interface and genext source (``repro.defs/v1``).

    ``fragments`` maps def names to :class:`DefFragment`; ``deps`` maps
    def names to the function names the analysis actually read.  The
    record is what a later :func:`try_incremental` run mines for
    reusable SCCs."""
    force = frozenset(force_residual)
    digests = dict(visible_digests)
    digests.update({n: scheme_digest(s) for n, s in schemes.items()})
    by_name = {d.name: d for d in resolved.defs}
    sccs = []
    for group in module_def_sccs(resolved):
        payload = {}
        for name in group:
            fr = fragments[name]
            payload[name] = {
                "scheme": scheme_to_json(schemes[name]),
                "digest": digests[name],
                "deps": sorted(deps.get(name, frozenset())),
                "chunk": fr.chunk,
                "sig_line": fr.sig_line,
                "info_line": fr.info_line,
                "imported": [list(pair) for pair in fr.imported],
            }
        sccs.append(
            {
                "defs": list(group),
                "key": scc_key(resolved.name, by_name, group, digests, force),
                "payload": payload,
            }
        )
    return {
        "format": DEFS_FORMAT,
        "module": resolved.name,
        "imports": list(resolved.imports),
        "def_order": list(resolved.def_names()),
        "sccs": sccs,
    }


def defs_doc_text(doc):
    """Canonical serialisation of a defs record."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def parse_defs_doc(text):
    """Parse a defs record; ``None`` on anything malformed (a corrupt
    record merely disables the per-def path for one rebuild)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(doc, dict) or doc.get("format") != DEFS_FORMAT:
        return None
    return doc


@dataclass
class ModuleIncrement:
    """The outcome of one per-definition module rebuild."""

    name: str
    iface_text: str
    genext: GenextModule
    defs_doc: dict
    reused: List[str]
    re_derived: List[str]
    cut_off: List[str]


def try_incremental(module, visible_schemes, visible_digests, prev_doc,
                    force_residual=frozenset()):
    """Rebuild one module per-definition against its previous record.

    ``module`` is the parsed (unresolved) module; ``visible_schemes`` /
    ``visible_digests`` merge its imports' current interfaces;
    ``prev_doc`` is the previous build's parsed defs record.

    Returns a :class:`ModuleIncrement`, or ``None`` when the
    prerequisites fail — no usable record, or the module's top-level
    structure (import list, definition list) changed, where whole-module
    analysis is the honest cost.  Any other failure (malformed record,
    resolution error) raises and the caller falls back to the pool."""
    if prev_doc is None or prev_doc.get("format") != DEFS_FORMAT:
        return None
    if list(module.imports) != list(prev_doc.get("imports", ())):
        return None
    if list(module.def_names()) != list(prev_doc.get("def_order", ())):
        return None
    force = frozenset(force_residual)
    arities = {name: len(s.args) for name, s in visible_schemes.items()}
    resolved = resolve_module(module, arities)
    by_name = {d.name: d for d in resolved.defs}
    own = set(resolved.def_names())

    prev_sccs = {}
    prev_digests = {}
    for rec in prev_doc.get("sccs", ()):
        prev_sccs[frozenset(rec["defs"])] = rec
        for name, payload in rec["payload"].items():
            prev_digests[name] = payload.get("digest")

    env = dict(visible_schemes)
    digests = dict(visible_digests)
    schemes = {}
    fragments = {}
    deps = {}
    reused, re_derived, cut_off = [], [], []
    for group in module_def_sccs(resolved):
        key = scc_key(resolved.name, by_name, group, digests, force)
        rec = prev_sccs.get(frozenset(group))
        if rec is not None and rec.get("key") == key:
            # Unchanged sources, unchanged read digests: the fixpoint
            # would reproduce this record byte-for-byte — skip it.
            for name in group:
                payload = rec["payload"][name]
                scheme = scheme_from_json(payload["scheme"])
                schemes[name] = scheme
                env[name] = scheme
                digests[name] = scheme_digest(scheme)
                deps[name] = frozenset(payload.get("deps", ()))
                fragments[name] = DefFragment(
                    name=name,
                    chunk=payload["chunk"],
                    sig_line=payload["sig_line"],
                    info_line=payload["info_line"],
                    imported=tuple(
                        (src, py) for src, py in payload["imported"]
                    ),
                )
                reused.append(name)
            continue
        group_schemes, group_annotated, group_reads = analyse_scc(
            by_name, group, env, force
        )
        for name in group:
            scheme = group_schemes[name]
            schemes[name] = scheme
            env[name] = scheme
            new_digest = scheme_digest(scheme)
            fragments[name] = cogen_def(group_annotated[name], scheme, own)
            deps[name] = group_reads[name]
            re_derived.append(name)
            if prev_digests.get(name) == new_digest:
                # Early cutoff: the body changed but its scheme did
                # not, so every downstream key — built from this
                # digest — is already unchanged.
                cut_off.append(name)
            digests[name] = new_digest
    genext = assemble_module(
        resolved.name,
        resolved.imports,
        [fragments[d.name] for d in resolved.defs],
    )
    return ModuleIncrement(
        name=resolved.name,
        iface_text=interface_text(resolved.name, schemes),
        genext=genext,
        defs_doc=build_defs_doc(
            resolved, schemes, deps, fragments, visible_digests, force
        ),
        reused=reused,
        re_derived=re_derived,
        cut_off=cut_off,
    )


def defs_doc_for_analysis(resolved, analysis, fragments, visible_digests,
                          force_residual=frozenset()):
    """Build the defs record for a freshly analysed module (the worker
    path).  ``fragments`` is the :func:`cogen_fragments` list the genext
    source was assembled from — shared, not recomputed."""
    return build_defs_doc(
        resolved,
        analysis.schemes,
        analysis.deps,
        {fr.name: fr for fr in fragments},
        visible_digests,
        force_residual,
    )
