"""Module-level validation and name resolution.

Given the arities of the functions a module imports, this pass checks the
paper's structural restrictions and *resolves* the module:

* named functions appear only fully applied (saturation);
* locally bound variables are never applied by juxtaposition (anonymous
  values must be applied with ``@``);
* every variable is bound; every called function is in scope;
* references to zero-argument functions, which the parser necessarily
  reads as variables, are rewritten into :class:`~repro.lang.ast.Call`
  nodes with no arguments.

Program-level concerns (module-name uniqueness, import acyclicity, the
global-uniqueness rule for function names) live in
:mod:`repro.modsys.program`, which drives this pass module by module.
"""

from repro.lang.ast import App, Call, Def, If, Lam, Lit, Module, Prim, Var
from repro.lang.errors import ValidationError


def resolve_module(module, imported_arities):
    """Validate and resolve ``module``.

    ``imported_arities`` maps each function name imported into this module
    to its arity.  Returns a new, resolved :class:`Module`.  Raises
    :class:`ValidationError` on any violation.
    """
    arities = dict(imported_arities)
    seen = set()
    for d in module.defs:
        if d.name in seen:
            raise ValidationError(
                "module %s: duplicate definition of %r" % (module.name, d.name)
            )
        seen.add(d.name)
        if d.name in imported_arities:
            raise ValidationError(
                "module %s: %r is already defined in an imported module"
                % (module.name, d.name)
            )
        arities[d.name] = d.arity
    resolved = []
    for d in module.defs:
        body = _resolve(d.body, frozenset(d.params), arities, module.name, d.name)
        resolved.append(Def(d.name, d.params, body))
    return Module(module.name, module.imports, tuple(resolved))


def _resolve(expr, scope, arities, module_name, def_name):
    def err(message):
        return ValidationError(
            "module %s, in %r: %s" % (module_name, def_name, message)
        )

    def go(e, scope):
        if isinstance(e, Lit):
            return e
        if isinstance(e, Var):
            if e.name in scope:
                return e
            if e.name in arities:
                if arities[e.name] == 0:
                    return Call(e.name, ())
                raise err(
                    "named function %r must be fully applied "
                    "(expects %d arguments)" % (e.name, arities[e.name])
                )
            raise err("unbound variable %r" % e.name)
        if isinstance(e, Prim):
            return Prim(e.op, tuple(go(a, scope) for a in e.args))
        if isinstance(e, If):
            return If(
                go(e.cond, scope),
                go(e.then_branch, scope),
                go(e.else_branch, scope),
            )
        if isinstance(e, Call):
            if e.func in scope:
                raise err(
                    "%r is a local variable; apply it with '@', "
                    "not by juxtaposition" % e.func
                )
            if e.func not in arities:
                raise err("call of unknown function %r" % e.func)
            expected = arities[e.func]
            if len(e.args) != expected:
                raise err(
                    "%r expects %d arguments, got %d"
                    % (e.func, expected, len(e.args))
                )
            return Call(e.func, tuple(go(a, scope) for a in e.args))
        if isinstance(e, Lam):
            return Lam(e.var, go(e.body, scope | {e.var}))
        if isinstance(e, App):
            return App(go(e.fun, scope), go(e.arg, scope))
        raise TypeError("not an expression: %r" % (e,))

    return go(expr, scope)
