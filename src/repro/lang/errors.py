"""Error hierarchy for the object-language front end."""


class LangError(Exception):
    """Base class for all front-end errors.

    Carries an optional source location ``(line, column)`` so drivers can
    report errors the way a compiler would.
    """

    def __init__(self, message, line=None, column=None):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self):
        if self.line is None:
            return self.message
        return "%d:%d: %s" % (self.line, self.column, self.message)


class LexError(LangError):
    """Raised by the lexer on malformed input (bad character, bad number)."""


class ParseError(LangError):
    """Raised by the parser on a syntactically invalid program."""


class ValidationError(LangError):
    """Raised by :mod:`repro.lang.validate` on a structurally ill-formed
    program: unsaturated named calls, duplicate definitions, unbound
    variables, shadowed named functions, and similar.
    """
