"""Name analyses over the object language.

Free variables, called-function sets, and capture-avoiding renaming.
These are used throughout: validation, binding-time analysis, the cogen
(which embeds per-definition free-function sets for the residual-module
placement algorithm of Sec. 5), and the interpreter.
"""

from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var


def free_vars(expr, bound=frozenset()):
    """The set of variable names free in ``expr``.

    ``bound`` are names already in scope that should not be reported.
    Named-function names never appear here — a :class:`Call` head is a
    function reference, not a variable.
    """
    if isinstance(expr, Lit):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset() if expr.name in bound else frozenset([expr.name])
    if isinstance(expr, Prim):
        out = frozenset()
        for a in expr.args:
            out |= free_vars(a, bound)
        return out
    if isinstance(expr, If):
        return (
            free_vars(expr.cond, bound)
            | free_vars(expr.then_branch, bound)
            | free_vars(expr.else_branch, bound)
        )
    if isinstance(expr, Call):
        out = frozenset()
        for a in expr.args:
            out |= free_vars(a, bound)
        return out
    if isinstance(expr, Lam):
        return free_vars(expr.body, bound | {expr.var})
    if isinstance(expr, App):
        return free_vars(expr.fun, bound) | free_vars(expr.arg, bound)
    raise TypeError("not an expression: %r" % (expr,))


def called_functions(expr):
    """The set of named-function names called anywhere in ``expr``.

    This is the "function names which occur free" notion Sec. 5 uses to
    place specialisations: for a definition it bounds what the residual
    code of any specialisation of it can refer to.
    """
    if isinstance(expr, (Lit, Var)):
        return frozenset()
    if isinstance(expr, Prim):
        out = frozenset()
        for a in expr.args:
            out |= called_functions(a)
        return out
    if isinstance(expr, If):
        return (
            called_functions(expr.cond)
            | called_functions(expr.then_branch)
            | called_functions(expr.else_branch)
        )
    if isinstance(expr, Call):
        out = frozenset([expr.func])
        for a in expr.args:
            out |= called_functions(a)
        return out
    if isinstance(expr, Lam):
        return called_functions(expr.body)
    if isinstance(expr, App):
        return called_functions(expr.fun) | called_functions(expr.arg)
    raise TypeError("not an expression: %r" % (expr,))


def def_called_functions(d):
    """Named functions a definition's body can reach directly."""
    return called_functions(d.body)


def rename(expr, mapping):
    """Capture-avoiding substitution of variables for variables.

    ``mapping`` maps old variable names to new names.  Binders shadow:
    a lambda over a mapped name removes it from the mapping underneath.
    Used by the specialiser baseline when unfolding.
    """
    if not mapping:
        return expr
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Var):
        new = mapping.get(expr.name)
        return Var(new) if new is not None else expr
    if isinstance(expr, Prim):
        return Prim(expr.op, tuple(rename(a, mapping) for a in expr.args))
    if isinstance(expr, If):
        return If(
            rename(expr.cond, mapping),
            rename(expr.then_branch, mapping),
            rename(expr.else_branch, mapping),
        )
    if isinstance(expr, Call):
        return Call(expr.func, tuple(rename(a, mapping) for a in expr.args))
    if isinstance(expr, Lam):
        inner = {k: v for k, v in mapping.items() if k != expr.var}
        return Lam(expr.var, rename(expr.body, inner))
    if isinstance(expr, App):
        return App(rename(expr.fun, mapping), rename(expr.arg, mapping))
    raise TypeError("not an expression: %r" % (expr,))


class NameSupply:
    """A deterministic supply of fresh names with a common prefix.

    The specialiser uses one supply for residual function names and one
    for residual variables; determinism keeps golden tests stable.
    """

    def __init__(self):
        self._counters = {}

    def fresh(self, prefix):
        n = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = n
        return "%s%d" % (prefix, n)

    def reset(self):
        self._counters.clear()
