"""Pretty printer for the object language.

Emits concrete syntax that re-parses to the same AST (a property the test
suite checks exhaustively).  Residual programs are written to disk through
this printer, so it is also the back end of the specialiser.
"""

from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var
from repro.lang.prims import PRIMS

# Precedence levels, mirroring the parser: 0 wraps nothing (top level,
# bodies of lambda/if); 8 is atom position.
_ATOM = 8
_JUXT_ARG = 8
_JUXT = 7.5  # a juxtaposition binds tighter than '@' but is not an atom


def _prim_prec(op):
    info = PRIMS[op]
    if info.infix:
        return info.precedence
    return _JUXT


def pretty_expr(expr, prec=0):
    """Render ``expr``; parenthesise if its precedence is below ``prec``."""
    if isinstance(expr, Lit):
        return _lit(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Lam):
        body = "\\%s -> %s" % (expr.var, pretty_expr(expr.body, 0))
        return _wrap(body, 0, prec)
    if isinstance(expr, If):
        text = "if %s then %s else %s" % (
            pretty_expr(expr.cond, 0),
            pretty_expr(expr.then_branch, 0),
            pretty_expr(expr.else_branch, 0),
        )
        return _wrap(text, 0, prec)
    if isinstance(expr, App):
        text = "%s @ %s" % (pretty_expr(expr.fun, 7), pretty_expr(expr.arg, 7.5))
        return _wrap(text, 7, prec)
    if isinstance(expr, Call):
        if not expr.args:
            return expr.func
        text = "%s %s" % (
            expr.func,
            " ".join(pretty_expr(a, _JUXT_ARG) for a in expr.args),
        )
        return _wrap(text, _JUXT, prec)
    if isinstance(expr, Prim):
        return _prim(expr, prec)
    raise TypeError("not an expression: %r" % (expr,))


def _prim(expr, prec):
    info = PRIMS[expr.op]
    if info.infix and len(expr.args) == 2:
        p = info.precedence
        if info.assoc == "left":
            left_p, right_p = p, p + 1
        elif info.assoc == "right":
            left_p, right_p = p + 1, p
        else:
            left_p, right_p = p + 1, p + 1
        text = "%s %s %s" % (
            pretty_expr(expr.args[0], left_p),
            info.infix,
            pretty_expr(expr.args[1], right_p),
        )
        return _wrap(text, p, prec)
    text = "%s %s" % (
        expr.op,
        " ".join(pretty_expr(a, _JUXT_ARG) for a in expr.args),
    )
    if not expr.args:
        text = expr.op
        return text
    return _wrap(text, _JUXT, prec)


def _lit(value):
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value == ():
        return "nil"
    return str(value)


def _wrap(text, actual, required):
    if actual < required:
        return "(%s)" % text
    return text


def pretty_def(d):
    """Render one definition as a single source line."""
    head = d.name if not d.params else "%s %s" % (d.name, " ".join(d.params))
    return "%s = %s" % (head, pretty_expr(d.body))


def pretty_module(m):
    """Render a module, imports first, one definition per line."""
    header = m.name
    if m.params:
        header += "(%s)" % ", ".join("%s %d" % (n, a) for n, a in m.params)
    lines = ["module %s where" % header]
    for imp in m.imports:
        lines.append("import %s" % imp)
    if m.defs:
        lines.append("")
    for d in m.defs:
        lines.append(pretty_def(d))
    return "\n".join(lines) + "\n"


def pretty_program(p):
    """Render a whole program, modules separated by blank lines."""
    return "\n".join(pretty_module(m) for m in p.modules)
