"""Primitive operations of the object language.

Primitives are what the paper calls ``Prim E*``: fully applied, first-order
operations on base values and lists.  This module is the single table of
record — the parser, the type checker, the binding-time analysis, the
interpreter, and the specialisation runtime all consult it.

The value domain is:

* naturals (Python ``int`` >= 0) — subtraction is *monus* (cut off at 0),
  as usual for a naturals-only language;
* booleans;
* lists (Python tuples);
* pairs (2-tuples tagged by the type checker — at run time a pair is a
  Python tuple ``('pair', a, b)`` to keep it distinct from lists).
"""

from dataclasses import dataclass
from typing import Optional

PAIR_TAG = "pair"


def make_pair(a, b):
    """Construct a runtime pair value."""
    return (PAIR_TAG, a, b)


def is_pair(v):
    return isinstance(v, tuple) and len(v) == 3 and v[0] == PAIR_TAG


@dataclass(frozen=True)
class PrimInfo:
    """Static description of one primitive.

    ``infix`` is the operator spelling when the primitive can be written
    infix (``None`` for prefix-only primitives); ``precedence`` and
    ``assoc`` drive the parser and pretty printer.
    """

    name: str
    arity: int
    infix: Optional[str] = None
    precedence: int = 0
    assoc: str = "left"  # 'left' | 'right' | 'none'


PRIMS = {
    p.name: p
    for p in [
        PrimInfo("or", 2, infix="||", precedence=1),
        PrimInfo("and", 2, infix="&&", precedence=2),
        PrimInfo("==", 2, infix="==", precedence=3, assoc="none"),
        PrimInfo("<", 2, infix="<", precedence=3, assoc="none"),
        PrimInfo("<=", 2, infix="<=", precedence=3, assoc="none"),
        PrimInfo("cons", 2, infix=":", precedence=4, assoc="right"),
        PrimInfo("+", 2, infix="+", precedence=5),
        PrimInfo("-", 2, infix="-", precedence=5),
        PrimInfo("*", 2, infix="*", precedence=6),
        PrimInfo("div", 2, infix=None),
        PrimInfo("mod", 2, infix=None),
        PrimInfo("not", 1),
        PrimInfo("head", 1),
        PrimInfo("tail", 1),
        PrimInfo("null", 1),
        PrimInfo("pair", 2),
        PrimInfo("fst", 1),
        PrimInfo("snd", 1),
    ]
}

# Operator spelling -> primitive name, for the parser.
INFIX_BY_SYMBOL = {p.infix: p.name for p in PRIMS.values() if p.infix}


class PrimError(Exception):
    """A primitive was applied to a value outside its domain.

    Corresponds to a runtime error of the object language (``head nil``,
    and so on); the interpreter and the specialiser both surface it.
    """


def _nat(v):
    if isinstance(v, bool) or not isinstance(v, int):
        raise PrimError("expected a natural, got %r" % (v,))
    return v


def _bool(v):
    if not isinstance(v, bool):
        raise PrimError("expected a boolean, got %r" % (v,))
    return v


def _list(v):
    if not isinstance(v, tuple) or is_pair(v):
        raise PrimError("expected a list, got %r" % (v,))
    return v


def apply_prim(op, args):
    """Evaluate primitive ``op`` on fully evaluated ``args``.

    Used both by the object-language interpreter and by the specialiser
    when an operation is static.  Raises :class:`PrimError` on a domain
    error and ``KeyError`` on an unknown primitive.
    """
    info = PRIMS[op]
    if len(args) != info.arity:
        raise PrimError("%s expects %d args, got %d" % (op, info.arity, len(args)))
    if op == "+":
        return _nat(args[0]) + _nat(args[1])
    if op == "-":
        return max(0, _nat(args[0]) - _nat(args[1]))
    if op == "*":
        return _nat(args[0]) * _nat(args[1])
    if op == "div":
        if _nat(args[1]) == 0:
            raise PrimError("division by zero")
        return _nat(args[0]) // args[1]
    if op == "mod":
        if _nat(args[1]) == 0:
            raise PrimError("modulo by zero")
        return _nat(args[0]) % args[1]
    if op == "==":
        return _nat(args[0]) == _nat(args[1])
    if op == "<":
        return _nat(args[0]) < _nat(args[1])
    if op == "<=":
        return _nat(args[0]) <= _nat(args[1])
    if op == "and":
        return _bool(args[0]) and _bool(args[1])
    if op == "or":
        return _bool(args[0]) or _bool(args[1])
    if op == "not":
        return not _bool(args[0])
    if op == "cons":
        return (args[0],) + _list(args[1])
    if op == "head":
        xs = _list(args[0])
        if not xs:
            raise PrimError("head of empty list")
        return xs[0]
    if op == "tail":
        xs = _list(args[0])
        if not xs:
            raise PrimError("tail of empty list")
        return xs[1:]
    if op == "null":
        return _list(args[0]) == ()
    if op == "pair":
        return make_pair(args[0], args[1])
    if op == "fst":
        if not is_pair(args[0]):
            raise PrimError("fst of non-pair %r" % (args[0],))
        return args[0][1]
    if op == "snd":
        if not is_pair(args[0]):
            raise PrimError("snd of non-pair %r" % (args[0],))
        return args[0][2]
    raise KeyError(op)
