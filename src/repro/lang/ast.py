"""Abstract syntax of the object language (paper, Fig. 1).

::

    Program ::= Module*
    Module  ::= module Id where [import Id]* Def*
    Def     ::= Id Id* = E
    E       ::= Nat | Id | Prim E* | if E then E else E
              | Id E*                      -- saturated named-function call
              | \\Id -> E | E @ E          -- anonymous functions

Extensions kept deliberately small (the paper's examples need them):

* boolean literals ``true`` / ``false`` and the empty list ``nil`` are
  literals;
* lists are built with the primitives ``cons``/``head``/``tail``/``null``
  (the paper's ``map`` examples use exactly these).

All nodes are immutable (frozen dataclasses) and hashable, so they can be
used as dictionary keys — the specialiser memoises on static argument
skeletons that embed expression fragments.

Named functions and primitive operations are *resolved* by the parser: a
juxtaposition ``f e1 e2`` becomes a :class:`Call` when ``f`` is a defined
or imported function, a :class:`Prim` when ``f`` is a primitive, and is a
parse error otherwise (named functions may only appear fully applied —
the paper's saturation restriction).
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

LitValue = Union[int, bool, tuple]  # naturals, booleans, and () for nil


class Expr:
    """Base class of object-language expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Lit(Expr):
    """A literal: a natural number, ``true``/``false``, or ``nil``.

    ``nil`` is represented by the empty Python tuple so that literals stay
    hashable and distinct from naturals and booleans.
    """

    value: LitValue

    def __post_init__(self):
        if isinstance(self.value, bool):
            return
        if isinstance(self.value, int):
            if self.value < 0:
                raise ValueError("naturals only: %r" % (self.value,))
            return
        if self.value == ():
            return
        raise ValueError("bad literal: %r" % (self.value,))


@dataclass(frozen=True)
class Var(Expr):
    """A variable occurrence (lambda- or parameter-bound)."""

    name: str


@dataclass(frozen=True)
class Prim(Expr):
    """A fully applied primitive operation, e.g. ``Prim('+', (e1, e2))``."""

    op: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class If(Expr):
    """A conditional ``if cond then then_branch else else_branch``."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A saturated call of a named (top-level) function.

    ``func`` is the *unqualified* source name; resolution to a defining
    module happens in :mod:`repro.modsys.symbols`.
    """

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Lam(Expr):
    """An anonymous function ``\\var -> body`` (first-class, unfolded only)."""

    var: str
    body: Expr


@dataclass(frozen=True)
class App(Expr):
    """Application of an anonymous function: ``fun @ arg``."""

    fun: Expr
    arg: Expr


@dataclass(frozen=True)
class Def:
    """A top-level function definition ``name params... = body``."""

    name: str
    params: Tuple[str, ...]
    body: Expr

    @property
    def arity(self):
        return len(self.params)


@dataclass(frozen=True)
class Module:
    """A module: a name, import list, and definitions (all exported).

    ``params`` makes the module a *functor* (a parameterised module, the
    paper's Further Work): pairs of (function name, arity) the module
    abstracts over.  Functor modules are templates — they cannot be
    linked into an ordinary program; see :mod:`repro.functor`.
    """

    name: str
    imports: Tuple[str, ...]
    defs: Tuple[Def, ...]
    params: Tuple[Tuple[str, int], ...] = ()

    @property
    def is_functor(self):
        return bool(self.params)

    def def_names(self):
        """Names defined in this module, in source order."""
        return tuple(d.name for d in self.defs)

    def find(self, name):
        """Return the definition called ``name``, or ``None``."""
        for d in self.defs:
            if d.name == name:
                return d
        return None


@dataclass(frozen=True)
class Program:
    """A complete program: a tuple of modules with acyclic imports."""

    modules: Tuple[Module, ...]

    def module(self, name):
        """Return the module called ``name`` or raise ``KeyError``."""
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(name)

    def module_names(self):
        return tuple(m.name for m in self.modules)

    def all_defs(self):
        """Iterate ``(module, def)`` pairs over the whole program."""
        for m in self.modules:
            for d in m.defs:
                yield m, d


def children(expr):
    """Return the immediate sub-expressions of ``expr`` as a tuple."""
    if isinstance(expr, (Lit, Var)):
        return ()
    if isinstance(expr, Prim):
        return expr.args
    if isinstance(expr, If):
        return (expr.cond, expr.then_branch, expr.else_branch)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, Lam):
        return (expr.body,)
    if isinstance(expr, App):
        return (expr.fun, expr.arg)
    raise TypeError("not an expression: %r" % (expr,))


def walk(expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    stack = [expr]
    while stack:
        e = stack.pop()
        yield e
        stack.extend(reversed(children(e)))


def count_nodes(expr):
    """Number of AST nodes in ``expr`` (a size metric used by benches)."""
    return sum(1 for _ in walk(expr))


def def_size(d):
    """AST-node size of a definition (params count as one node each)."""
    return 1 + len(d.params) + count_nodes(d.body)


def module_size(m):
    """AST-node size of a module (imports count as one node each)."""
    return 1 + len(m.imports) + sum(def_size(d) for d in m.defs)


def program_size(p):
    """AST-node size of a whole program."""
    return sum(module_size(m) for m in p.modules)
