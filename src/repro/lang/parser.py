"""Recursive-descent parser for the object language (paper, Fig. 1).

Concrete syntax, close to the paper's:

::

    module Power where
    import Lists

    power n x = if n == 1 then x else x * power (n - 1) x
    twice f x = f @ (f @ x)

* Top-level items (``import``, definitions) start in column 1;
  continuation lines are indented.
* Named functions are applied by juxtaposition (``power (n - 1) x``) and
  must be fully applied; anonymous functions are applied with ``@``.
* ``\\x -> e`` is a lambda.  ``[e1, e2, ...]`` is sugar for ``cons``
  chains ending in ``nil``; ``[]`` is ``nil``.
* Infix operators (loosest to tightest): ``||``, ``&&``,
  ``== < <=`` (non-associative), ``:`` (right), ``+ -``, ``*``, ``@``.

Whether an identifier heads a :class:`~repro.lang.ast.Call` or a
:class:`~repro.lang.ast.Prim` is decided here from the primitive table;
arity and scope checking for calls happens in :mod:`repro.lang.validate`,
which also resolves references to zero-argument functions.
"""

from repro.lang.ast import App, Call, Def, If, Lam, Lit, Module, Prim, Program, Var
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.prims import INFIX_BY_SYMBOL, PRIMS

# Binary operator symbol -> (precedence, associativity). '@' builds App
# nodes; every other symbol maps through INFIX_BY_SYMBOL to a primitive.
_BINOPS = {
    "||": (1, "left"),
    "&&": (2, "left"),
    "==": (3, "none"),
    "<": (3, "none"),
    "<=": (3, "none"),
    ":": (4, "right"),
    "+": (5, "left"),
    "-": (5, "left"),
    "*": (6, "left"),
    "@": (7, "left"),
}


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, ahead=0):
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind, value=None):
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def expect(self, kind, value=None):
        tok = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise ParseError(
                "expected %r, found %s" % (want, tok.describe()), tok.line, tok.column
            )
        return self.next()

    def error(self, message):
        tok = self.peek()
        raise ParseError(message, tok.line, tok.column)

    # -- modules ----------------------------------------------------------

    def program(self):
        modules = []
        while self.at("kw", "module"):
            modules.append(self.module())
        self.expect("eof")
        if not modules:
            raise ParseError("empty program: expected at least one module", 1, 1)
        return Program(tuple(modules))

    def module(self):
        self.expect("kw", "module")
        name = self.expect("conid").value
        params = []
        if self.at("op", "("):
            # A functor: `module Sort(le 2) where ...` — parameters are
            # function names with their arities.
            self.next()
            while True:
                pname = self.expect("ident").value
                arity = self.expect("nat").value
                params.append((pname, arity))
                if not self.at("op", ","):
                    break
                self.next()
            self.expect("op", ")")
        self.expect("kw", "where")
        imports = []
        while self.at("kw", "import"):
            self.next()
            imports.append(self.expect("conid").value)
        defs = []
        while self.at("ident"):
            defs.append(self.definition())
        return Module(name, tuple(imports), tuple(defs), tuple(params))

    def definition(self):
        head = self.expect("ident")
        if head.column != 1:
            raise ParseError(
                "definitions must start in column 1", head.line, head.column
            )
        params = []
        while self.at("ident"):
            params.append(self.next().value)
        self.expect("op", "=")
        body = self.expr()
        if len(set(params)) != len(params):
            raise ParseError(
                "duplicate parameter in definition of %r" % head.value,
                head.line,
                head.column,
            )
        return Def(head.value, tuple(params), body)

    # -- expressions --------------------------------------------------------

    def expr(self):
        if self.at("op", "\\"):
            self.next()
            var = self.expect("ident").value
            self.expect("op", "->")
            return Lam(var, self.expr())
        if self.at("kw", "if"):
            self.next()
            cond = self.expr()
            self.expect("kw", "then")
            then_branch = self.expr()
            self.expect("kw", "else")
            else_branch = self.expr()
            return If(cond, then_branch, else_branch)
        if self.at("kw", "let"):
            # `let x = e1 in e2` is sugar for `(\x -> e2) @ e1`: a static
            # beta-redex the specialiser always unfolds.
            self.next()
            name = self.expect("ident").value
            self.expect("op", "=")
            bound = self.expr()
            self.expect("kw", "in")
            body = self.expr()
            return App(Lam(name, body), bound)
        return self.binary(1)

    def binary(self, min_prec):
        """Precedence-climbing parser for the infix operator layers."""
        left = self.juxtaposition()
        while True:
            tok = self.peek()
            if tok.kind != "op" or tok.value not in _BINOPS:
                return left
            if tok.column == 1 and tok.line > 1:
                # Layout: a new top-level item starts here.
                return left
            prec, assoc = _BINOPS[tok.value]
            if prec < min_prec:
                return left
            self.next()
            next_min = prec if assoc == "right" else prec + 1
            right = self.binary(next_min)
            left = self._combine(tok.value, left, right, tok)
            follower = self.peek()
            if (
                assoc == "none"
                and follower.kind == "op"
                and _BINOPS.get(follower.value, (None,))[0] == prec
            ):
                self.error("operator %r is non-associative" % tok.value)

    def _combine(self, symbol, left, right, tok):
        if symbol == "@":
            return App(left, right)
        return Prim(INFIX_BY_SYMBOL[symbol], (left, right))

    def juxtaposition(self):
        """Parse ``atom atom*``: prim/named application or a lone atom.

        Lambdas and conditionals are also allowed *saturating* positions
        (e.g. ``map (\\x -> x + 1) xs`` needs parens, but a trailing
        operand may be a parenthesised expression only) — operands are
        atoms, per the grammar.
        """
        tok = self.peek()
        if tok.kind == "ident" and self._starts_atom(self.peek(1)):
            name = self.next().value
            args = []
            while self._starts_atom(self.peek()):
                args.append(self.atom())
            if name in PRIMS:
                info = PRIMS[name]
                if len(args) != info.arity:
                    raise ParseError(
                        "primitive %r expects %d arguments, got %d"
                        % (name, info.arity, len(args)),
                        tok.line,
                        tok.column,
                    )
                return Prim(name, tuple(args))
            return Call(name, tuple(args))
        atom = self.atom()
        if self._starts_atom(self.peek()):
            self.error(
                "only named functions may be applied by juxtaposition; "
                "use '@' to apply an anonymous function"
            )
        return atom

    def _starts_atom(self, tok):
        if tok.column == 1 and tok.line > 1:
            # Layout: column-1 tokens begin a new top-level item and can
            # never continue an expression.
            return False
        if tok.kind in ("ident", "nat"):
            return True
        if tok.kind == "kw" and tok.value in ("true", "false", "nil"):
            return True
        if tok.kind == "op" and tok.value in ("(", "["):
            return True
        return False

    def atom(self):
        tok = self.peek()
        if tok.kind == "nat":
            self.next()
            return Lit(tok.value)
        if tok.kind == "kw" and tok.value in ("true", "false"):
            self.next()
            return Lit(tok.value == "true")
        if tok.kind == "kw" and tok.value == "nil":
            self.next()
            return Lit(())
        if tok.kind == "ident":
            self.next()
            if tok.value in PRIMS:
                raise ParseError(
                    "primitive %r must be fully applied" % tok.value,
                    tok.line,
                    tok.column,
                )
            return Var(tok.value)
        if self.at("op", "("):
            self.next()
            inner = self.expr()
            self.expect("op", ")")
            return inner
        if self.at("op", "["):
            return self.list_literal()
        self.error("expected an expression")

    def list_literal(self):
        self.expect("op", "[")
        elements = []
        if not self.at("op", "]"):
            elements.append(self.expr())
            while self.at("op", ","):
                self.next()
                elements.append(self.expr())
        self.expect("op", "]")
        result = Lit(())
        for element in reversed(elements):
            result = Prim("cons", (element, result))
        return result


def parse_program(source):
    """Parse a complete multi-module program from ``source`` text."""
    return _Parser(tokenize(source)).program()


def parse_module(source):
    """Parse exactly one module from ``source`` text."""
    parser = _Parser(tokenize(source))
    module = parser.module()
    parser.expect("eof")
    return module


def parse_expr(source):
    """Parse a single expression (handy in tests and the REPL)."""
    parser = _Parser(tokenize(source))
    expr = parser.expr()
    parser.expect("eof")
    return expr
