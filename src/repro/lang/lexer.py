"""Lexer for the object language.

Produces a flat token stream with source positions.  Layout is minimal and
Haskell-like: top-level items (``import`` clauses and definitions) start in
column 1, continuation lines are indented.  The parser uses the column
recorded on each token to delimit definitions, so the lexer does not need
to synthesise layout tokens.

Comments run from ``--`` to end of line.
"""

from dataclasses import dataclass

from repro.lang.errors import LexError

KEYWORDS = {
    "module",
    "where",
    "import",
    "if",
    "then",
    "else",
    "let",
    "in",
    "true",
    "false",
    "nil",
}

# Multi-character operators must be listed before their prefixes.
OPERATORS = [
    "->",
    "==",
    "<=",
    "||",
    "&&",
    "=",
    "<",
    "+",
    "-",
    "*",
    ":",
    "@",
    "\\",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
]


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``'ident'``, ``'conid'`` (capitalised identifier,
    used for module names), ``'nat'``, ``'kw'``, ``'op'``, or ``'eof'``;
    ``value`` is the lexeme (an ``int`` for naturals).
    """

    kind: str
    value: object
    line: int
    column: int

    def describe(self):
        if self.kind == "eof":
            return "end of input"
        return repr(str(self.value))


def tokenize(source):
    """Tokenise ``source`` into a list of :class:`Token` ending with EOF."""
    tokens = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            start_col = col
            while i < n and source[i].isdigit():
                i += 1
                col += 1
            tokens.append(Token("nat", int(source[start:i]), line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] in "_'"):
                i += 1
                col += 1
            word = source[start:i]
            if word in KEYWORDS:
                tokens.append(Token("kw", word, line, start_col))
            elif word[0].isupper():
                tokens.append(Token("conid", word, line, start_col))
            else:
                tokens.append(Token("ident", word, line, start_col))
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError("unexpected character %r" % ch, line, col)
    tokens.append(Token("eof", None, line, col))
    return tokens
