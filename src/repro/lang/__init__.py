"""The object language of the paper (Fig. 1).

A program is an acyclic collection of modules; each module defines named
functions (applied fully saturated and specialised polyvariantly) and may
use first-class anonymous functions (``\\x -> e``, applied with ``@`` and
only ever unfolded).  The language is polymorphically typed.

Public surface:

* :mod:`repro.lang.ast` — abstract syntax.
* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` — concrete syntax.
* :mod:`repro.lang.pretty` — pretty printer (inverse of the parser).
* :mod:`repro.lang.names` — free variables / called functions / renaming.
* :mod:`repro.lang.validate` — well-formedness checks (saturated calls,
  unique names, defined variables).
"""

from repro.lang.ast import (
    App,
    Call,
    Def,
    Expr,
    If,
    Lam,
    Lit,
    Module,
    Prim,
    Program,
    Var,
)
from repro.lang.errors import LangError, LexError, ParseError, ValidationError
from repro.lang.parser import parse_expr, parse_module, parse_program
from repro.lang.pretty import pretty_expr, pretty_module, pretty_program

__all__ = [
    "App",
    "Call",
    "Def",
    "Expr",
    "If",
    "Lam",
    "LangError",
    "LexError",
    "Lit",
    "Module",
    "ParseError",
    "Prim",
    "Program",
    "ValidationError",
    "Var",
    "parse_expr",
    "parse_module",
    "parse_program",
    "pretty_expr",
    "pretty_module",
    "pretty_program",
]
