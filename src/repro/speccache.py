"""The persistent residual cache: specialisation results on disk.

PR 1 made *builds* content-addressed; this module does the same for the
specialisation layer.  The paper's economics (Sec. 8, via LL94) are
that analysis and cogen happen once while specialisation is the cheap,
repeated step — but "cheap" still means running the whole generating-
extension pump and assembling a residual program.  Serving many users
means serving *repeated* requests, and a repeated request should cost a
key computation and one read.

Key anatomy
-----------

:func:`residual_cache_key` is a SHA-256 over, in order:

* a salt and :data:`SPECCACHE_VERSION` (plus the build pipeline's
  :data:`~repro.bt.interface.CACHE_EPOCH`, so an analysis/cogen change
  flushes residual programs too);
* the linked program's **fingerprint** — the generating-extension
  module sources and the link topology
  (:meth:`~repro.genext.link.GenextProgram.fingerprint`);
* the **goal** function name;
* the **canonicalised static arguments** (JSON, sorted keys, tuples as
  lists — bools and naturals stay distinct);
* the semantically relevant :class:`~repro.api.SpecOptions` fields:
  ``strategy``, ``monolithic``, and ``max_versions`` (they change what
  the run produces — or whether it fails);  ``fuel``/``timeout``/
  ``sink``/``cache_dir`` do not enter the key (they change how the run
  is executed or consumed, never its result).

Editing one module's source, relinking in a different topology, or
changing any keyed option therefore forces a miss; everything else is a
warm hit that returns the residual program (and the original run's
stats) without constructing a :class:`~repro.genext.runtime.SpecState`
at all.

Storage
-------

Payloads are canonical JSON (:data:`SPECCACHE_SCHEMA`) holding the
pretty-printed residual program — the pretty-printer/parser round-trip
is exact, so a decoded result is byte-identical to a cold run's — and
live in the same atomic-write content-addressed object store as the
build artifacts (:class:`~repro.pipeline.cache.ArtifactCache`, kind
``resid.json``): concurrent writers can race safely, readers never see
torn files, ``mspec fsck`` validates and quarantines, and the store may
be shared between processes — which is what gives the batch driver its
cross-process dedup.

Counters (``speccache.hits`` / ``misses`` / ``reads`` / ``writes``) land
in the attached :class:`~repro.obs.metrics.MetricsRegistry`; each probe
also emits a ``speccache.hit`` / ``speccache.miss`` event on the bus.
"""

import hashlib
import json
import threading
from collections import OrderedDict

from repro.bt.interface import CACHE_EPOCH
from repro.lang.errors import LangError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.modsys.program import link_program
from repro.pipeline.cache import RESID_KIND, ArtifactCache

__all__ = [
    "SPECCACHE_SCHEMA",
    "SpecCache",
    "canonical_static_args",
    "clear_decode_memo",
    "decode_result",
    "encode_result",
    "residual_cache_key",
    "validate_payload_bytes",
]

SPECCACHE_SCHEMA = "repro.speccache/v1"
SPECCACHE_VERSION = 1

_KEY_SALT = b"mspec-residual-key\x00"


def _canon_value(v):
    """A JSON-encodable canonical form of one static-argument value."""
    if isinstance(v, bool) or isinstance(v, int) or isinstance(v, str):
        # str covers the ("pair", a, b) tag tuples from_python accepts.
        return v
    if isinstance(v, (tuple, list)):
        return [_canon_value(x) for x in v]
    raise TypeError("cannot canonicalise static value %r" % (v,))


def canonical_static_args(static_args):
    """Deterministic text encoding of a static-argument mapping.

    JSON keeps booleans and integers distinct, lists and tuples
    collapse (the object language has only one list), and key order is
    canonicalised — so two requests meaning the same thing always key
    the same."""
    canon = {name: _canon_value(v) for name, v in (static_args or {}).items()}
    return json.dumps(canon, sort_keys=True, separators=(",", ":"))


def residual_cache_key(fingerprint, goal, static_args, options):
    """The content-addressed key of one specialisation request."""
    h = hashlib.sha256()
    h.update(_KEY_SALT)
    h.update(
        b"v=%d epoch=%d\x00" % (SPECCACHE_VERSION, CACHE_EPOCH)
    )
    h.update(fingerprint.encode("utf-8"))
    h.update(b"\x00goal=")
    h.update(goal.encode("utf-8"))
    h.update(b"\x00static=")
    h.update(canonical_static_args(static_args).encode("utf-8"))
    h.update(
        b"\x00opts=strategy:%s;monolithic:%d;max_versions:%s"
        % (
            options.strategy.encode("utf-8"),
            1 if options.monolithic else 0,
            b"none"
            if options.max_versions is None
            else b"%d" % options.max_versions,
        )
    )
    # Analysis strategies change the residual program (unfolding) or at
    # least the compiled artefacts (division), so they key the cache.
    # Appended conditionally so every pre-existing key stays valid.
    if options.division != "mono" or options.unfolding != "lub":
        h.update(
            b"\x00analysis=division:%s;unfolding:%s;max_bt_versions:%d"
            % (
                options.division.encode("utf-8"),
                options.unfolding.encode("utf-8"),
                options.max_bt_versions,
            )
        )
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Payload encode/decode.
# ---------------------------------------------------------------------------


def encode_result(result):
    """The JSON-ready payload of a :class:`SpecialisationResult`."""
    return {
        "schema": SPECCACHE_SCHEMA,
        "entry": result.entry,
        "dynamic_params": list(result.dynamic_params),
        "stats": dict(result.stats),
        "module_names": sorted(
            [sorted(placement), name]
            for placement, name in result.module_names.items()
        ),
        "program": pretty_program(result.program),
    }


# Decoding a payload parses and re-links the pretty-printed residual —
# cheap next to a specialisation run, but the daemon's warm path and
# the batch driver's dedup decode the *same* payload over and over.
# The parse/link pair is therefore memoised per process, keyed by the
# program text's digest, in a bounded LRU; the AST and the linked view
# are immutable after construction, so sharing them across results is
# safe (one SpecialisationResult already serves every dedup index in
# the batch driver).  Hits/misses land in the caller's registry as
# ``speccache.decode_hits`` / ``speccache.decode_misses``.
_DECODE_CAPACITY = 256
_DECODE_MEMO = OrderedDict()  # sha256(program) -> (program, linked)
_DECODE_LOCK = threading.Lock()


def clear_decode_memo():
    """Drop every memoised parse (test isolation)."""
    with _DECODE_LOCK:
        _DECODE_MEMO.clear()


def _decode_program(text):
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    with _DECODE_LOCK:
        hit = _DECODE_MEMO.get(digest)
        if hit is not None:
            _DECODE_MEMO.move_to_end(digest)
    if hit is not None:
        return hit + (True,)
    program = parse_program(text)
    linked = link_program(program)
    with _DECODE_LOCK:
        _DECODE_MEMO[digest] = (program, linked)
        _DECODE_MEMO.move_to_end(digest)
        while len(_DECODE_MEMO) > _DECODE_CAPACITY:
            _DECODE_MEMO.popitem(last=False)
    return program, linked, False


def decode_result(payload, obs=None, fuel=None):
    """Rebuild a :class:`~repro.genext.engine.SpecialisationResult` from
    a payload: parse the pretty-printed residual program and re-link it
    (memoised per process — a repeated warm hit is one digest plus two
    dict probes).  ``fuel`` is the caller's interpretation budget — an
    execution knob, not part of the cached identity."""
    from repro.genext.engine import SpecialisationResult

    program, linked, hit = _decode_program(payload["program"])
    if obs is not None:
        obs.metrics.counter(
            "speccache.decode_hits" if hit else "speccache.decode_misses"
        ).inc()
    result = SpecialisationResult(
        program=program,
        linked=linked,
        entry=payload["entry"],
        dynamic_params=tuple(payload["dynamic_params"]),
        stats=dict(payload["stats"]),
        module_names={
            frozenset(parts): name
            for parts, name in payload["module_names"]
        },
        obs=obs,
    )
    if fuel is not None:
        result.fuel = fuel
    return result


def validate_payload_bytes(data):
    """``None`` if ``data`` is a well-formed cached residual payload,
    else the reason it is not (fsck's validator for ``resid.json``)."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        return "not JSON: %s" % exc
    if not isinstance(payload, dict):
        return "not an object"
    if payload.get("schema") != SPECCACHE_SCHEMA:
        return "schema must be %r, got %r" % (
            SPECCACHE_SCHEMA,
            payload.get("schema"),
        )
    for field, types in (
        ("entry", str),
        ("dynamic_params", list),
        ("stats", dict),
        ("module_names", list),
        ("program", str),
    ):
        if not isinstance(payload.get(field), types):
            return "missing or malformed %r field" % field
    try:
        parse_program(payload["program"])
    except LangError as exc:
        # A front-end rejection means a corrupt payload (= cache miss);
        # any other exception is a parser bug and must propagate.
        return "residual program does not parse: %s" % exc
    return None


# ---------------------------------------------------------------------------
# The cache itself.
# ---------------------------------------------------------------------------


class SpecCache:
    """Persistent residual-program cache rooted at ``root``.

    A thin policy layer over :class:`~repro.pipeline.cache.ArtifactCache`
    (same object layout, same atomic publication, same fsck), adding the
    key schema, payload validation, and the ``speccache.*`` accounting.
    """

    def __init__(self, root, metrics=None, bus=None):
        self.store = ArtifactCache(root)
        self.metrics = metrics
        self.bus = bus

    def _count(self, name, n=1):
        if self.metrics is not None:
            self.metrics.counter("speccache." + name).inc(n)

    def _event(self, name, **payload):
        if self.bus is not None:
            self.bus.emit(name, **payload)

    def key(self, fingerprint, goal, static_args, options):
        return residual_cache_key(fingerprint, goal, static_args, options)

    def get(self, key, goal=None):
        """The cached payload dict for ``key``, or ``None`` on a miss
        (absent, torn, or corrupt — a corrupt entry simply recomputes)."""
        data = self.store.get_bytes(key, RESID_KIND)
        if data is not None:
            self._count("reads")
            if validate_payload_bytes(data) is None:
                self._count("hits")
                self._event("speccache.hit", key=key, goal=goal)
                return json.loads(data.decode("utf-8"))
        self._count("misses")
        self._event("speccache.miss", key=key, goal=goal)
        return None

    def put(self, key, payload):
        """Atomically publish one payload; returns its path."""
        self._count("writes")
        data = json.dumps(payload, indent=1, sort_keys=True) + "\n"
        return self.store.put_text(key, RESID_KIND, data)
