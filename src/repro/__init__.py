"""Module-sensitive program specialisation.

A reproduction of Dussart, Heldal & Hughes, *Module-Sensitive Program
Specialisation* (PLDI 1997): an offline partial evaluator for a small
polymorphic higher-order functional language with modules, built around
a compiler generator (cogen) that turns each module — independently of
all others — into a *generating extension*.  Linked generating
extensions specialise programs without ever interpreting source code,
and the residual program is broken into modules derived from the source
module structure.

High-level API
--------------

>>> import repro
>>> gp = repro.compile_genexts('''
... module Power where
...
... power n x = if n == 1 then x else x * power (n - 1) x
... ''')
>>> result = repro.specialise(gp, 'power', {'n': 3})
>>> result.run(2)
8

See :mod:`repro.lang` (the object language), :mod:`repro.bt` (the
polymorphic binding-time analysis), :mod:`repro.anno` (annotated
programs), :mod:`repro.genext` (cogen, runtime, linker, engine),
:mod:`repro.residual` (residual module structure),
:mod:`repro.specialiser` (the interpretive baseline ``mix``), and
:mod:`repro.interp` (the object-language interpreter).
"""

from repro.api import BuildOptions, LegacyOptionsWarning, SpecOptions
from repro.bt.analysis import analyse_program
from repro.genext.batch import BatchResult, specialise_many
from repro.genext.cogen import cogen_program
from repro.genext.engine import SpecialisationResult, specialise
from repro.genext.link import link_genexts, load_genext_dir, write_genexts
from repro.interp import run_main, run_program
from repro.lang.pretty import pretty_module, pretty_program
from repro.modsys.program import LinkedProgram, load_program, load_program_dir
from repro.obs import Obs
from repro.pipeline import BuildEngine, build_dir

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "BuildEngine",
    "BuildOptions",
    "LegacyOptionsWarning",
    "LinkedProgram",
    "Obs",
    "SpecOptions",
    "SpecialisationResult",
    "analyse_program",
    "build_dir",
    "cogen_program",
    "compile_genexts",
    "link_genexts",
    "load_genext_dir",
    "load_program",
    "load_program_dir",
    "pretty_module",
    "pretty_program",
    "run_main",
    "run_program",
    "specialise",
    "specialise_many",
    "write_genexts",
]


def compile_genexts(source, options=None, **legacy):
    """Front-to-back convenience: parse, analyse, cogen, and link.

    ``source`` is either program text or an already linked
    :class:`~repro.modsys.program.LinkedProgram`.  ``options`` is a
    :class:`repro.api.SpecOptions`; its ``force_residual`` set names
    definitions to annotate non-unfoldable (the paper hand-annotates its
    Sec. 5 examples this way).  The legacy ``force_residual=...``
    keyword still works, with a deprecation warning.  Returns a linked
    :class:`~repro.genext.link.GenextProgram` ready for
    :func:`specialise`.
    """
    from repro.api import spec_options

    options = spec_options("compile_genexts", options, legacy)
    linked = source if isinstance(source, LinkedProgram) else load_program(source)
    analysis = analyse_program(
        linked,
        force_residual=options.force_residual,
        division=options.division,
        unfolding=options.unfolding,
        max_bt_versions=options.max_bt_versions,
    )
    return link_genexts(cogen_program(analysis))
