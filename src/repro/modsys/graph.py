"""Module dependency graphs.

Used three ways:

* to order source modules for analysis (interface files must be written
  before they are read — Sec. 4.1);
* to drive the residual-module placement algorithm (Sec. 5), which must
  know whether one module is imported, directly or indirectly, into
  another;
* to check that the residual import graph stays acyclic.
"""

from repro.lang.errors import LangError


class CyclicImportError(LangError):
    """The import graph has a cycle (the paper forbids this)."""

    def __init__(self, cycle):
        self.cycle = tuple(cycle)
        super().__init__("cyclic module imports: %s" % " -> ".join(self.cycle))


class ModuleGraph:
    """A directed graph of module imports.

    Edges point from importer to imported module.  The graph is built
    once per program and queried many times, so reachability is cached.
    """

    def __init__(self, imports):
        """``imports`` maps each module name to an iterable of names it
        imports.  Every mentioned module must appear as a key."""
        self._imports = {name: tuple(deps) for name, deps in imports.items()}
        for name, deps in self._imports.items():
            for dep in deps:
                if dep not in self._imports:
                    raise LangError(
                        "module %s imports unknown module %s" % (name, dep)
                    )
        self._reach_cache = {}

    @classmethod
    def of_program(cls, program):
        return cls({m.name: m.imports for m in program.modules})

    def modules(self):
        return tuple(self._imports)

    def imports_of(self, name):
        """Direct imports of ``name``."""
        return self._imports[name]

    def topo_order(self):
        """Modules ordered so imports come before importers.

        Deterministic (stable in the insertion order of the input).
        Raises :class:`CyclicImportError` if the graph has a cycle.
        """
        state = {}  # name -> 'visiting' | 'done'
        order = []
        path = []

        def visit(name):
            mark = state.get(name)
            if mark == "done":
                return
            if mark == "visiting":
                start = path.index(name)
                raise CyclicImportError(path[start:] + [name])
            state[name] = "visiting"
            path.append(name)
            for dep in self._imports[name]:
                visit(dep)
            path.pop()
            state[name] = "done"
            order.append(name)

        for name in self._imports:
            visit(name)
        return tuple(order)

    def check_acyclic(self):
        """Raise :class:`CyclicImportError` if the graph has a cycle."""
        self.topo_order()

    def waves(self):
        """Partition the modules into *waves* (antichains of the import
        DAG): wave ``k`` holds every module all of whose imports lie in
        waves ``< k``.  No module in a wave imports (directly or
        transitively) another module of the same wave, so all modules of
        one wave can be analysed in parallel once the previous waves'
        interfaces exist — the schedule behind the parallel build
        pipeline.

        Returns a tuple of tuples.  Concatenating the waves yields a
        valid topological order; within a wave, modules keep the
        insertion order of the input (deterministic).  Raises
        :class:`CyclicImportError` on a cyclic graph.
        """
        self.check_acyclic()
        depth = {}  # name -> wave index

        def wave_of(name):
            cached = depth.get(name)
            if cached is not None:
                return cached
            deps = self._imports[name]
            d = 1 + max((wave_of(dep) for dep in deps), default=-1)
            depth[name] = d
            return d

        waves = {}
        for name in self._imports:
            waves.setdefault(wave_of(name), []).append(name)
        return tuple(tuple(waves[k]) for k in sorted(waves))

    def reachable_from(self, name):
        """All modules imported, directly or transitively, by ``name``
        (excluding ``name`` itself unless it lies on a cycle)."""
        cached = self._reach_cache.get(name)
        if cached is not None:
            return cached
        seen = set()
        stack = list(self._imports[name])
        while stack:
            m = stack.pop()
            if m in seen:
                continue
            seen.add(m)
            stack.extend(self._imports[m])
        result = frozenset(seen)
        self._reach_cache[name] = result
        return result

    def imports_transitively(self, importer, imported):
        """True if ``imported`` is reachable from ``importer``."""
        return imported in self.reachable_from(importer)

    def reduce_by_dominance(self, names):
        """Drop every module that is transitively imported by another
        member of ``names`` (Sec. 5: "remove any which are imported into
        others").  Returns a frozenset."""
        names = set(names)
        kept = set()
        for name in names:
            if any(
                other != name and self.imports_transitively(other, name)
                for other in names
            ):
                continue
            kept.add(name)
        return frozenset(kept)
