"""Program loading: parse, check the module structure, resolve names.

A :class:`LinkedProgram` bundles a resolved program with its module graph,
topological order, and global symbol table.  Every later stage — type
inference, binding-time analysis, cogen, specialisation — starts from one
of these.
"""

import os
from dataclasses import dataclass
from typing import Tuple

from repro.lang.ast import Module, Program
from repro.lang.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.validate import resolve_module
from repro.modsys.graph import ModuleGraph
from repro.modsys.symbols import SymbolTable

SOURCE_SUFFIX = ".mod"


@dataclass(frozen=True)
class LinkedProgram:
    """A validated, name-resolved program with its derived structures."""

    program: Program
    graph: ModuleGraph
    symbols: SymbolTable
    topo_order: Tuple[str, ...]

    def module(self, name):
        return self.program.module(name)

    def find_def(self, name):
        """Locate the definition of function ``name`` anywhere in the
        program; returns ``(module, def)``."""
        symbol = self.symbols.lookup(name)
        module = self.program.module(symbol.module)
        d = module.find(name)
        assert d is not None
        return module, d


def link_program(program):
    """Validate and resolve a parsed :class:`Program`.

    Checks module-name uniqueness, import acyclicity, and global
    function-name uniqueness, then resolves each module (in topological
    order) against the arities of the functions it imports.
    """
    names = [m.name for m in program.modules]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ValidationError("duplicate module name(s): %s" % ", ".join(sorted(dupes)))
    functors = [m.name for m in program.modules if m.is_functor]
    if functors:
        raise ValidationError(
            "parameterised module(s) cannot be linked directly: %s "
            "(instantiate them with repro.functor first)"
            % ", ".join(sorted(functors))
        )
    graph = ModuleGraph.of_program(program)
    topo = graph.topo_order()
    symbols = SymbolTable.of_program(program)
    by_name = {m.name: m for m in program.modules}
    resolved = {}
    for module_name in topo:
        module = by_name[module_name]
        imported = {}
        for dep in module.imports:
            for d in resolved[dep].defs:
                imported[d.name] = d.arity
        resolved[module_name] = resolve_module(module, imported)
    new_program = Program(tuple(resolved[m.name] for m in program.modules))
    return LinkedProgram(new_program, graph, symbols, topo)


def load_program(source):
    """Parse and link a whole program from one source string."""
    return link_program(parse_program(source))


def load_program_dir(path):
    """Load a program from a directory of ``*.mod`` files.

    Each file holds one module; the file name (sans suffix) must match
    the module name, mirroring how a compiler locates modules on disk.
    """
    modules = []
    for entry in sorted(os.listdir(path)):
        if not entry.endswith(SOURCE_SUFFIX):
            continue
        with open(os.path.join(path, entry)) as f:
            text = f.read()
        parsed = parse_program(text)
        if len(parsed.modules) != 1:
            raise ValidationError("%s: expected exactly one module per file" % entry)
        module = parsed.modules[0]
        expected = entry[: -len(SOURCE_SUFFIX)]
        if module.name != expected:
            raise ValidationError(
                "%s: file defines module %s (file name must match)"
                % (entry, module.name)
            )
        modules.append(module)
    return link_program(Program(tuple(modules)))


def relink_with(linked, new_modules):
    """Return a new :class:`LinkedProgram` with some modules replaced or
    added.  ``new_modules`` is an iterable of :class:`Module`; modules with
    matching names are replaced, others appended (imports must stay
    acyclic).  Used by tests and the incremental driver."""
    by_name = {m.name: m for m in linked.program.modules}
    order = list(by_name)
    for module in new_modules:
        if module.name not in by_name:
            order.append(module.name)
        by_name[module.name] = module
    return link_program(Program(tuple(by_name[n] for n in order)))
