"""The module system.

The paper assumes modules export all their definitions and that the import
graph is acyclic (interface files must be writable before they are read).
This package provides the dependency graph, topological ordering, the
global symbol table, and the program loader that validates and resolves a
whole multi-module program.
"""

from repro.modsys.graph import CyclicImportError, ModuleGraph
from repro.modsys.program import LinkedProgram, load_program, load_program_dir
from repro.modsys.symbols import Symbol, SymbolTable

__all__ = [
    "CyclicImportError",
    "LinkedProgram",
    "ModuleGraph",
    "Symbol",
    "SymbolTable",
    "load_program",
    "load_program_dir",
]
