"""The global symbol table.

Top-level function names are required to be unique program-wide (the
paper's modules export everything and its examples never shadow across
modules).  The symbol table maps each name to its defining module and
arity; the specialisation runtime consults it when placing residual
functions in combination modules.
"""

from dataclasses import dataclass

from repro.lang.errors import ValidationError


@dataclass(frozen=True)
class Symbol:
    """One top-level function: its name, defining module, and arity."""

    name: str
    module: str
    arity: int

    @property
    def qualified(self):
        return "%s.%s" % (self.module, self.name)


class SymbolTable:
    """Immutable-after-build map from function name to :class:`Symbol`."""

    def __init__(self):
        self._by_name = {}

    @classmethod
    def of_program(cls, program):
        table = cls()
        for module, d in program.all_defs():
            table.add(Symbol(d.name, module.name, d.arity))
        return table

    def add(self, symbol):
        existing = self._by_name.get(symbol.name)
        if existing is not None:
            raise ValidationError(
                "function %r defined in both module %s and module %s "
                "(top-level names must be unique program-wide)"
                % (symbol.name, existing.module, symbol.module)
            )
        self._by_name[symbol.name] = symbol

    def lookup(self, name):
        """Return the :class:`Symbol` for ``name`` or raise ``KeyError``."""
        return self._by_name[name]

    def get(self, name):
        return self._by_name.get(name)

    def module_of(self, name):
        return self._by_name[name].module

    def arity_of(self, name):
        return self._by_name[name].arity

    def names(self):
        return tuple(self._by_name)

    def __contains__(self, name):
        return name in self._by_name

    def __len__(self):
        return len(self._by_name)
