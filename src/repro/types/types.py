"""The type language: Nat, Bool, lists, pairs, functions, variables.

Types are immutable and hashable.  Type variables are identified by
integers from a supply; :class:`Scheme` closes over a tuple of quantified
variable ids.
"""

from dataclasses import dataclass
from typing import Tuple


class Type:
    """Base class of monotypes."""

    __slots__ = ()


@dataclass(frozen=True)
class TCon(Type):
    """A nullary type constructor: ``Nat`` or ``Bool``."""

    name: str


@dataclass(frozen=True)
class TVar(Type):
    """A type variable, identified by an integer id."""

    id: int


@dataclass(frozen=True)
class TList(Type):
    """``[t]``."""

    elem: Type


@dataclass(frozen=True)
class TPair(Type):
    """``(t, u)`` built by the ``pair`` primitive."""

    fst: Type
    snd: Type


@dataclass(frozen=True)
class TFun(Type):
    """``t -> u`` — the type of anonymous functions."""

    arg: Type
    res: Type


NAT = TCon("Nat")
BOOL = TCon("Bool")


@dataclass(frozen=True)
class Scheme:
    """A type scheme ``forall vars. type`` (vars are TVar ids)."""

    vars: Tuple[int, ...]
    type: Type


def type_children(t):
    if isinstance(t, (TCon, TVar)):
        return ()
    if isinstance(t, TList):
        return (t.elem,)
    if isinstance(t, TPair):
        return (t.fst, t.snd)
    if isinstance(t, TFun):
        return (t.arg, t.res)
    raise TypeError("not a type: %r" % (t,))


def free_type_vars(t):
    """The set of TVar ids occurring in ``t``."""
    out = set()
    stack = [t]
    while stack:
        x = stack.pop()
        if isinstance(x, TVar):
            out.add(x.id)
        else:
            stack.extend(type_children(x))
    return out


def substitute(t, mapping):
    """Replace TVars by types according to ``mapping`` (id -> Type)."""
    if isinstance(t, TCon):
        return t
    if isinstance(t, TVar):
        return mapping.get(t.id, t)
    if isinstance(t, TList):
        return TList(substitute(t.elem, mapping))
    if isinstance(t, TPair):
        return TPair(substitute(t.fst, mapping), substitute(t.snd, mapping))
    if isinstance(t, TFun):
        return TFun(substitute(t.arg, mapping), substitute(t.res, mapping))
    raise TypeError("not a type: %r" % (t,))


_VAR_NAMES = "abcdefghijklmnopqrstuvwxyz"


def _var_name(index):
    name = _VAR_NAMES[index % 26]
    if index >= 26:
        name += str(index // 26)
    return name


def type_to_str(t, names=None):
    """Render a type with letters for variables, Haskell-style."""
    if names is None:
        names = {}
        for vid in sorted(free_type_vars(t)):
            names[vid] = _var_name(len(names))

    def go(t, parens_fun):
        if isinstance(t, TCon):
            return t.name
        if isinstance(t, TVar):
            return names.get(t.id, "t%d" % t.id)
        if isinstance(t, TList):
            return "[%s]" % go(t.elem, False)
        if isinstance(t, TPair):
            return "(%s, %s)" % (go(t.fst, False), go(t.snd, False))
        if isinstance(t, TFun):
            body = "%s -> %s" % (go(t.arg, True), go(t.res, False))
            return "(%s)" % body if parens_fun else body
        raise TypeError("not a type: %r" % (t,))

    return go(t, False)


def scheme_to_str(s):
    names = {}
    for vid in s.vars:
        names[vid] = _var_name(len(names))
    for vid in sorted(free_type_vars(s.type) - set(s.vars)):
        names[vid] = "t%d" % vid
    body = type_to_str(s.type, names)
    if not s.vars:
        return body
    return "forall %s. %s" % (" ".join(names[v] for v in s.vars), body)
