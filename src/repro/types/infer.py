"""Type inference for whole programs (Algorithm W, module by module).

Named functions are uncurried — a definition of arity *n* gets a
:class:`FunScheme` over *n* argument types and a result type; saturation
is already enforced syntactically, so no first-class uncurried function
type is needed.  Anonymous functions have ordinary ``TFun`` types.

Inference runs over modules in topological order.  Within a module,
definitions are grouped into strongly connected components of the
intra-module call graph: recursion inside a group is monomorphic,
earlier groups and imported functions are used polymorphically
(let-polymorphism at module top level, exactly what the paper's ``map``
library example needs).
"""

from dataclasses import dataclass
from typing import Tuple

from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var
from repro.lang.names import def_called_functions
from repro.types.types import (
    BOOL,
    NAT,
    TFun,
    TList,
    TPair,
    TVar,
    Type,
    free_type_vars,
    substitute,
    type_to_str,
)
from repro.types.unify import Unifier, UnifyError


class TypeError_(Exception):
    """A type error in an object-language program."""


@dataclass(frozen=True)
class FunType:
    """The uncurried type of a named function."""

    args: Tuple[Type, ...]
    res: Type


@dataclass(frozen=True)
class FunScheme:
    """A generalised :class:`FunType`: ``forall vars. args -> res``."""

    vars: Tuple[int, ...]
    fun: FunType

    def __str__(self):
        curried = self.fun.res
        for a in reversed(self.fun.args):
            curried = TFun(a, curried)
        return type_to_str(curried)


# Primitive signatures.  Scheme-bound variables use small ids local to the
# scheme; instantiation replaces them with fresh unifier variables.
_A, _B = TVar(-1), TVar(-2)
_PRIM_SCHEMES = {
    "+": FunScheme((), FunType((NAT, NAT), NAT)),
    "-": FunScheme((), FunType((NAT, NAT), NAT)),
    "*": FunScheme((), FunType((NAT, NAT), NAT)),
    "div": FunScheme((), FunType((NAT, NAT), NAT)),
    "mod": FunScheme((), FunType((NAT, NAT), NAT)),
    "==": FunScheme((), FunType((NAT, NAT), BOOL)),
    "<": FunScheme((), FunType((NAT, NAT), BOOL)),
    "<=": FunScheme((), FunType((NAT, NAT), BOOL)),
    "and": FunScheme((), FunType((BOOL, BOOL), BOOL)),
    "or": FunScheme((), FunType((BOOL, BOOL), BOOL)),
    "not": FunScheme((), FunType((BOOL,), BOOL)),
    "cons": FunScheme((-1,), FunType((_A, TList(_A)), TList(_A))),
    "head": FunScheme((-1,), FunType((TList(_A),), _A)),
    "tail": FunScheme((-1,), FunType((TList(_A),), TList(_A))),
    "null": FunScheme((-1,), FunType((TList(_A),), BOOL)),
    "pair": FunScheme((-1, -2), FunType((_A, _B), TPair(_A, _B))),
    "fst": FunScheme((-1, -2), FunType((TPair(_A, _B),), _A)),
    "snd": FunScheme((-1, -2), FunType((TPair(_A, _B),), _B)),
}


def prim_scheme(op):
    """The :class:`FunScheme` of primitive ``op``."""
    return _PRIM_SCHEMES[op]


class TypeEnv:
    """Function name -> :class:`FunScheme` for a whole program."""

    def __init__(self):
        self._schemes = {}

    def add(self, name, scheme):
        self._schemes[name] = scheme

    def lookup(self, name):
        return self._schemes[name]

    def __contains__(self, name):
        return name in self._schemes

    def names(self):
        return tuple(self._schemes)


def _sccs(nodes, edges):
    """Tarjan's algorithm; returns SCCs in reverse topological order
    (callees before callers)."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    counter = [0]
    out = []

    def strongconnect(v):
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in edges(v):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            out.append(tuple(comp))

    for v in nodes:
        if v not in index:
            strongconnect(v)
    return out


def module_def_sccs(module):
    """SCCs of the intra-module call graph, callees first."""
    own = set(module.def_names())
    calls = {
        d.name: sorted(def_called_functions(d) & own) for d in module.defs
    }
    return _sccs(list(module.def_names()), lambda v: calls[v])


class _Inferencer:
    def __init__(self, env):
        self.env = env
        self.unifier = Unifier()

    def instantiate(self, scheme):
        mapping = {vid: self.unifier.fresh() for vid in scheme.vars}
        return FunType(
            tuple(substitute(a, mapping) for a in scheme.fun.args),
            substitute(scheme.fun.res, mapping),
        )

    def infer_expr(self, expr, locals_):
        u = self.unifier
        if isinstance(expr, Lit):
            if isinstance(expr.value, bool):
                return BOOL
            if expr.value == ():
                return TList(u.fresh())
            return NAT
        if isinstance(expr, Var):
            try:
                return locals_[expr.name]
            except KeyError:
                raise TypeError_("unbound variable %r" % expr.name)
        if isinstance(expr, Prim):
            fun = self.instantiate(prim_scheme(expr.op))
            return self._apply(expr.op, fun, expr.args, locals_)
        if isinstance(expr, If):
            cond = self.infer_expr(expr.cond, locals_)
            self._unify(cond, BOOL, "condition of 'if'")
            t1 = self.infer_expr(expr.then_branch, locals_)
            t2 = self.infer_expr(expr.else_branch, locals_)
            self._unify(t1, t2, "branches of 'if'")
            return t1
        if isinstance(expr, Call):
            if expr.func not in self.env:
                raise TypeError_("call of unknown function %r" % expr.func)
            fun = self.instantiate(self.env.lookup(expr.func))
            return self._apply(expr.func, fun, expr.args, locals_)
        if isinstance(expr, Lam):
            arg = u.fresh()
            inner = dict(locals_)
            inner[expr.var] = arg
            res = self.infer_expr(expr.body, inner)
            return TFun(arg, res)
        if isinstance(expr, App):
            fun = self.infer_expr(expr.fun, locals_)
            arg = self.infer_expr(expr.arg, locals_)
            res = u.fresh()
            self._unify(fun, TFun(arg, res), "'@' application")
            return res
        raise TypeError("not an expression: %r" % (expr,))

    def _apply(self, name, fun, args, locals_):
        if len(fun.args) != len(args):
            raise TypeError_(
                "%r expects %d arguments, got %d" % (name, len(fun.args), len(args))
            )
        for i, (formal, actual) in enumerate(zip(fun.args, args)):
            t = self.infer_expr(actual, locals_)
            self._unify(t, formal, "argument %d of %r" % (i + 1, name))
        return fun.res

    def _unify(self, a, b, where):
        try:
            self.unifier.unify(a, b)
        except UnifyError as e:
            raise TypeError_(
                "%s: %s (while checking %s vs %s)"
                % (where, e, type_to_str(self.unifier.deep(a)),
                   type_to_str(self.unifier.deep(b)))
            )


def infer_program(linked):
    """Infer a :class:`TypeEnv` for every function in ``linked``.

    Raises :class:`TypeError_` on ill-typed programs.
    """
    env = TypeEnv()
    for module_name in linked.topo_order:
        module = linked.module(module_name)
        by_name = {d.name: d for d in module.defs}
        for group in module_def_sccs(module):
            inf = _Inferencer(env)
            # Assign fresh monotypes to the whole recursive group first.
            montypes = {}
            for fname in group:
                d = by_name[fname]
                montypes[fname] = FunType(
                    tuple(inf.unifier.fresh() for _ in d.params),
                    inf.unifier.fresh(),
                )
                env.add(fname, FunScheme((), montypes[fname]))
            for fname in group:
                d = by_name[fname]
                fun = montypes[fname]
                locals_ = dict(zip(d.params, fun.args))
                try:
                    res = inf.infer_expr(d.body, locals_)
                except TypeError_ as e:
                    raise TypeError_(
                        "in %s.%s: %s" % (module_name, fname, e)
                    ) from None
                inf._unify(res, fun.res, "result of %r" % fname)
            # Generalise the group.
            for fname in group:
                fun = montypes[fname]
                deep = FunType(
                    tuple(inf.unifier.deep(a) for a in fun.args),
                    inf.unifier.deep(fun.res),
                )
                vars_ = set()
                for a in deep.args:
                    vars_ |= free_type_vars(a)
                vars_ |= free_type_vars(deep.res)
                env.add(fname, FunScheme(tuple(sorted(vars_)), deep))
    return env
