"""First-order unification with an in-place substitution.

A :class:`Unifier` owns a variable supply and a binding map with path
compression.  This is shared infrastructure: plain HM inference uses it
directly, and the binding-time analysis builds its annotated-skeleton
unifier on top of the same discipline.
"""

from repro.types.types import TCon, TFun, TList, TPair, TVar


class UnifyError(Exception):
    """Two types do not unify (mismatch or occurs-check failure)."""


class Unifier:
    """A variable supply plus a growing substitution."""

    def __init__(self):
        self._next = 0
        self._binding = {}  # var id -> Type

    def fresh(self):
        """A fresh type variable."""
        self._next += 1
        return TVar(self._next)

    def resolve(self, t):
        """Follow bindings at the root of ``t`` (one level, compressed)."""
        seen = []
        while isinstance(t, TVar) and t.id in self._binding:
            seen.append(t.id)
            t = self._binding[t.id]
        for vid in seen[:-1]:
            self._binding[vid] = t
        return t

    def shallow(self, t):
        return self.resolve(t)

    def deep(self, t):
        """Fully apply the substitution to ``t``."""
        t = self.resolve(t)
        if isinstance(t, (TCon, TVar)):
            return t
        if isinstance(t, TList):
            return TList(self.deep(t.elem))
        if isinstance(t, TPair):
            return TPair(self.deep(t.fst), self.deep(t.snd))
        if isinstance(t, TFun):
            return TFun(self.deep(t.arg), self.deep(t.res))
        raise TypeError("not a type: %r" % (t,))

    def _occurs(self, vid, t):
        t = self.resolve(t)
        if isinstance(t, TVar):
            return t.id == vid
        if isinstance(t, TCon):
            return False
        if isinstance(t, TList):
            return self._occurs(vid, t.elem)
        if isinstance(t, TPair):
            return self._occurs(vid, t.fst) or self._occurs(vid, t.snd)
        if isinstance(t, TFun):
            return self._occurs(vid, t.arg) or self._occurs(vid, t.res)
        raise TypeError("not a type: %r" % (t,))

    def unify(self, a, b):
        """Make ``a`` and ``b`` equal, extending the substitution.

        Raises :class:`UnifyError` on constructor mismatch or an occurs
        violation (infinite type).
        """
        a = self.resolve(a)
        b = self.resolve(b)
        if isinstance(a, TVar) and isinstance(b, TVar) and a.id == b.id:
            return
        if isinstance(a, TVar):
            if self._occurs(a.id, b):
                raise UnifyError("occurs check: t%d in %r" % (a.id, b))
            self._binding[a.id] = b
            return
        if isinstance(b, TVar):
            self.unify(b, a)
            return
        if isinstance(a, TCon) and isinstance(b, TCon):
            if a.name != b.name:
                raise UnifyError("cannot unify %s with %s" % (a.name, b.name))
            return
        if isinstance(a, TList) and isinstance(b, TList):
            self.unify(a.elem, b.elem)
            return
        if isinstance(a, TPair) and isinstance(b, TPair):
            self.unify(a.fst, b.fst)
            self.unify(a.snd, b.snd)
            return
        if isinstance(a, TFun) and isinstance(b, TFun):
            self.unify(a.arg, b.arg)
            self.unify(a.res, b.res)
            return
        raise UnifyError("cannot unify %r with %r" % (a, b))
