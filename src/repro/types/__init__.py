"""Hindley–Milner types and inference for the object language.

The paper's language "is polymorphically typed, using the standard
Hindley–Milner type system"; its binding-time analysis is likewise
extended from simple types to HM types.  This package provides:

* the type language (:mod:`repro.types.types`),
* unification (:mod:`repro.types.unify`),
* Algorithm-W style inference over whole programs, module by module,
  with let-polymorphism at top-level definitions
  (:mod:`repro.types.infer`).

Residual programs are type checked with the same inference — the
"compile" step of the modular-residual-programs experiment.
"""

from repro.types.infer import TypeEnv, TypeError_, infer_program, prim_scheme
from repro.types.types import (
    BOOL,
    NAT,
    Scheme,
    TCon,
    TFun,
    TList,
    TPair,
    TVar,
    Type,
    free_type_vars,
    type_to_str,
)
from repro.types.unify import UnifyError, Unifier

__all__ = [
    "BOOL",
    "NAT",
    "Scheme",
    "TCon",
    "TFun",
    "TList",
    "TPair",
    "TVar",
    "Type",
    "TypeEnv",
    "TypeError_",
    "UnifyError",
    "Unifier",
    "free_type_vars",
    "infer_program",
    "prim_scheme",
    "type_to_str",
]
