"""Well-annotatedness checking for annotated programs.

The binding-time analysis *infers* annotations; this module *verifies*
them, playing the role of the type system of Henglein & Mossin / Dussart
et al. that "verifies that programs are well annotated".  The test suite
uses it as an oracle: every program the analysis produces must check, and
hand-broken annotations must not.

Checked properties, per definition:

* every expression's computed binding-time type matches its use;
* coercions only raise binding times (pointwise ``S <= D`` on matching
  shapes; function components invariant);
* primitives and conditionals are performed at the lub of their operands
  (operands are coerced *to* the operation's binding time);
* well-formedness: nothing static lives inside a dynamic value;
* the unfold/residualise annotation dominates the binding time of every
  conditional in the body and flows into the result's top;
* calls agree with the callee's declared binding-time signature under
  the substitution of actual binding-time arguments.

Symbolic binding times are compared syntactically: ``a <= b`` iff ``b``
is ``D`` or ``a``'s parameter set is contained in ``b``'s.  This is exact
for the least-solution annotations the analysis produces.
"""

from repro.anno.ast import (
    AApp,
    ACall,
    ACoerce,
    AIf,
    ALam,
    ALit,
    APrim,
    AVar,
    walk_aexpr,
)
from repro.bt.bt import BT, S, substitute
from repro.bt.bttypes import (
    BTTBase,
    BTTFun,
    BTTList,
    BTTPair,
    BTTSkel,
    map_bts,
)
from repro.bt.scheme import btt_to_str

_ARITH = ("+", "-", "*", "div", "mod")
_CMP = ("==", "<", "<=")


class AnnotationError(Exception):
    """An annotated program violates the well-annotatedness discipline."""


class _Wild:
    """Matches any binding-time type (the type of ``nil``'s elements)."""

    def __repr__(self):
        return "?"


WILD = _Wild()


def bt_leq(a, b):
    """Syntactic ``a <= b`` on symbolic binding times."""
    if b.dyn:
        return True
    if a.dyn:
        return False
    return a.params <= b.params


def bt_eq(a, b):
    return a == b


def _rename_skels(t, rename, base):
    """Shift skeleton-variable ids into a fresh (negative) range."""
    if isinstance(t, BTTSkel):
        if t.id not in rename:
            rename[t.id] = base - len(rename)
        return BTTSkel(rename[t.id], t.bt)
    if isinstance(t, BTTBase):
        return t
    if isinstance(t, BTTList):
        return BTTList(t.bt, _rename_skels(t.elem, rename, base))
    if isinstance(t, BTTPair):
        return BTTPair(
            t.bt,
            _rename_skels(t.fst, rename, base),
            _rename_skels(t.snd, rename, base),
        )
    if isinstance(t, BTTFun):
        return BTTFun(
            t.bt,
            _rename_skels(t.arg, rename, base),
            _rename_skels(t.res, rename, base),
        )
    raise TypeError("not a binding-time type: %r" % (t,))


def _apply_bindings(t, bij):
    """Replace right-side skeletons pinned down during matching."""
    if isinstance(t, BTTSkel):
        bound = bij.get(("R", t.id))
        return t if bound is None else bound
    if isinstance(t, BTTBase):
        return t
    if isinstance(t, BTTList):
        return BTTList(t.bt, _apply_bindings(t.elem, bij))
    if isinstance(t, BTTPair):
        return BTTPair(
            t.bt, _apply_bindings(t.fst, bij), _apply_bindings(t.snd, bij)
        )
    if isinstance(t, BTTFun):
        return BTTFun(
            t.bt, _apply_bindings(t.arg, bij), _apply_bindings(t.res, bij)
        )
    raise TypeError("not a binding-time type: %r" % (t,))


class _Checker:
    def __init__(self, defs):
        self.defs = defs  # function name -> ADef
        self.where = ""
        self._skel_rename_base = 0

    def fail(self, message):
        raise AnnotationError("%s: %s" % (self.where, message))

    # -- matching ---------------------------------------------------------

    def match(self, a, b, bij):
        """Check ``a`` and ``b`` denote the same binding-time type;
        returns the more informative of the two.  ``bij`` accumulates the
        correspondence between skeleton variables (and their bindings to
        concrete structure when one side is polymorphic)."""
        if isinstance(a, _Wild):
            return b
        if isinstance(b, _Wild):
            return a
        if isinstance(a, BTTSkel) and isinstance(b, BTTSkel) and a.id == b.id:
            if not bt_eq(a.bt, b.bt):
                self.fail(
                    "binding-time mismatch on skeleton: %s vs %s" % (a.bt, b.bt)
                )
            return a
        if isinstance(b, BTTSkel):
            # The right side is the declared/callee type: its skeleton
            # variable instantiates consistently to whatever the left
            # side provides (skeleton ids are pre-renamed apart).
            if not bt_eq(a.bt, b.bt):
                self.fail(
                    "binding-time mismatch instantiating skeleton: %s vs %s"
                    % (a.bt, b.bt)
                )
            key = ("R", b.id)
            if key in bij:
                return self.match(a, bij[key], bij)
            bij[key] = a
            return a
        if isinstance(a, BTTSkel):
            if not bt_eq(a.bt, b.bt):
                self.fail(
                    "binding-time mismatch instantiating skeleton: %s vs %s"
                    % (a.bt, b.bt)
                )
            key = ("L", a.id)
            if key in bij:
                return self.match(bij[key], b, bij)
            bij[key] = b
            return b
        if type(a) is not type(b):
            self.fail(
                "shape mismatch: %s vs %s" % (btt_to_str(a), btt_to_str(b))
            )
        if not bt_eq(a.bt, b.bt):
            self.fail(
                "binding-time mismatch: %s vs %s"
                % (btt_to_str(a), btt_to_str(b))
            )
        if isinstance(a, BTTBase):
            if a.name != b.name:
                self.fail("base-type mismatch: %s vs %s" % (a.name, b.name))
            return a
        if isinstance(a, BTTList):
            return BTTList(a.bt, self.match(a.elem, b.elem, bij))
        if isinstance(a, BTTPair):
            return BTTPair(
                a.bt,
                self.match(a.fst, b.fst, bij),
                self.match(a.snd, b.snd, bij),
            )
        if isinstance(a, BTTFun):
            return BTTFun(
                a.bt,
                self.match(a.arg, b.arg, bij),
                self.match(a.res, b.res, bij),
            )
        self.fail("unhandled type %r" % (a,))

    def coercible(self, a, b):
        """Check the coercion ``a -> b`` only raises binding times."""
        if isinstance(a, _Wild) or isinstance(b, _Wild):
            return
        if isinstance(a, BTTSkel) and isinstance(b, BTTSkel):
            if not bt_eq(a.bt, b.bt):
                self.fail("skeleton coercion changes binding time")
            return
        if isinstance(a, BTTSkel) or isinstance(b, BTTSkel):
            # One side polymorphic: only the tops are comparable.
            if not bt_leq(a.bt, b.bt):
                self.fail("coercion lowers a binding time: %s -> %s" % (a.bt, b.bt))
            return
        if type(a) is not type(b):
            self.fail(
                "coercion changes shape: %s -> %s"
                % (btt_to_str(a), btt_to_str(b))
            )
        if not bt_leq(a.bt, b.bt):
            self.fail(
                "coercion lowers a binding time: %s -> %s"
                % (btt_to_str(a), btt_to_str(b))
            )
        if isinstance(a, BTTBase):
            if a.name != b.name:
                self.fail("coercion changes base type")
            return
        if isinstance(a, BTTList):
            self.coercible(a.elem, b.elem)
            return
        if isinstance(a, BTTPair):
            self.coercible(a.fst, b.fst)
            self.coercible(a.snd, b.snd)
            return
        if isinstance(a, BTTFun):
            # Function components are invariant under coercion.
            self.match(a.arg, b.arg, {})
            self.match(a.res, b.res, {})
            return
        self.fail("unhandled type %r" % (a,))

    def well_formed(self, t):
        """Nothing static inside a dynamic value."""
        if isinstance(t, (_Wild, BTTBase, BTTSkel)):
            return
        children = []
        if isinstance(t, BTTList):
            children = [t.elem]
        elif isinstance(t, BTTPair):
            children = [t.fst, t.snd]
        elif isinstance(t, BTTFun):
            children = [t.arg, t.res]
        for c in children:
            if not isinstance(c, _Wild) and not bt_leq(t.bt, c.bt):
                self.fail(
                    "ill-formed binding-time type: %s" % btt_to_str(t)
                )
            self.well_formed(c)

    def _top(self, t):
        return None if isinstance(t, _Wild) else t.bt

    # -- expression checking ------------------------------------------------

    def check_expr(self, e, env):
        if isinstance(e, ALit):
            if isinstance(e.value, bool):
                return BTTBase("Bool", S)
            if e.value == ():
                return BTTList(S, WILD)
            return BTTBase("Nat", S)
        if isinstance(e, AVar):
            if e.name not in env:
                self.fail("unbound variable %r" % e.name)
            return env[e.name]
        if isinstance(e, APrim):
            return self._check_prim(e, env)
        if isinstance(e, AIf):
            tc = self.check_expr(e.cond, env)
            self.match(tc, BTTBase("Bool", e.bt), {})
            t1 = self.check_expr(e.then_branch, env)
            t2 = self.check_expr(e.else_branch, env)
            t = self.match(t1, t2, {})
            top = self._top(t)
            if top is not None and not bt_leq(e.bt, top):
                self.fail("conditional result more static than its test")
            return t
        if isinstance(e, ACall):
            return self._check_call(e, env)
        if isinstance(e, ALam):
            t = e.type
            if not isinstance(t, BTTFun):
                self.fail("lambda annotated with non-function type")
            self.well_formed(t)
            inner = dict(env)
            inner[e.var] = t.arg
            tb = self.check_expr(e.body, inner)
            self.match(tb, t.res, {})
            return t
        if isinstance(e, AApp):
            tf = self.check_expr(e.fun, env)
            if isinstance(tf, _Wild):
                return WILD
            if isinstance(tf, BTTSkel):
                if not bt_eq(e.bt, tf.bt):
                    self.fail("'@' binding time differs from its function")
                self.check_expr(e.arg, env)
                return WILD
            if not isinstance(tf, BTTFun):
                self.fail("'@' applied to a non-function type")
            if not bt_eq(e.bt, tf.bt):
                self.fail(
                    "'@' annotated %s but function has binding time %s"
                    % (e.bt, tf.bt)
                )
            ta = self.check_expr(e.arg, env)
            self.match(ta, tf.arg, {})
            return tf.res
        if isinstance(e, ACoerce):
            t = self.check_expr(e.expr, env)
            self.match(t, e.src, {})
            self.coercible(e.src, e.dst)
            self.well_formed(e.dst)
            return e.dst
        raise TypeError("not an annotated expression: %r" % (e,))

    def _check_prim(self, e, env):
        op = e.op
        args = [self.check_expr(a, env) for a in e.args]
        if op in _ARITH or op in _CMP:
            for t in args:
                self.match(t, BTTBase("Nat", e.bt), {})
            return BTTBase("Bool" if op in _CMP else "Nat", e.bt)
        if op in ("and", "or", "not"):
            for t in args:
                self.match(t, BTTBase("Bool", e.bt), {})
            return BTTBase("Bool", e.bt)
        if op == "cons":
            t1, t2 = args
            if isinstance(t2, _Wild):
                return BTTList(e.bt, t1)
            if isinstance(t2, BTTSkel):
                # Opaque list (polymorphic callee result): only the top
                # is visible, and it must agree with the spine.
                if not bt_eq(t2.bt, e.bt):
                    self.fail("'cons' binding time differs from its list")
                return BTTList(e.bt, t1)
            if not isinstance(t2, BTTList):
                self.fail("'cons' onto a non-list")
            if not bt_eq(t2.bt, e.bt):
                self.fail("'cons' binding time differs from its list")
            elem = self.match(t1, t2.elem, {})
            return BTTList(e.bt, elem)
        if op in ("head", "tail", "null"):
            (t1,) = args
            if isinstance(t1, _Wild):
                return WILD if op == "head" else (
                    t1 if op == "tail" else BTTBase("Bool", e.bt)
                )
            if isinstance(t1, BTTSkel):
                if op == "null":
                    if not bt_leq(t1.bt, e.bt):
                        self.fail("'null' more static than its list")
                    return BTTBase("Bool", e.bt)
                if not bt_eq(t1.bt, e.bt):
                    self.fail("%r binding time differs from its list" % op)
                return WILD if op == "head" else t1
            if not isinstance(t1, BTTList):
                self.fail("%r of a non-list" % op)
            if op == "null":
                if not bt_leq(t1.bt, e.bt):
                    self.fail("'null' more static than its list")
                return BTTBase("Bool", e.bt)
            if not bt_eq(t1.bt, e.bt):
                self.fail("%r binding time differs from its list" % op)
            return t1.elem if op == "head" else t1
        if op == "pair":
            t1, t2 = args
            result = BTTPair(e.bt, t1, t2)
            self.well_formed(result)
            return result
        if op in ("fst", "snd"):
            (t1,) = args
            if isinstance(t1, _Wild):
                return WILD
            if isinstance(t1, BTTSkel):
                if not bt_eq(t1.bt, e.bt):
                    self.fail("%r binding time differs from its pair" % op)
                return WILD
            if not isinstance(t1, BTTPair):
                self.fail("%r of a non-pair" % op)
            if not bt_eq(t1.bt, e.bt):
                self.fail("%r binding time differs from its pair" % op)
            return t1.fst if op == "fst" else t1.snd
        self.fail("unknown primitive %r" % op)

    def _check_call(self, e, env):
        callee = self.defs.get(e.func)
        if callee is None:
            self.fail("call of unknown function %r" % e.func)
        if len(e.bt_args) != len(callee.bt_params):
            self.fail(
                "%r takes %d binding-time arguments, got %d"
                % (e.func, len(callee.bt_params), len(e.bt_args))
            )
        if len(e.args) != len(callee.params):
            self.fail(
                "%r takes %d arguments, got %d"
                % (e.func, len(callee.params), len(e.args))
            )
        mapping = dict(zip(callee.bt_params, e.bt_args))
        # Rename the callee's skeleton variables apart from the caller's
        # so instantiation bindings cannot collide.
        self._skel_rename_base -= 1_000_000
        rename = {}

        def inst(t):
            t = map_bts(t, lambda b: substitute(b, mapping))
            return _rename_skels(t, rename, self._skel_rename_base)

        bij = {}
        for i, a in enumerate(e.args):
            t = self.check_expr(a, env)
            self.match(t, inst(callee.param_types[i]), bij)
        result = inst(callee.res_type)
        # Resolve instantiated skeletons the arguments pinned down.
        return _apply_bindings(result, bij)

    # -- definitions --------------------------------------------------------

    def check_def(self, d, unfold_dominates=True):
        env = dict(zip(d.params, d.param_types))
        for t in d.param_types:
            self.well_formed(t)
        t = self.check_expr(d.body, env)
        self.match(t, d.res_type, {})
        top = self._top(d.res_type)
        if top is not None and not bt_leq(d.unfold, top):
            self.fail("residualised definition with non-dynamic result")
        if not unfold_dominates:
            # Size-change unfolding deliberately annotates definitions
            # unfoldable below their dynamic conditionals (the proof of
            # quasi-termination replaces the Similix lub rule), so the
            # domination check does not apply.
            return
        for node in walk_aexpr(d.body):
            if isinstance(node, AIf) and not bt_leq(node.bt, d.unfold):
                self.fail(
                    "conditional at %s not dominated by unfold "
                    "annotation %s" % (node.bt, d.unfold)
                )


def coercion_violation(src, dst):
    """``None`` when the coercion ``[src -> dst]`` is *upward* (it only
    raises binding times, pointwise, on an identical shape), else the
    reason it is not.  The standalone form of the :class:`_Checker`'s
    coercion rule, used by ``repro.check.lint``."""
    checker = _Checker({})
    checker.where = "coercion"
    try:
        checker.coercible(src, dst)
        checker.well_formed(dst)
    except AnnotationError as exc:
        return str(exc)
    return None


def check_module(amodule, defs_env=None):
    """Check every definition of an annotated module.

    ``defs_env`` maps function names to :class:`ADef` for everything in
    scope (imported definitions included); defaults to the module's own
    definitions."""
    defs = dict(defs_env or {})
    for d in amodule.defs:
        defs[d.name] = d
    checker = _Checker(defs)
    for d in amodule.defs:
        checker.where = "%s.%s" % (amodule.name, d.name)
        checker.check_def(d)


def check_program(aprogram):
    """Check a whole annotated program."""
    defs = {}
    for m in aprogram.modules:
        for d in m.defs:
            defs[d.name] = d
    checker = _Checker(defs)
    for m in aprogram.modules:
        for d in m.defs:
            checker.where = "%s.%s" % (m.name, d.name)
            checker.check_def(d)
