"""Abstract syntax of annotated programs (paper, Fig. 2).

::

    Def ::= Id {B*} Id* =B E
    E   ::= Nat | Id | PrimB E* | Id {B*} E* | ifB E then E else E
          | \\Id -> E | E @B E | [T -> T] E
    B   ::= S | D | Id | B u B
    T   ::= B | T ->B T | ...

Binding-time slots (the ``bt`` fields and the slots inside embedded
binding-time types) hold symbolic :class:`~repro.bt.bt.BT` values over
the enclosing definition's binding-time parameters.  During inference the
same node classes are used in *proto* form with raw constraint-graph
variable ids in the slots; :func:`repro.bt.analysis` finalises them.

Constants and lambdas are unannotated — they always denote static
quantities, with coercions inserted where dynamic versions are required
(Sec. 4.1).
"""

from dataclasses import dataclass
from typing import Tuple

from repro.bt.bttypes import BTType


class AExpr:
    """Base class of annotated expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ALit(AExpr):
    """A literal — always static; lifted by an enclosing coercion."""

    value: object


@dataclass(frozen=True)
class AVar(AExpr):
    """A variable occurrence."""

    name: str


@dataclass(frozen=True)
class APrim(AExpr):
    """A primitive with the binding time at which it is performed."""

    op: str
    bt: object
    args: Tuple[AExpr, ...]


@dataclass(frozen=True)
class AIf(AExpr):
    """A conditional annotated with the binding time of its test."""

    bt: object
    cond: AExpr
    then_branch: AExpr
    else_branch: AExpr


@dataclass(frozen=True)
class ACall(AExpr):
    """A named-function call passing binding-time arguments ``{B*}``."""

    func: str
    bt_args: Tuple[object, ...]
    args: Tuple[AExpr, ...]


@dataclass(frozen=True)
class ALam(AExpr):
    """An anonymous function.

    ``label`` identifies the lambda within its defining function (used
    for specialisation-memoisation keys and residual-module placement);
    ``free`` are the variables captured from the enclosing scope, and
    ``fvs`` the named functions called anywhere in the body — the
    "function names which occur free in the bodies of static closures"
    of Sec. 5.
    """

    var: str
    body: AExpr
    label: str = ""
    free: Tuple[str, ...] = ()
    fvs: Tuple[str, ...] = ()
    type: object = None  # the lambda's BTTFun type (filled by the analysis)


@dataclass(frozen=True)
class AApp(AExpr):
    """Application ``E @B E`` of an anonymous function."""

    bt: object
    fun: AExpr
    arg: AExpr


@dataclass(frozen=True)
class ACoerce(AExpr):
    """A binding-time coercion ``[src -> dst] expr``."""

    src: BTType
    dst: BTType
    expr: AExpr


@dataclass(frozen=True)
class ADef:
    """An annotated definition ``f {bt_params} params =unfold body``."""

    name: str
    bt_params: Tuple[str, ...]
    params: Tuple[str, ...]
    body: AExpr
    unfold: object  # symbolic BT: S means unfold, D means residualise
    param_types: Tuple[BTType, ...]
    res_type: BTType


@dataclass(frozen=True)
class AModule:
    """An annotated module."""

    name: str
    imports: Tuple[str, ...]
    defs: Tuple[ADef, ...]

    def find(self, name):
        for d in self.defs:
            if d.name == name:
                return d
        return None


@dataclass(frozen=True)
class AProgram:
    """A fully annotated program."""

    modules: Tuple[AModule, ...]

    def module(self, name):
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(name)

    def find_def(self, name):
        for m in self.modules:
            d = m.find(name)
            if d is not None:
                return m, d
        raise KeyError(name)


def aexpr_children(e):
    if isinstance(e, (ALit, AVar)):
        return ()
    if isinstance(e, APrim):
        return e.args
    if isinstance(e, AIf):
        return (e.cond, e.then_branch, e.else_branch)
    if isinstance(e, ACall):
        return e.args
    if isinstance(e, ALam):
        return (e.body,)
    if isinstance(e, AApp):
        return (e.fun, e.arg)
    if isinstance(e, ACoerce):
        return (e.expr,)
    raise TypeError("not an annotated expression: %r" % (e,))


def walk_aexpr(e):
    """Yield ``e`` and all sub-expressions, pre-order."""
    stack = [e]
    while stack:
        x = stack.pop()
        yield x
        stack.extend(reversed(aexpr_children(x)))


def afree_vars(e, bound=frozenset()):
    """Free variables of an annotated expression."""
    if isinstance(e, AVar):
        return frozenset() if e.name in bound else frozenset([e.name])
    if isinstance(e, ALam):
        return afree_vars(e.body, bound | {e.var})
    out = frozenset()
    for c in aexpr_children(e):
        out |= afree_vars(c, bound)
    return out


def acalled_functions(e):
    """Named functions called anywhere in ``e``."""
    out = frozenset()
    for x in walk_aexpr(e):
        if isinstance(x, ACall):
            out |= frozenset([x.func])
    return out


def strip(e):
    """Erase annotations, recovering the object-language expression.

    Coercions disappear; a stripped annotated program is the original
    program (a property the tests check).
    """
    from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var

    if isinstance(e, ALit):
        return Lit(e.value)
    if isinstance(e, AVar):
        return Var(e.name)
    if isinstance(e, APrim):
        return Prim(e.op, tuple(strip(a) for a in e.args))
    if isinstance(e, AIf):
        return If(strip(e.cond), strip(e.then_branch), strip(e.else_branch))
    if isinstance(e, ACall):
        return Call(e.func, tuple(strip(a) for a in e.args))
    if isinstance(e, ALam):
        return Lam(e.var, strip(e.body))
    if isinstance(e, AApp):
        return App(strip(e.fun), strip(e.arg))
    if isinstance(e, ACoerce):
        return strip(e.expr)
    raise TypeError("not an annotated expression: %r" % (e,))
