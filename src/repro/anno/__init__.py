"""Annotated programs (paper, Fig. 2).

Annotated programs are the output of the binding-time analysis and the
input of both the cogen and the baseline specialiser: every primitive,
conditional, and application carries a (symbolic) binding time, named
functions gain binding-time parameters, definitions carry an
unfold/residualise annotation, and coercions ``[a -> b]e`` adjust
binding times explicitly.
"""

from repro.anno.ast import (
    AApp,
    ACall,
    ACoerce,
    ADef,
    AExpr,
    AIf,
    ALam,
    ALit,
    AModule,
    APrim,
    AProgram,
    AVar,
)
from repro.anno.check import AnnotationError, check_module, check_program
from repro.anno.pretty import pretty_adef, pretty_aexpr, pretty_amodule, pretty_aprogram

__all__ = [
    "AApp",
    "ACall",
    "ACoerce",
    "ADef",
    "AExpr",
    "AIf",
    "ALam",
    "ALit",
    "AModule",
    "APrim",
    "AProgram",
    "AVar",
    "AnnotationError",
    "check_module",
    "check_program",
    "pretty_adef",
    "pretty_aexpr",
    "pretty_amodule",
    "pretty_aprogram",
]
