"""Pretty printer for annotated programs, in the notation of Fig. 2.

Example (the paper's own annotation of ``power``)::

    power {t u} n x =t
      if{t} n =={t} [Nat^S -> Nat^t]1
        then [Nat^u -> Nat^t u u]x
        else [Nat^u -> Nat^t u u]x *{t u u} power {t u} (...) x

Binding times render as ``S``, ``D``, single parameters, or
``t u u``-style lubs; binding-time types render with ``^bt`` suffixes
(see :func:`repro.bt.scheme.btt_to_str`).
"""

from repro.anno.ast import (
    AApp,
    ACall,
    ACoerce,
    AIf,
    ALam,
    ALit,
    APrim,
    AVar,
)
from repro.bt.scheme import btt_to_str
from repro.lang.prims import PRIMS


def _bt(b):
    return str(b)


def pretty_aexpr(e, parens=False):
    """Render one annotated expression."""
    if isinstance(e, ALit):
        if e.value is True:
            return "true"
        if e.value is False:
            return "false"
        if e.value == ():
            return "nil"
        return str(e.value)
    if isinstance(e, AVar):
        return e.name
    if isinstance(e, APrim):
        info = PRIMS[e.op]
        if info.infix and len(e.args) == 2:
            text = "%s %s{%s} %s" % (
                pretty_aexpr(e.args[0], True),
                info.infix,
                _bt(e.bt),
                pretty_aexpr(e.args[1], True),
            )
        else:
            text = "%s{%s} %s" % (
                e.op,
                _bt(e.bt),
                " ".join(pretty_aexpr(a, True) for a in e.args),
            )
        return "(%s)" % text if parens else text
    if isinstance(e, AIf):
        text = "if{%s} %s then %s else %s" % (
            _bt(e.bt),
            pretty_aexpr(e.cond),
            pretty_aexpr(e.then_branch),
            pretty_aexpr(e.else_branch),
        )
        return "(%s)" % text if parens else text
    if isinstance(e, ACall):
        bts = " ".join(_bt(b) for b in e.bt_args)
        args = " ".join(pretty_aexpr(a, True) for a in e.args)
        text = "%s {%s}%s" % (e.func, bts, (" " + args) if args else "")
        return "(%s)" % text if parens else text
    if isinstance(e, ALam):
        text = "\\%s -> %s" % (e.var, pretty_aexpr(e.body))
        return "(%s)" % text
    if isinstance(e, AApp):
        text = "%s @{%s} %s" % (
            pretty_aexpr(e.fun, True),
            _bt(e.bt),
            pretty_aexpr(e.arg, True),
        )
        return "(%s)" % text if parens else text
    if isinstance(e, ACoerce):
        return "[%s -> %s]%s" % (
            btt_to_str(e.src),
            btt_to_str(e.dst),
            pretty_aexpr(e.expr, True),
        )
    raise TypeError("not an annotated expression: %r" % (e,))


def pretty_adef(d):
    """Render ``f {bt params} params =unfold body``."""
    bts = " ".join(d.bt_params)
    params = " ".join(d.params)
    head = d.name
    if bts:
        head += " {%s}" % bts
    if params:
        head += " " + params
    return "%s =%s %s" % (head, _bt(d.unfold), pretty_aexpr(d.body))


def pretty_amodule(m):
    lines = ["module %s where" % m.name]
    for imp in m.imports:
        lines.append("import %s" % imp)
    if m.defs:
        lines.append("")
    for d in m.defs:
        lines.append(pretty_adef(d))
    return "\n".join(lines) + "\n"


def pretty_aprogram(p):
    return "\n".join(pretty_amodule(m) for m in p.modules)
