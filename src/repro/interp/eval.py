"""Big-step evaluation of object-language programs.

Call-by-value.  The paper's metalanguage is lazy, but the object-language
fragments it specialises are all terminating, strongly typed first-order
loops over data, for which call-by-value and call-by-name coincide on
defined results; the test suite relies on this only for programs where
both are defined.

Values are Python naturals, booleans, tuples (lists), tagged pairs (see
:mod:`repro.lang.prims`), and :class:`Closure` for lambdas.
"""

from dataclasses import dataclass

from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var
from repro.lang.prims import PrimError, apply_prim


class EvalError(Exception):
    """A dynamic error while running an object-language program."""


@dataclass
class Closure:
    """A function value: a lambda together with its environment."""

    var: str
    body: object
    env: dict

    def __repr__(self):
        return "<closure \\%s -> ...>" % self.var


class Interpreter:
    """Evaluates expressions against a :class:`LinkedProgram`.

    Also usable with any object exposing ``symbols`` and ``find_def`` —
    residual programs are re-linked before being run.
    """

    def __init__(self, linked, fuel=1_000_000):
        """``fuel`` bounds the total number of evaluation steps, so tests
        on accidentally divergent programs fail fast instead of hanging."""
        self.linked = linked
        self.fuel = fuel
        self.steps = 0
        self._def_cache = {}

    def _spend(self):
        self.steps += 1
        if self.steps > self.fuel:
            raise EvalError("out of fuel after %d steps" % self.fuel)

    def _lookup_def(self, name):
        d = self._def_cache.get(name)
        if d is None:
            _, d = self.linked.find_def(name)
            self._def_cache[name] = d
        return d

    def call(self, name, args):
        """Call named function ``name`` on evaluated ``args``."""
        d = self._lookup_def(name)
        if len(args) != len(d.params):
            raise EvalError(
                "%s expects %d arguments, got %d" % (name, len(d.params), len(args))
            )
        return self.eval(d.body, dict(zip(d.params, args)))

    def eval(self, expr, env):
        """Evaluate ``expr`` in environment ``env`` (name -> value)."""
        self._spend()
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise EvalError("unbound variable %r" % expr.name)
        if isinstance(expr, Prim):
            args = [self.eval(a, env) for a in expr.args]
            try:
                return apply_prim(expr.op, args)
            except PrimError as e:
                raise EvalError(str(e))
        if isinstance(expr, If):
            cond = self.eval(expr.cond, env)
            if not isinstance(cond, bool):
                raise EvalError("condition is not a boolean: %r" % (cond,))
            branch = expr.then_branch if cond else expr.else_branch
            return self.eval(branch, env)
        if isinstance(expr, Call):
            args = [self.eval(a, env) for a in expr.args]
            return self.call(expr.func, args)
        if isinstance(expr, Lam):
            return Closure(expr.var, expr.body, env)
        if isinstance(expr, App):
            fun = self.eval(expr.fun, env)
            arg = self.eval(expr.arg, env)
            if not isinstance(fun, Closure):
                raise EvalError("applying a non-function: %r" % (fun,))
            inner = dict(fun.env)
            inner[fun.var] = arg
            return self.eval(fun.body, inner)
        raise TypeError("not an expression: %r" % (expr,))


def run_program(linked, func, args, fuel=1_000_000):
    """Run named function ``func`` of ``linked`` on Python values ``args``.

    The evaluator is recursive; deep object-language recursion is given
    extra interpreter stack, and Python-level stack exhaustion surfaces
    as :class:`EvalError` rather than ``RecursionError``."""
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        return Interpreter(linked, fuel=fuel).call(func, list(args))
    except RecursionError:
        raise EvalError("object-language recursion too deep")
    finally:
        sys.setrecursionlimit(old_limit)


def run_main(linked, args, fuel=1_000_000):
    """Run the program's ``main`` function."""
    return run_program(linked, "main", args, fuel=fuel)
