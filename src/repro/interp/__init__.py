"""A big-step interpreter for the object language.

Runs both source programs and residual (specialised) programs, which lets
the test suite check the fundamental correctness property of
specialisation: running the residual program on the dynamic inputs gives
the same answer as running the source program on all inputs.
"""

from repro.interp.eval import Closure, EvalError, Interpreter, run_main, run_program

__all__ = ["Closure", "EvalError", "Interpreter", "run_main", "run_program"]
