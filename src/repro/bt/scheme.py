"""Principal binding-time schemes (qualified binding-time types).

A :class:`BTScheme` is the canonical, property-independent signature of a
named function: binding-time types for its arguments and result over
small canonical slot indices, the slot of its unfold/residualise
annotation, and the projection of the constraint set onto those slots
(edges plus slots forced dynamic).  This is what Sec. 4.1 writes to a
binding-time interface file, what generating extensions embed, and what
the analysis of an importing module instantiates at each call.

*Inputs* are the slots occurring in argument positions: they become the
binding-time parameters of the function (the ``{t u}`` of Fig. 2).
Every other slot's least solution is a lub of inputs (plus possibly
``D``), recoverable from the closure edges; edges between inputs are the
scheme's *qualifications* (``{t <= u}`` in the paper's example).
"""

from dataclasses import dataclass
from itertools import product
from typing import FrozenSet, Tuple

from repro.bt import bt as btmod
from repro.bt.bttypes import (
    BTTBase,
    BTTFun,
    BTTList,
    BTTPair,
    BTTSkel,
    BTType,
    map_bts,
)

_INPUT_LETTERS = "tuvwabcdefgh"


def input_name(index):
    """Paper-style name for the ``index``-th binding-time parameter."""
    if index < len(_INPUT_LETTERS):
        return _INPUT_LETTERS[index]
    return "t%d" % index


@dataclass(frozen=True)
class BTScheme:
    """Canonical principal binding-time signature of one function."""

    args: Tuple[BTType, ...]
    res: BTType
    nslots: int
    unfold: int  # canonical slot of the unfold/residualise annotation
    edges: FrozenSet[Tuple[int, int]]
    dyn: FrozenSet[int]

    # -- derived views ----------------------------------------------------

    def inputs(self):
        """Canonical slots the *context* chooses: every slot in argument
        positions, plus the contravariant slots of the result type
        (argument subtrees of functions returned to the caller — the
        caller decides what those closures are applied to, so their
        binding times are free parameters, not derived outputs)."""
        seen = []
        for a in self.args:
            for s in _slots_preorder(a):
                if s not in seen:
                    seen.append(s)
        for s in _negative_slots(self.res):
            if s not in seen:
                seen.append(s)
        return tuple(seen)

    def input_names(self):
        return tuple(input_name(i) for i in range(len(self.inputs())))

    def qualifications(self):
        """Edges between input slots: constraints callers must respect."""
        ins = set(self.inputs())
        return frozenset((a, b) for (a, b) in self.edges if a in ins and b in ins)

    def solve_symbolic(self):
        """Map every canonical slot to a symbolic :class:`~repro.bt.bt.BT`
        over the input names (the least solution of the signature)."""
        inputs = self.inputs()
        names = {slot: input_name(i) for i, slot in enumerate(inputs)}
        # Forward-propagate reach sets over the closure edges.
        reach = {s: set() for s in range(self.nslots)}
        for i, slot in enumerate(inputs):
            reach[slot].add(names[slot])
        dyn = set(self.dyn)
        changed = True
        while changed:
            changed = False
            for (a, b) in self.edges:
                if a in dyn and b not in dyn:
                    dyn.add(b)
                    changed = True
                if not reach[b] >= reach[a]:
                    reach[b] |= reach[a]
                    changed = True
        out = {}
        for s in range(self.nslots):
            if s in dyn:
                out[s] = btmod.D
            else:
                out[s] = btmod.BT(frozenset(reach[s]), False)
        return out

    def symbolic_args(self):
        """Argument binding-time types with symbolic slots."""
        sol = self.solve_symbolic()
        return tuple(map_bts(a, lambda s: sol[s]) for a in self.args)

    def symbolic_res(self):
        sol = self.solve_symbolic()
        return map_bts(self.res, lambda s: sol[s])

    def symbolic_unfold(self):
        return self.solve_symbolic()[self.unfold]

    def __str__(self):
        # Input slots print as bare parameter names with explicit
        # qualifications, the way the paper writes qualified types
        # (e.g. "forall t,u. {t <= u} => t -> u -> u"); other slots print
        # their least value as a lub of the inputs.
        sol = self.solve_symbolic()
        inputs = self.inputs()
        bare = {slot: input_name(i) for i, slot in enumerate(inputs)}
        for slot, name in bare.items():
            sol[slot] = btmod.BT(frozenset([name]), False)
        parts = [btt_to_str(map_bts(a, lambda s: sol[s])) for a in self.args]
        res = btt_to_str(map_bts(self.res, lambda s: sol[s]))
        quals = sorted(
            "%s <= %s" % (bare[a], bare[b]) for (a, b) in self.qualifications()
        )
        quals = sorted("%s = D" % bare[s] for s in self.dyn if s in bare) + quals
        names = self.input_names()
        head = ("forall %s. " % ",".join(names)) if names else ""
        qual = ("{%s} => " % ", ".join(quals)) if quals else ""
        arrow = " -> ".join(parts + [res]) if parts else res
        return "%s%s%s  [unfold: %s]" % (head, qual, arrow, sol[self.unfold])


def ground_patterns(scheme, cap):
    """The consistent ground valuations of a scheme's inputs.

    Enumerates every assignment of ``S``/``D`` to the scheme's input
    slots that respects its qualifications — the closure edges between
    inputs and the slots forced dynamic — in lexicographic order with
    ``S < D``, stopping after ``cap`` patterns.  These are the
    binding-time *versions* a polyvariant division clones a definition
    into: at specialisation time every call supplies exactly one such
    ground valuation, so a per-pattern clone with its annotations
    pre-evaluated can answer it.

    Returns a tuple of tuples of concrete :class:`~repro.bt.bt.BT`
    values, one per input, aligned with :meth:`BTScheme.inputs` (and
    hence with an annotated definition's ``bt_params``).  Signatures
    with no inputs, a non-positive ``cap``, or too many inputs to
    enumerate get the empty tuple."""
    inputs = scheme.inputs()
    if not inputs or cap <= 0 or len(inputs) > _MAX_PATTERN_INPUTS:
        return ()
    out = []
    for bits in product((False, True), repeat=len(inputs)):
        val = [False] * scheme.nslots
        for s in scheme.dyn:
            val[s] = True
        for s, bit in zip(inputs, bits):
            val[s] = val[s] or bit
        changed = True
        while changed:
            changed = False
            for (a, b) in scheme.edges:
                if val[a] and not val[b]:
                    val[b] = True
                    changed = True
        if all(val[s] == bit for s, bit in zip(inputs, bits)):
            out.append(
                tuple(btmod.D if bit else btmod.S for bit in bits)
            )
            if len(out) >= cap:
                break
    return tuple(out)


def pattern_str(pattern):
    """The canonical text of one ground pattern (``"SDS"``-style) —
    what interface files and version digests carry."""
    return "".join("D" if b.dyn else "S" for b in pattern)


_MAX_PATTERN_INPUTS = 8


def result_input_names(scheme):
    """Names of inputs that live in the result type's contravariant
    positions (not in any argument).  A specialisation *goal* must treat
    these as dynamic: whatever closure the residual program returns will
    be applied by unknown residual contexts."""
    arg_slots = set()
    for a in scheme.args:
        arg_slots.update(_slots_preorder(a))
    return tuple(
        input_name(i)
        for i, slot in enumerate(scheme.inputs())
        if slot not in arg_slots
    )


def param_own_names(scheme):
    """For each argument, the input names of its own slots (preorder).

    These are the binding-time parameters a goal must force to ``D``
    when it makes that argument dynamic — as opposed to the names
    merely *absorbed* into the argument's solved annotations, which are
    lower bounds from elsewhere and must not be forced."""
    inputs = scheme.inputs()
    name_of = {slot: input_name(i) for i, slot in enumerate(inputs)}
    return tuple(
        tuple(name_of[s] for s in _slots_preorder(a)) for a in scheme.args
    )


def _negative_slots(t):
    """Contravariant slots of a type in result position: everything
    under the argument of a function, recursively through the covariant
    structure (lists, pairs, function results)."""
    if isinstance(t, (BTTBase, BTTSkel)):
        return []
    if isinstance(t, BTTList):
        return _negative_slots(t.elem)
    if isinstance(t, BTTPair):
        return _negative_slots(t.fst) + _negative_slots(t.snd)
    if isinstance(t, BTTFun):
        return _slots_preorder(t.arg) + _negative_slots(t.res)
    raise TypeError("not a binding-time type: %r" % (t,))


def _slots_preorder(t):
    out = [t.bt]
    if isinstance(t, BTTList):
        out += _slots_preorder(t.elem)
    elif isinstance(t, BTTPair):
        out += _slots_preorder(t.fst) + _slots_preorder(t.snd)
    elif isinstance(t, BTTFun):
        out += _slots_preorder(t.arg) + _slots_preorder(t.res)
    return out


def btt_to_str(t):
    """Render a binding-time type whose slots are printable values."""
    if isinstance(t, BTTBase):
        return "%s^%s" % (t.name, t.bt)
    if isinstance(t, BTTSkel):
        return "a%d^%s" % (t.id, t.bt)
    if isinstance(t, BTTList):
        return "[%s]^%s" % (btt_to_str(t.elem), t.bt)
    if isinstance(t, BTTPair):
        return "(%s, %s)^%s" % (btt_to_str(t.fst), btt_to_str(t.snd), t.bt)
    if isinstance(t, BTTFun):
        return "(%s ->%s %s)" % (btt_to_str(t.arg), t.bt, btt_to_str(t.res))
    raise TypeError("not a binding-time type: %r" % (t,))


class Canonicaliser:
    """Builds a :class:`BTScheme` from raw inference results.

    Maps real graph variables and skeleton ids to dense canonical
    indices, in order of first appearance walking the arguments and then
    the result.  The unfold variable gets the final slot.
    """

    def __init__(self, unifier):
        self.unifier = unifier
        self.slot_of = {}
        self.skel_of = {}

    def _slot(self, var):
        if var not in self.slot_of:
            self.slot_of[var] = len(self.slot_of)
        return self.slot_of[var]

    def _canon_type(self, t):
        t = self.unifier.resolve(t)
        if isinstance(t, BTTBase):
            return BTTBase(t.name, self._slot(t.bt))
        if isinstance(t, BTTSkel):
            if t.id not in self.skel_of:
                self.skel_of[t.id] = len(self.skel_of)
            return BTTSkel(self.skel_of[t.id], self._slot(t.bt))
        if isinstance(t, BTTList):
            slot = self._slot(t.bt)
            return BTTList(slot, self._canon_type(t.elem))
        if isinstance(t, BTTPair):
            slot = self._slot(t.bt)
            return BTTPair(slot, self._canon_type(t.fst), self._canon_type(t.snd))
        if isinstance(t, BTTFun):
            slot = self._slot(t.bt)
            return BTTFun(slot, self._canon_type(t.arg), self._canon_type(t.res))
        raise TypeError("not a binding-time type: %r" % (t,))

    def build(self, graph, arg_types, res_type, unfold_var):
        args = tuple(self._canon_type(a) for a in arg_types)
        res = self._canon_type(res_type)
        unfold_slot = self._slot(unfold_var)
        interface = list(self.slot_of)
        edges, dyn = graph.closure(interface)
        return BTScheme(
            args=args,
            res=res,
            nslots=len(self.slot_of),
            unfold=unfold_slot,
            edges=frozenset(
                (self.slot_of[a], self.slot_of[b]) for (a, b) in edges
            ),
            dyn=frozenset(self.slot_of[v] for v in dyn),
        )


def instantiate(scheme, graph, unifier):
    """Instantiate ``scheme`` with fresh variables in ``graph``.

    Returns ``(arg_types, res_type, slot_map)`` where ``slot_map`` maps
    canonical slots to the fresh graph variables.  Closure edges and
    forced-dynamic slots are replayed into the graph.
    """
    slot_map = {s: graph.fresh() for s in range(scheme.nslots)}
    skel_map = {}

    def rebuild(t):
        if isinstance(t, BTTBase):
            return BTTBase(t.name, slot_map[t.bt])
        if isinstance(t, BTTSkel):
            if t.id not in skel_map:
                skel_map[t.id] = unifier.alloc_skel_id()
            return BTTSkel(skel_map[t.id], slot_map[t.bt])
        if isinstance(t, BTTList):
            return BTTList(slot_map[t.bt], rebuild(t.elem))
        if isinstance(t, BTTPair):
            return BTTPair(slot_map[t.bt], rebuild(t.fst), rebuild(t.snd))
        if isinstance(t, BTTFun):
            return BTTFun(slot_map[t.bt], rebuild(t.arg), rebuild(t.res))
        raise TypeError("not a binding-time type: %r" % (t,))

    args = tuple(rebuild(a) for a in scheme.args)
    res = rebuild(scheme.res)
    for (a, b) in scheme.edges:
        graph.edge(slot_map[a], slot_map[b])
    for s in scheme.dyn:
        graph.force_dynamic(slot_map[s])
    return args, res, slot_map
