"""Size-change termination for the unfolding strategy.

The Similix rule residualises a definition as soon as *any* conditional
in its body can be dynamic — even when the recursion itself is driven by
a static argument that provably shrinks on every call.  Following
Lee–Jones–Ben-Amram's size-change termination (SCT) principle, as
applied to offline partial evaluation by Leuschel–Tamarit–Vidal, this
module proves *quasi-termination of unfolding* for a strongly connected
component of definitions: if every infinite in-SCC call sequence would
force an infinitely descending chain of natural-number or list values,
no infinite call sequence exists — so the specialiser may unfold the
component's calls whenever the measured arguments are static, dynamic
conditionals notwithstanding.

Size-change graphs
------------------

For every syntactic in-SCC call ``f(e1, ..., en)`` inside ``g`` we build
one *size-change graph* ``g -> f`` whose arcs over-approximate how the
callee's parameters relate to the caller's:

* ``Var(p)``                        — arc ``p ->= q`` (equal, never grows);
* ``tail e`` with ``e`` bounded by ``p``   — arc ``p -> q`` (strict: ``tail``
  of a list is shorter, and errors — aborting specialisation — on the
  empty list, so the call never happens with an equal value);
* ``e - k`` (``k >= 1``) with ``e`` bounded by ``p`` — arc ``p ->= q``
  (natural subtraction saturates at 0, so it never grows), upgraded to
  strict when a dominating guard proves ``p >= 1`` (the else-branch of
  ``p == 0``, the then-branch of ``0 < p``, ...).  The guard is on the
  arc's own source parameter, so whenever the arc is *used* (the source
  is static) the guard's conditional is static too and the guarded
  branch is the only one the specialiser evaluates.

Calls under a lambda get an *empty* graph (the closure may be applied
in contexts we cannot bound), which soundly defeats any proof passing
through them.

The classic criterion then applies: close the graph set under
composition; the component terminates iff every idempotent self-graph
``G = G;G`` carries a strict self-arc ``p -> p``.

Required parameters
-------------------

A proof is only usable if the arcs' source/target parameters are static
at specialisation time (size of a dynamic value is unknown).  For a
one-definition component we search for the *smallest* parameter subset
whose restricted arcs still prove termination — so ``lookup xs i``
needs only the static table ``xs``, not the dynamic index ``i``.  The
result maps each definition to the tuple of parameter names (in
declaration order) whose binding times must flow into the unfold flag.
"""

from itertools import combinations

from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var

__all__ = ["sct_unfold_params"]

# Closure-size cap: a component whose composition closure exceeds this
# many distinct graphs gives up (conservatively, no proof) rather than
# grind; real programs stay far below it.
_MAX_GRAPHS = 2048
# Minimal-subset search cap: with more candidate parameters than this,
# only the full participant set is tried.
_MAX_SEARCH_PARAMS = 8


def _branch_facts(cond, params):
    """``(then_facts, else_facts)``: parameters in ``params`` proved
    ``>= 1`` inside each branch by a literal-vs-parameter comparison."""
    then_facts, else_facts = set(), set()
    if not isinstance(cond, Prim) or len(cond.args) != 2:
        return then_facts, else_facts
    a, b = cond.args

    def nat(e):
        return (
            e.value
            if isinstance(e, Lit)
            and isinstance(e.value, int)
            and not isinstance(e.value, bool)
            else None
        )

    def param(e):
        return e.name if isinstance(e, Var) and e.name in params else None

    if cond.op == "==":
        # p == 0: the else-branch has p >= 1.
        if param(a) is not None and nat(b) == 0:
            else_facts.add(a.name)
        elif nat(a) == 0 and param(b) is not None:
            else_facts.add(b.name)
    elif cond.op == "<":
        # k < p (k >= 0): the then-branch has p >= k + 1 >= 1.
        if nat(a) is not None and param(b) is not None:
            then_facts.add(b.name)
        # p < 1: the else-branch has p >= 1.
        elif param(a) is not None and nat(b) == 1:
            else_facts.add(a.name)
    elif cond.op == "<=":
        # k <= p (k >= 1): the then-branch has p >= 1.
        if nat(a) is not None and nat(a) >= 1 and param(b) is not None:
            then_facts.add(b.name)
        # p <= 0: the else-branch has p >= 1.
        elif param(a) is not None and nat(b) == 0:
            else_facts.add(a.name)
    return then_facts, else_facts


def _arc_source(e, facts, params):
    """``(source_param, strict)`` for an argument expression whose value
    is bounded by one caller parameter, or ``None``.

    Soundness is per *measure*: list length for ``tail`` chains, the
    natural number itself for monus.  Both only shrink, so chaining
    them keeps the bound."""
    if isinstance(e, Var):
        if e.name in params:
            return (e.name, False)
        return None
    if isinstance(e, Prim) and e.op == "tail" and len(e.args) == 1:
        inner = _arc_source(e.args[0], facts, params)
        if inner is None:
            return None
        # tail errors on [], so any call it feeds sees a strictly
        # shorter list than its operand.
        return (inner[0], True)
    if isinstance(e, Prim) and e.op == "-" and len(e.args) == 2:
        left, right = e.args
        k = (
            right.value
            if isinstance(right, Lit)
            and isinstance(right.value, int)
            and not isinstance(right.value, bool)
            else None
        )
        if k is None or k < 1:
            return None
        inner = _arc_source(left, facts, params)
        if inner is None:
            return None
        source, strict = inner
        if strict:
            return (source, True)
        # Monus never grows; it strictly shrinks only when the value is
        # known positive — which a dominating guard on the parameter
        # itself can prove.
        if isinstance(left, Var) and left.name in facts:
            return (source, True)
        return (source, False)
    return None


def _collect_calls(d, group):
    """Every in-SCC call in ``d``'s body, with the guard facts that
    dominate it and whether it sits under a lambda."""
    calls = []
    params = frozenset(d.params)

    def walk(e, facts, under_lam, shadowed):
        if isinstance(e, (Lit, Var)):
            return
        if isinstance(e, Call):
            for a in e.args:
                walk(a, facts, under_lam, shadowed)
            if e.func in group:
                calls.append((e.func, e.args, facts, under_lam, shadowed))
            return
        if isinstance(e, If):
            walk(e.cond, facts, under_lam, shadowed)
            visible = params - shadowed
            then_facts, else_facts = _branch_facts(e.cond, visible)
            walk(e.then_branch, facts | then_facts, under_lam, shadowed)
            walk(e.else_branch, facts | else_facts, under_lam, shadowed)
            return
        if isinstance(e, Prim):
            for a in e.args:
                walk(a, facts, under_lam, shadowed)
            return
        if isinstance(e, Lam):
            walk(e.body, facts, True, shadowed | {e.var})
            return
        if isinstance(e, App):
            walk(e.fun, facts, under_lam, shadowed)
            walk(e.arg, facts, under_lam, shadowed)
            return
        raise TypeError("not an expression: %r" % (e,))

    walk(d.body, frozenset(), False, frozenset())
    return calls


def _call_graphs(by_name, group):
    """One size-change graph per syntactic in-SCC call, as
    ``(caller, callee, frozenset((src, dst, strict)))`` triples."""
    graphs = []
    members = frozenset(group)
    for name in group:
        d = by_name[name]
        for callee, args, facts, under_lam, shadowed in _collect_calls(
            d, members
        ):
            arcs = {}
            if not under_lam:
                visible = frozenset(d.params) - shadowed
                callee_params = by_name[callee].params
                for arg, q in zip(args, callee_params):
                    found = _arc_source(arg, facts, visible)
                    if found is None:
                        continue
                    src, strict = found
                    key = (src, q)
                    arcs[key] = arcs.get(key, False) or strict
            graphs.append(
                (
                    name,
                    callee,
                    frozenset(
                        (src, dst, strict)
                        for (src, dst), strict in arcs.items()
                    ),
                )
            )
    return graphs


def _compose(g, h):
    """``g ; h`` — the size-change graph of doing ``g`` then ``h``."""
    arcs = {}
    by_src = {}
    for (src, dst, strict) in h[2]:
        by_src.setdefault(src, []).append((dst, strict))
    for (src, mid, s1) in g[2]:
        for (dst, s2) in by_src.get(mid, ()):
            key = (src, dst)
            arcs[key] = arcs.get(key, False) or s1 or s2
    return (
        g[0],
        h[1],
        frozenset((src, dst, s) for (src, dst), s in arcs.items()),
    )


def _terminates(graphs):
    """The classic SCT criterion over ``graphs``: close under
    composition and require a strict self-arc on every idempotent
    self-graph.  ``None``-ish (False) when the closure explodes."""
    closure = set(graphs)
    frontier = list(graphs)
    while frontier:
        if len(closure) > _MAX_GRAPHS:
            return False
        new = []
        for g in frontier:
            for h in list(closure):
                if g[1] == h[0]:
                    gh = _compose(g, h)
                    if gh not in closure:
                        closure.add(gh)
                        new.append(gh)
                if h[1] == g[0]:
                    hg = _compose(h, g)
                    if hg not in closure:
                        closure.add(hg)
                        new.append(hg)
        frontier = new
    for g in closure:
        if g[0] != g[1]:
            continue
        if _compose(g, g)[2] != g[2]:
            continue
        if not any(src == dst and strict for (src, dst, strict) in g[2]):
            return False
    return True


def _restrict(graphs, allowed):
    """Graphs with every arc endpoint outside ``allowed`` dropped."""
    return [
        (
            caller,
            callee,
            frozenset(
                (src, dst, strict)
                for (src, dst, strict) in arcs
                if src in allowed[caller] and dst in allowed[callee]
            ),
        )
        for (caller, callee, arcs) in graphs
    ]


def _participants(by_name, group, graphs):
    """Per definition, the parameters appearing as an arc endpoint, in
    declaration order."""
    used = {name: set() for name in group}
    for (caller, callee, arcs) in graphs:
        for (src, dst, _strict) in arcs:
            used[caller].add(src)
            used[callee].add(dst)
    return {
        name: tuple(p for p in by_name[name].params if p in used[name])
        for name in group
    }


def sct_unfold_params(by_name, group):
    """Try to prove that unfolding the SCC ``group`` terminates.

    ``by_name`` maps definition names to resolved
    :class:`~repro.lang.ast.Def` nodes; ``group`` lists the component's
    members.  Returns ``{def_name: (param, ...)}`` — the parameters
    whose binding times must gate unfolding — or ``None`` when no proof
    exists (including the non-recursive case, where the Similix rule is
    already exact)."""
    graphs = _call_graphs(by_name, group)
    if not graphs:
        return None  # not recursive: nothing to prove
    participants = _participants(by_name, group, graphs)
    full = _restrict(graphs, {n: frozenset(ps) for n, ps in participants.items()})
    if not _terminates(full):
        return None
    if len(group) == 1:
        # Minimal-subset search: smallest (then leftmost) parameter set
        # whose restricted arcs still prove termination, so dynamic
        # parameters with incidental arcs never gate unfolding.
        name = group[0]
        candidates = participants[name]
        if 0 < len(candidates) <= _MAX_SEARCH_PARAMS:
            for size in range(1, len(candidates)):
                for subset in combinations(candidates, size):
                    restricted = _restrict(
                        graphs, {name: frozenset(subset)}
                    )
                    if _terminates(restricted):
                        return {name: subset}
    return {
        name: params for name, params in participants.items()
    }
