"""Binding-time explanation: *why* is an annotation what it is?

A perennial usability problem of offline partial evaluation is
understanding why something the programmer expected to be static came
out dynamic.  Because our analysis keeps the whole constraint graph with
per-edge provenance, we can answer mechanically: the explanation of
"slot X absorbs parameter t" (or "is dynamic") is a constraint path from
the source to X, each step labelled with the syntactic reason the edge
was generated.

Entry point: :func:`explain_function`.

>>> from repro.modsys.program import load_program
>>> from repro.bt.explain import explain_function
>>> report = explain_function(load_program('''
... module Power where
...
... power n x = if n == 1 then x else x * power (n - 1) x
... '''), "power")
>>> print(report.why_result())  # doctest: +SKIP
the result of power absorbs t because:
  t  (binding time of parameter 'n')
  <= ...  (operand of '==')
  <= ...  (the result of a conditional depends on its test)
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bt.analysis import _DefInference, analyse_program
from repro.bt.graph import D_NODE
from repro.bt.scheme import input_name


@dataclass
class Step:
    """One constraint edge in an explanation path."""

    source: int
    target: int
    reason: str

    def render(self):
        return "<= v%d  (%s)" % (self.target, self.reason)


@dataclass
class Explanation:
    """Why a binding-time variable absorbs a parameter (or ``D``)."""

    subject: str  # what is being explained
    origin: str  # the parameter name or "D"
    steps: List[Step]

    def render(self):
        lines = ["%s absorbs %s because:" % (self.subject, self.origin)]
        lines.append("  %s  (origin)" % self.origin)
        for step in self.steps:
            lines.append("  %s" % step.render())
        return "\n".join(lines)


@dataclass
class FunctionReport:
    """The full diagnostic state for one definition."""

    name: str
    inference: object
    input_vars: Dict[str, int]  # parameter name -> graph variable
    result_var: int
    unfold_var: int
    param_vars: Tuple[Tuple[str, int], ...]  # object param -> top variable

    def _explain_var(self, subject, var):
        graph = self.inference.graph
        out = []
        for origin_name, origin_var in self.input_vars.items():
            path = graph.find_path(origin_var, var)
            if path is None:
                continue
            out.append(
                Explanation(subject, origin_name, [_step(graph, e) for e in path])
            )
        d_path = graph.find_path(D_NODE, var)
        if d_path is not None:
            out.append(Explanation(subject, "D", [_step(graph, e) for e in d_path]))
        return out

    def why_result(self):
        """Explanations for every parameter the result's top absorbs."""
        return _render_all(
            self._explain_var("the result of %s" % self.name, self.result_var)
        )

    def why_unfold(self):
        """Explanations for the unfold/residualise annotation."""
        return _render_all(
            self._explain_var(
                "the unfold annotation of %s" % self.name, self.unfold_var
            )
        )

    def why_param_absorbs(self, param, origin_param):
        """Why does ``param``'s binding time absorb ``origin_param``?

        Returns ``None`` if it does not."""
        target = dict(self.param_vars)[param]
        origin_var = self.input_vars[origin_param]
        path = self.inference.graph.find_path(origin_var, target)
        if path is None:
            return None
        return Explanation(
            "parameter %r of %s" % (param, self.name),
            origin_param,
            [_step(self.inference.graph, e) for e in path],
        ).render()


def _step(graph, edge):
    a, b = edge
    reason = graph.reason(a, b) or "constraint"
    return Step(a, b, reason)


def _render_all(explanations):
    if not explanations:
        return "(static: nothing flows here)"
    return "\n\n".join(e.render() for e in explanations)


def to_dot(report, max_nodes=200):
    """Render the definition's binding-time constraint graph as Graphviz
    ``dot`` text: parameters as boxes, the result/unfold as doubled
    ovals, edges labelled with their provenance.  Handy for teaching and
    for debugging surprising binding times."""
    graph = report.inference.graph
    lines = ["digraph bt {", '  rankdir="LR";']
    special = {v: name for name, v in report.input_vars.items()}
    labels = dict(special)
    labels[report.result_var] = "result"
    labels[report.unfold_var] = "unfold"
    labels[D_NODE] = "D"

    def dot_id(node):
        return "n%s" % str(node).replace("-", "m")

    edges = [
        (v, w)
        for v in list(graph._succ)
        for w in sorted(graph.successors(v))
    ]
    truncated = len(edges) > max_nodes
    emitted = set()
    for v, w in edges[:max_nodes]:
        for node in (v, w):
            if node in emitted:
                continue
            emitted.add(node)
            if node in special or node == D_NODE:
                shape = "box"
            elif node in (report.result_var, report.unfold_var):
                shape = "doublecircle"
            else:
                shape = "ellipse"
            lines.append(
                '  %s [label="%s", shape=%s];'
                % (dot_id(node), labels.get(node, "v%d" % node), shape)
            )
        reason = graph.reason(v, w) or ""
        lines.append(
            '  %s -> %s [label="%s"];'
            % (dot_id(v), dot_id(w), reason.replace('"', "'")[:40])
        )
    if truncated:
        lines.append('  truncated [label="... (truncated)"];')
    lines.append("}")
    return "\n".join(lines)


def explain_function(linked, fname, force_residual=frozenset()):
    """Build a :class:`FunctionReport` for ``fname``.

    Re-infers the single definition against the program's final schemes
    (sound at the fixed point), keeping the constraint graph and its
    edge provenance alive for querying.
    """
    analysis = analyse_program(linked, force_residual=force_residual)
    module, d = linked.find_def(fname)
    inf = _DefInference(fname, analysis.schemes, fname in force_residual)
    scheme, finaliser = inf.infer_def(d)
    # Recover the graph variables of the interface.
    slot_to_real = {}
    for real, slot in finaliser.canon.slot_of.items():
        slot_to_real.setdefault(slot, real)
    inputs = scheme.inputs()
    input_vars = {
        input_name(i): slot_to_real[slot] for i, slot in enumerate(inputs)
    }
    result_var = slot_to_real[scheme.res.bt]
    param_vars = tuple(
        (pname, slot_to_real[arg.bt])
        for pname, arg in zip(d.params, scheme.args)
    )
    return FunctionReport(
        name=fname,
        inference=inf,
        input_vars=input_vars,
        result_var=result_var,
        unfold_var=inf_unfold_var(finaliser),
        param_vars=param_vars,
    )


def inf_unfold_var(finaliser):
    return finaliser.unfold_var
