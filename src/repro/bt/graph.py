"""The binding-time constraint graph.

All constraints the analysis generates are inequalities ``a <= b``
between binding-time variables and the constant ``D`` (``S`` is bottom,
so ``S <= x`` is vacuous and never stored).  Least upper bounds need no
special node: ``r = a ⊔ b`` in the *least* model is exactly the two edges
``a <= r`` and ``b <= r``.  Well-formedness of binding-time types
("anything inside a dynamic value is dynamic") is the edge from a node's
binding time to each child's binding time.

The principal solution of Henglein–Mossin-style analysis is the least
model of the constraint set, so after inference each variable's symbolic
value is simply *the set of parameter variables that reach it* (plus
``D`` if the ``D`` node reaches it).  :meth:`ConstraintGraph.solve`
computes that by a forward fixed point; :meth:`ConstraintGraph.closure`
projects the constraint set onto a set of interface variables, which is
how principal signatures are extracted.
"""

D_NODE = -1


class ConstraintGraph:
    """A growable graph of ``<=`` edges over integer variable ids."""

    def __init__(self):
        self._next = 0
        self._succ = {D_NODE: set()}
        self._reasons = {}
        self._context = None

    def fresh(self):
        """Allocate a fresh binding-time variable."""
        self._next += 1
        self._succ[self._next] = set()
        return self._next

    def var_count(self):
        return self._next

    def set_context(self, text):
        """Set the provenance recorded on subsequently added edges (used
        by the analysis so :mod:`repro.bt.explain` can answer "why is
        this dynamic?").  Returns the previous context."""
        previous = self._context
        self._context = text
        return previous

    def reason(self, a, b):
        """The provenance of the edge ``a <= b`` (or ``None``)."""
        return self._reasons.get((a, b))

    def edge(self, a, b):
        """Add the constraint ``a <= b``."""
        if a == b:
            return
        self._succ[a].add(b)
        if self._context is not None and (a, b) not in self._reasons:
            self._reasons[(a, b)] = self._context

    def equate(self, a, b):
        """Constrain ``a = b`` (edges both ways)."""
        self.edge(a, b)
        self.edge(b, a)

    def force_dynamic(self, v):
        """Constrain ``v = D``."""
        self.edge(D_NODE, v)

    def successors(self, v):
        return self._succ[v]

    def find_path(self, src, dst):
        """A shortest edge path from ``src`` to ``dst`` (BFS), as a list
        of ``(a, b)`` edges, or ``None`` if unreachable.  Used by the
        explanation tool."""
        if src == dst:
            return []
        parent = {src: None}
        frontier = [src]
        while frontier:
            next_frontier = []
            for v in frontier:
                for w in self._succ[v]:
                    if w in parent:
                        continue
                    parent[w] = v
                    if w == dst:
                        path = []
                        node = dst
                        while parent[node] is not None:
                            path.append((parent[node], node))
                            node = parent[node]
                        return list(reversed(path))
                    next_frontier.append(w)
            frontier = next_frontier
        return None

    def reachable_from(self, start):
        """All variables reachable from ``start`` (excluding ``start``
        unless it lies on a cycle)."""
        seen = set()
        stack = list(self._succ[start])
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(self._succ[v])
        return seen

    def solve(self, params):
        """Least solution as symbolic reach-sets.

        ``params`` is an ordered sequence of variable ids treated as free
        inputs.  Returns a dict mapping *every* variable id to a pair
        ``(frozenset of param ids reaching it, bool D-reaches-it)``.  A
        parameter always reaches itself.
        """
        reach = {}
        for p in params:
            hit = self.reachable_from(p)
            hit.add(p)
            for v in hit:
                reach.setdefault(v, set()).add(p)
        dyn = self.reachable_from(D_NODE)
        dyn.add(D_NODE)
        solution = {}
        for v in self._succ:
            if v == D_NODE:
                continue
            if v in dyn:
                solution[v] = (frozenset(), True)
            else:
                solution[v] = (frozenset(reach.get(v, ())), False)
        return solution

    def closure(self, interface):
        """Project the constraint set onto ``interface`` variables.

        Returns ``(edges, dyn)`` where ``edges`` is a frozenset of pairs
        ``(v, w)`` with ``v, w`` interface variables, ``v`` reaches ``w``
        in the full graph, and ``v != w``; and ``dyn`` is the frozenset of
        interface variables reachable from ``D``.  This is the paper's
        "property-independent" signature information: everything a caller
        ever needs to know about the constraints inside a definition.
        """
        interface = list(interface)
        interface_set = set(interface)
        edges = set()
        for v in interface:
            for w in self.reachable_from(v):
                if w in interface_set and w != v:
                    edges.add((v, w))
        dyn = frozenset(self.reachable_from(D_NODE) & interface_set)
        return frozenset(edges), dyn
