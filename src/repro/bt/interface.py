"""Binding-time interface files (Sec. 4.1).

"Once a module has been analysed, we write the binding-time types of the
functions it exports to a binding-time interface file.  When analysing
modules which import this one, we read their interface files and use the
information to analyse calls of imported functions."

Interface files are JSON (one per module, suffix ``.bti``), containing
the canonical :class:`~repro.bt.scheme.BTScheme` of every exported
function.  The :class:`InterfaceManager` implements the separate-analysis
workflow: a module is (re)analysed only when its source or any interface
it depends on is newer than its own interface file — the "once and for
all" property that lets library modules be prepared in advance.
"""

import json
import os

from repro.bt.analysis import analyse_module
from repro.bt.bttypes import BTTBase, BTTFun, BTTList, BTTPair, BTTSkel
from repro.bt.scheme import BTScheme

INTERFACE_SUFFIX = ".bti"
FORMAT_VERSION = 1


class InterfaceError(Exception):
    """A malformed or unreadable interface file."""


def _type_to_json(t):
    if isinstance(t, BTTBase):
        return ["base", t.name, t.bt]
    if isinstance(t, BTTSkel):
        return ["skel", t.id, t.bt]
    if isinstance(t, BTTList):
        return ["list", t.bt, _type_to_json(t.elem)]
    if isinstance(t, BTTPair):
        return ["pair", t.bt, _type_to_json(t.fst), _type_to_json(t.snd)]
    if isinstance(t, BTTFun):
        return ["fun", t.bt, _type_to_json(t.arg), _type_to_json(t.res)]
    raise TypeError("not a binding-time type: %r" % (t,))


def _type_from_json(j):
    try:
        tag = j[0]
        if tag == "base":
            return BTTBase(j[1], int(j[2]))
        if tag == "skel":
            return BTTSkel(int(j[1]), int(j[2]))
        if tag == "list":
            return BTTList(int(j[1]), _type_from_json(j[2]))
        if tag == "pair":
            return BTTPair(int(j[1]), _type_from_json(j[2]), _type_from_json(j[3]))
        if tag == "fun":
            return BTTFun(int(j[1]), _type_from_json(j[2]), _type_from_json(j[3]))
    except (IndexError, TypeError, ValueError):
        pass
    raise InterfaceError("malformed binding-time type: %r" % (j,))


def scheme_to_json(scheme):
    """A JSON-serialisable form of a canonical scheme."""
    return {
        "args": [_type_to_json(a) for a in scheme.args],
        "res": _type_to_json(scheme.res),
        "nslots": scheme.nslots,
        "unfold": scheme.unfold,
        "edges": sorted([a, b] for (a, b) in scheme.edges),
        "dyn": sorted(scheme.dyn),
    }


def scheme_from_json(j):
    try:
        return BTScheme(
            args=tuple(_type_from_json(a) for a in j["args"]),
            res=_type_from_json(j["res"]),
            nslots=int(j["nslots"]),
            unfold=int(j["unfold"]),
            edges=frozenset((int(a), int(b)) for a, b in j["edges"]),
            dyn=frozenset(int(s) for s in j["dyn"]),
        )
    except (KeyError, TypeError, ValueError) as e:
        raise InterfaceError("malformed scheme: %s" % e)


def write_interface(path, module_name, schemes):
    """Write one module's binding-time interface file."""
    payload = {
        "format": FORMAT_VERSION,
        "module": module_name,
        "schemes": {name: scheme_to_json(s) for name, s in schemes.items()},
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")


def read_interface(path):
    """Read an interface file; returns ``(module_name, schemes)``."""
    try:
        with open(path) as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise InterfaceError("cannot read %s: %s" % (path, e))
    if payload.get("format") != FORMAT_VERSION:
        raise InterfaceError(
            "%s: unsupported interface format %r" % (path, payload.get("format"))
        )
    schemes = {
        name: scheme_from_json(j) for name, j in payload["schemes"].items()
    }
    return payload["module"], schemes


class InterfaceManager:
    """Separate analysis driven by interface-file timestamps.

    Sources live as ``<Module>.mod`` in ``src_dir``; interfaces are kept
    in ``iface_dir`` as ``<Module>.bti``.  ``analyse`` processes modules
    in dependency order, skipping any module whose interface is up to
    date — which is exactly how a library vendor prepares modules "once
    and for all"."""

    def __init__(self, src_dir, iface_dir=None):
        self.src_dir = src_dir
        self.iface_dir = iface_dir or src_dir

    def source_path(self, module_name):
        return os.path.join(self.src_dir, module_name + ".mod")

    def interface_path(self, module_name):
        return os.path.join(self.iface_dir, module_name + INTERFACE_SUFFIX)

    def is_up_to_date(self, module_name, import_names):
        """True when the module's interface is newer than its source and
        than every imported interface."""
        ipath = self.interface_path(module_name)
        if not os.path.exists(ipath):
            return False
        itime = os.path.getmtime(ipath)
        if os.path.getmtime(self.source_path(module_name)) > itime:
            return False
        for dep in import_names:
            dep_path = self.interface_path(dep)
            if not os.path.exists(dep_path) or os.path.getmtime(dep_path) > itime:
                return False
        return True

    def analyse(self, linked, force_residual=frozenset(), force=False):
        """Analyse every out-of-date module of ``linked``; returns
        ``(schemes, analysed_module_names)``."""
        os.makedirs(self.iface_dir, exist_ok=True)
        schemes = {}
        analysed = []
        for module_name in linked.topo_order:
            module = linked.module(module_name)
            if not force and self.is_up_to_date(module_name, module.imports):
                _, cached = read_interface(self.interface_path(module_name))
                schemes.update(cached)
                continue
            visible = {}
            for dep in module.imports:
                dep_name, dep_schemes = read_interface(self.interface_path(dep))
                if dep_name != dep:
                    raise InterfaceError(
                        "interface file for %s names module %s" % (dep, dep_name)
                    )
                visible.update(dep_schemes)
            analysis = analyse_module(module, visible, force_residual)
            write_interface(
                self.interface_path(module_name), module_name, analysis.schemes
            )
            schemes.update(analysis.schemes)
            analysed.append(module_name)
        return schemes, analysed
