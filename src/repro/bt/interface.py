"""Binding-time interface files (Sec. 4.1).

"Once a module has been analysed, we write the binding-time types of the
functions it exports to a binding-time interface file.  When analysing
modules which import this one, we read their interface files and use the
information to analyse calls of imported functions."

Interface files are JSON (one per module, suffix ``.bti``), containing
the canonical :class:`~repro.bt.scheme.BTScheme` of every exported
function.  The serialisation is canonical (sorted keys, fixed layout),
so *byte equality of interface files coincides with semantic equality of
interfaces* — the property the content-addressed invalidation scheme
rests on.

Format v2 (``repro.bti/v2``) additionally carries a per-definition
scheme digest table (``"digests"``): the SHA-256 of each exported
scheme's canonical JSON.  Per-def digests are what lets the build key
a dependent module on *only the definitions it actually references*
rather than on the whole interface file — the definition-level early
cutoff.  v1 files (no digest table) are still read transparently; their
digests are derived from the parsed schemes on load.

All v1/v2 parsing, verification and digesting lives in
:class:`InterfaceStore`; the module-level helpers
(:func:`read_interface`, :func:`interface_from_text`) are thin wrappers
kept for compatibility.

The :class:`InterfaceManager` implements the separate-analysis workflow
with **content-digest invalidation**: each module's artifacts are keyed
by the SHA-256 of its source text plus the digests of its imports'
interface files (:func:`module_key`).  A module is re-analysed only when
that key changes — so ``touch`` and fresh checkouts cost nothing, and an
edit that leaves a module's interface byte-identical stops invalidation
propagating any further (early cutoff).  Writes are atomic (temp file +
``os.replace``), so concurrent builders never observe torn artifacts.
"""

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from repro.bt.analysis import analyse_module
from repro.bt.bttypes import BTTBase, BTTFun, BTTList, BTTPair, BTTSkel
from repro.bt.scheme import BTScheme

INTERFACE_SUFFIX = ".bti"
KEY_SUFFIX = ".bti.key"
FORMAT_VERSION = 2
SUPPORTED_FORMATS = (1, 2)

# Bumping this invalidates every cached artifact (interfaces, genext
# sources, code objects) — do so whenever the analysis or the cogen
# changes what it produces for the same input.
CACHE_EPOCH = 2


class InterfaceError(Exception):
    """A malformed or unreadable interface file."""


def _type_to_json(t):
    if isinstance(t, BTTBase):
        return ["base", t.name, t.bt]
    if isinstance(t, BTTSkel):
        return ["skel", t.id, t.bt]
    if isinstance(t, BTTList):
        return ["list", t.bt, _type_to_json(t.elem)]
    if isinstance(t, BTTPair):
        return ["pair", t.bt, _type_to_json(t.fst), _type_to_json(t.snd)]
    if isinstance(t, BTTFun):
        return ["fun", t.bt, _type_to_json(t.arg), _type_to_json(t.res)]
    raise TypeError("not a binding-time type: %r" % (t,))


def _type_from_json(j):
    try:
        tag = j[0]
        if tag == "base":
            return BTTBase(j[1], int(j[2]))
        if tag == "skel":
            return BTTSkel(int(j[1]), int(j[2]))
        if tag == "list":
            return BTTList(int(j[1]), _type_from_json(j[2]))
        if tag == "pair":
            return BTTPair(int(j[1]), _type_from_json(j[2]), _type_from_json(j[3]))
        if tag == "fun":
            return BTTFun(int(j[1]), _type_from_json(j[2]), _type_from_json(j[3]))
    except (IndexError, TypeError, ValueError):
        pass
    raise InterfaceError("malformed binding-time type: %r" % (j,))


def scheme_to_json(scheme):
    """A JSON-serialisable form of a canonical scheme."""
    return {
        "args": [_type_to_json(a) for a in scheme.args],
        "res": _type_to_json(scheme.res),
        "nslots": scheme.nslots,
        "unfold": scheme.unfold,
        "edges": sorted([a, b] for (a, b) in scheme.edges),
        "dyn": sorted(scheme.dyn),
    }


def scheme_from_json(j):
    try:
        return BTScheme(
            args=tuple(_type_from_json(a) for a in j["args"]),
            res=_type_from_json(j["res"]),
            nslots=int(j["nslots"]),
            unfold=int(j["unfold"]),
            edges=frozenset((int(a), int(b)) for a, b in j["edges"]),
            dyn=frozenset(int(s) for s in j["dyn"]),
        )
    except (KeyError, TypeError, ValueError) as e:
        raise InterfaceError("malformed scheme: %s" % e)


_SCHEME_DIGEST_SALT = b"mspec-scheme-digest\x00"


def scheme_digest(scheme):
    """SHA-256 hex digest of one scheme's canonical JSON serialisation.

    Because schemes are canonicalised before serialisation, equal
    digests mean equal (alpha-equivalent) binding-time schemes — the
    per-definition analogue of the whole-file digest property."""
    payload = json.dumps(
        scheme_to_json(scheme), sort_keys=True, separators=(",", ":")
    )
    h = hashlib.sha256(_SCHEME_DIGEST_SALT)
    h.update(payload.encode("utf-8"))
    return h.hexdigest()


_VERSION_DIGEST_SALT = b"mspec-version-digest\x00"

_PATTERN_CHARS = frozenset("SD")


def version_digest(scheme, pattern):
    """SHA-256 hex digest of one binding-time version of a scheme.

    ``pattern`` is the version's ground input pattern as a string of
    ``S``/``D`` characters (see :func:`repro.bt.scheme.pattern_str`).
    The digest covers the base scheme's digest plus the pattern, so it
    changes exactly when either does — the per-version analogue of
    :func:`scheme_digest` used by the polyvariant division's interface
    entries."""
    h = hashlib.sha256(_VERSION_DIGEST_SALT)
    h.update(scheme_digest(scheme).encode("utf-8"))
    h.update(b"\x00")
    h.update(pattern.encode("utf-8"))
    return h.hexdigest()


def interface_text(module_name, schemes, format=FORMAT_VERSION,
                   versions=None):
    """The canonical on-disk serialisation of one interface.

    Deterministic for a given ``(module_name, schemes, format)``: two
    analyses that agree on the schemes produce byte-identical files,
    which is what lets :func:`interface_digest` double as a semantic
    fingerprint.  Format 2 (the default) carries a per-definition
    scheme digest table; pass ``format=1`` to reproduce the legacy
    serialisation (used by the canonicality checker on old files).

    ``versions`` (``{def_name: (pattern_str, ...)}``) records a
    polyvariant division's binding-time versions, one digest per
    version.  The table is emitted only when non-empty and only at
    format 2 — a monovariant analysis produces byte-identical files
    with or without this parameter, and v1 files cannot carry it.
    """
    if format not in SUPPORTED_FORMATS:
        raise InterfaceError("cannot serialise interface format %r" % (format,))
    payload = {
        "format": format,
        "module": module_name,
        "schemes": {name: scheme_to_json(s) for name, s in schemes.items()},
    }
    if format >= 2:
        payload["digests"] = {
            name: scheme_digest(s) for name, s in schemes.items()
        }
        vtable = {}
        for name, patterns in (versions or {}).items():
            if name not in schemes:
                raise InterfaceError(
                    "versions table names %r but no such scheme is exported"
                    % (name,)
                )
            if patterns:
                vtable[name] = [
                    {"pattern": p, "digest": version_digest(schemes[name], p)}
                    for p in patterns
                ]
        if vtable:
            payload["versions"] = vtable
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def atomic_write_text(path, text):
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Readers never observe a torn file, and a crash mid-write leaves any
    previous contents intact."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp.", suffix="~")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def analysis_versions(manalysis):
    """The ``versions`` mapping of one
    :class:`~repro.bt.analysis.ModuleAnalysis` in the form
    :func:`interface_text` takes (``{def_name: (pattern_str, ...)}``).
    Empty for a monovariant analysis, so passing the result through
    unconditionally never changes a default interface file."""
    table = getattr(manalysis, "versions", None) or {}
    return {
        name: tuple(v.pattern_str for v in vs)
        for name, vs in table.items()
        if vs
    }


def write_interface(path, module_name, schemes, versions=None):
    """Write one module's binding-time interface file (atomically).

    Returns the serialised text."""
    text = interface_text(module_name, schemes, versions=versions)
    atomic_write_text(path, text)
    return text


@dataclass(frozen=True)
class Interface:
    """One parsed interface document (either on-disk format).

    ``digests`` is always populated — derived from the parsed schemes —
    so callers never branch on the format.  ``stored_digests`` is the
    digest table as present in the file (``None`` for v1 files), kept
    separate so :meth:`InterfaceStore.verify` can detect skew between
    the table and the schemes it claims to describe.

    ``versions`` is the polyvariant binding-time version table when the
    file carries one: ``{def_name: ((pattern, digest), ...)}``, in file
    order.  ``None`` for v1 files and for v2 files of monovariant
    analyses — absence means "no versions", so the common case costs
    nothing."""

    module: str
    schemes: Dict[str, BTScheme]
    digests: Dict[str, str]
    stored_digests: Optional[Dict[str, str]]
    format: int
    text: str
    versions: Optional[Dict[str, tuple]] = None

    def digest_of_def(self, name):
        """The scheme digest of one exported definition, or ``None``."""
        return self.digests.get(name)

    def versions_of_def(self, name):
        """The ``(pattern, digest)`` version entries of one definition,
        or ``()`` when the interface records none."""
        if self.versions is None:
            return ()
        return self.versions.get(name, ())


class InterfaceStore:
    """The single place v1/v2 interface documents are parsed, verified
    and digested.

    The three historical interface-reading entry points — the
    :func:`read_interface` helper, the ``repro.check.ifaces`` checker,
    and the pipeline's cache-digest code — all route through this class,
    so format evolution happens in exactly one file.  An optional
    ``iface_dir`` makes the name-based conveniences
    (:meth:`path`, :meth:`digest_of_def`) available."""

    def __init__(self, iface_dir=None):
        self.iface_dir = iface_dir

    def path(self, module_name):
        if self.iface_dir is None:
            raise ValueError("InterfaceStore has no iface_dir")
        return os.path.join(self.iface_dir, module_name + INTERFACE_SUFFIX)

    def load_text(self, text, origin="<interface>"):
        """Parse interface text into an :class:`Interface`.

        Raises :class:`InterfaceError` — naming ``origin`` — on corrupt,
        truncated, or structurally wrong input, never a bare
        ``json.JSONDecodeError``."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as e:
            raise InterfaceError("corrupt interface file %s: %s" % (origin, e))
        if not isinstance(payload, dict):
            raise InterfaceError(
                "%s: expected a JSON object, got %s"
                % (origin, type(payload).__name__)
            )
        format = payload.get("format")
        if format not in SUPPORTED_FORMATS:
            raise InterfaceError(
                "%s: unsupported interface format %r" % (origin, format)
            )
        module = payload.get("module")
        schemes_json = payload.get("schemes")
        if not isinstance(module, str) or not isinstance(schemes_json, dict):
            raise InterfaceError(
                "%s: missing or malformed 'module'/'schemes' fields" % origin
            )
        try:
            schemes = {
                name: scheme_from_json(j) for name, j in schemes_json.items()
            }
        except InterfaceError as e:
            raise InterfaceError("%s: %s" % (origin, e))
        stored = None
        if format >= 2:
            stored = payload.get("digests")
            if not isinstance(stored, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in stored.items()
            ):
                raise InterfaceError(
                    "%s: missing or malformed 'digests' table" % origin
                )
        versions = None
        if format >= 2 and "versions" in payload:
            versions = self._parse_versions(payload["versions"], origin)
        # The authoritative digests are always re-derived from the
        # schemes: a stale stored table can then never poison a cache
        # key — it is surfaced as skew by verify() instead.
        digests = {name: scheme_digest(s) for name, s in schemes.items()}
        return Interface(
            module=module,
            schemes=schemes,
            digests=digests,
            stored_digests=stored,
            format=format,
            text=text,
            versions=versions,
        )

    @staticmethod
    def _parse_versions(vjson, origin):
        if not isinstance(vjson, dict):
            raise InterfaceError(
                "%s: malformed 'versions' table" % origin
            )
        versions = {}
        for name, entries in vjson.items():
            if not isinstance(name, str) or not isinstance(entries, list):
                raise InterfaceError(
                    "%s: malformed 'versions' table" % origin
                )
            parsed = []
            for entry in entries:
                if (
                    not isinstance(entry, dict)
                    or not isinstance(entry.get("pattern"), str)
                    or not isinstance(entry.get("digest"), str)
                    or not set(entry["pattern"]) <= _PATTERN_CHARS
                ):
                    raise InterfaceError(
                        "%s: malformed version entry for %r" % (origin, name)
                    )
                parsed.append((entry["pattern"], entry["digest"]))
            versions[name] = tuple(parsed)
        return versions

    def load(self, path):
        """Read and parse one interface file."""
        try:
            with open(path) as f:
                text = f.read()
        except OSError as e:
            raise InterfaceError("cannot read %s: %s" % (path, e))
        return self.load_text(text, origin=path)

    def load_module(self, module_name):
        """Load ``<iface_dir>/<module_name>.bti``."""
        return self.load(self.path(module_name))

    def verify(self, iface):
        """Check a parsed interface's internal consistency.

        Returns a list of ``(rule, def_name, message)`` problems; empty
        means the document is self-consistent.  The interesting rule is
        ``def_digest_skew``: a v2 digest table that disagrees with the
        schemes next to it (a hand edit or a torn merge) — distinct
        from a corrupt file, because the schemes themselves parsed."""
        problems = []
        for name in sorted(iface.versions or {}):
            scheme = iface.schemes.get(name)
            for pattern, stored in iface.versions[name]:
                if scheme is None:
                    problems.append(
                        (
                            "version_digest_skew",
                            name,
                            "versions table names %r but no such scheme is "
                            "present" % name,
                        )
                    )
                    break
                derived = version_digest(scheme, pattern)
                if stored != derived:
                    problems.append(
                        (
                            "version_digest_skew",
                            name,
                            "stale digest for %r version %s: table has %s.., "
                            "scheme derives %s.."
                            % (name, pattern, stored[:12], derived[:12]),
                        )
                    )
        if iface.stored_digests is None:
            return problems
        for name in sorted(set(iface.stored_digests) | set(iface.digests)):
            stored = iface.stored_digests.get(name)
            derived = iface.digests.get(name)
            if stored is None:
                problems.append(
                    (
                        "def_digest_skew",
                        name,
                        "digest table has no entry for exported def %r" % name,
                    )
                )
            elif derived is None:
                problems.append(
                    (
                        "def_digest_skew",
                        name,
                        "digest table names %r but no such scheme is present"
                        % name,
                    )
                )
            elif stored != derived:
                problems.append(
                    (
                        "def_digest_skew",
                        name,
                        "stale digest for %r: table has %s.., scheme derives %s.."
                        % (name, stored[:12], derived[:12]),
                    )
                )
        return problems

    def digest_of_def(self, module_name, def_name):
        """The per-def scheme digest of ``def_name`` as exported by
        ``module_name``'s on-disk interface, or ``None`` when the
        interface or the definition is missing."""
        try:
            iface = self.load_module(module_name)
        except InterfaceError:
            return None
        return iface.digest_of_def(def_name)

    def file_digest(self, path):
        """Whole-file digest (see :func:`interface_digest`)."""
        return interface_digest(path)


_STORE = InterfaceStore()


def interface_from_text(text, origin="<interface>"):
    """Parse interface text; returns ``(module_name, schemes)``.

    Compatibility wrapper over :meth:`InterfaceStore.load_text`."""
    iface = _STORE.load_text(text, origin=origin)
    return iface.module, iface.schemes


def read_interface(path):
    """Read an interface file; returns ``(module_name, schemes)``.

    Compatibility wrapper over :meth:`InterfaceStore.load`."""
    iface = _STORE.load(path)
    return iface.module, iface.schemes


# ---------------------------------------------------------------------------
# Content-addressed artifact keys.
# ---------------------------------------------------------------------------

_KEY_SALT = b"mspec-artifact-key\x00"


def interface_digest(path):
    """SHA-256 hex digest of an interface file's bytes, or ``None`` if
    the file does not exist.  Because the serialisation is canonical,
    equal digests mean equal interfaces."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError:
        return None
    return hashlib.sha256(data).hexdigest()


def digest_text(text):
    """SHA-256 hex digest of a text artifact (canonical serialisation)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def module_key(source_bytes, dep_digests, force_residual=frozenset()):
    """The content-addressed cache key of one module's artifacts.

    ``sha256`` over: a salt and :data:`CACHE_EPOCH`, the module's source
    bytes, the analysis options that change its output
    (``force_residual``), and the *interface digests* of its direct
    imports (sorted by name).  Keying on the imports' interfaces — not
    their sources — is what gives early cutoff: an upstream edit that
    leaves an interface byte-identical leaves every downstream key
    unchanged.

    ``dep_digests`` is an iterable of ``(dep_name, digest_hex)``; a
    ``None`` digest (missing dep interface) poisons the key so the
    module can never appear up to date.
    """
    h = hashlib.sha256()
    h.update(_KEY_SALT)
    h.update(b"epoch=%d fmt=%d\x00" % (CACHE_EPOCH, FORMAT_VERSION))
    h.update(source_bytes)
    h.update(b"\x00")
    for name in sorted(force_residual):
        h.update(b"resid:")
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
    for dep, digest in sorted(dep_digests):
        h.update(dep.encode("utf-8"))
        h.update(b"=")
        h.update((digest or "<missing>").encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def module_key_v2(source_bytes, import_names, used_def_digests,
                  force_residual=frozenset()):
    """The definition-keyed cache key of one module's artifacts.

    Like :func:`module_key` but keyed on the *per-definition scheme
    digests of only the imported definitions the module syntactically
    references* (``used_def_digests``: ``(def_name, digest_hex)``
    pairs), not on whole dep interface files.  An upstream edit that
    changes the scheme of a definition this module never mentions —
    or that changes a body without changing any scheme — leaves this
    key unchanged, so the module is never re-analysed: early cutoff at
    definition granularity.

    The import *names* still participate (sorted), so adding or
    removing an import always invalidates even when the used-def set
    happens to be unchanged.  A ``None`` digest poisons the key."""
    h = hashlib.sha256()
    h.update(_KEY_SALT)
    h.update(b"epoch=%d fmt=%d defkeyed\x00" % (CACHE_EPOCH, FORMAT_VERSION))
    h.update(source_bytes)
    h.update(b"\x00")
    for name in sorted(force_residual):
        h.update(b"resid:")
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
    for name in sorted(import_names):
        h.update(b"import:")
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
    for fn, digest in sorted(used_def_digests):
        h.update(b"use:")
        h.update(fn.encode("utf-8"))
        h.update(b"=")
        h.update((digest or "<missing>").encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


class InterfaceManager:
    """Separate analysis driven by content digests.

    Sources live as ``<Module>.mod`` in ``src_dir``; interfaces are kept
    in ``iface_dir`` as ``<Module>.bti``, each alongside a
    ``<Module>.bti.key`` sidecar recording the :func:`module_key` it was
    built from.  ``analyse`` processes modules in dependency order,
    skipping any module whose recorded key still matches — which is
    exactly how a library vendor prepares modules "once and for all",
    and which (unlike timestamps) survives ``touch``, ``git checkout``,
    and edits that do not change an interface."""

    def __init__(self, src_dir, iface_dir=None):
        self.src_dir = src_dir
        self.iface_dir = iface_dir or src_dir

    def source_path(self, module_name):
        return os.path.join(self.src_dir, module_name + ".mod")

    def interface_path(self, module_name):
        return os.path.join(self.iface_dir, module_name + INTERFACE_SUFFIX)

    def key_path(self, module_name):
        return os.path.join(self.iface_dir, module_name + KEY_SUFFIX)

    def current_key(self, module_name, import_names, force_residual=frozenset()):
        """The module's key as computed from what is on disk right now,
        or ``None`` when the source or a dep interface is missing."""
        try:
            with open(self.source_path(module_name), "rb") as f:
                source_bytes = f.read()
        except OSError:
            return None
        deps = []
        for dep in import_names:
            digest = interface_digest(self.interface_path(dep))
            if digest is None:
                return None
            deps.append((dep, digest))
        return module_key(source_bytes, deps, force_residual)

    def is_up_to_date(self, module_name, import_names, force_residual=frozenset()):
        """True when the interface's recorded content key matches the
        key recomputed from the current source and dep interfaces."""
        if not os.path.exists(self.interface_path(module_name)):
            return False
        try:
            with open(self.key_path(module_name)) as f:
                recorded = f.read().strip()
        except OSError:
            return False
        current = self.current_key(module_name, import_names, force_residual)
        return current is not None and recorded == current

    def analyse(self, linked, force_residual=frozenset(), force=False):
        """Analyse every out-of-date module of ``linked``; returns
        ``(schemes, analysed_module_names)``."""
        os.makedirs(self.iface_dir, exist_ok=True)
        schemes = {}
        analysed = []
        for module_name in linked.topo_order:
            module = linked.module(module_name)
            if not force and self.is_up_to_date(
                module_name, module.imports, force_residual
            ):
                _, cached = read_interface(self.interface_path(module_name))
                schemes.update(cached)
                continue
            visible = {}
            for dep in module.imports:
                dep_name, dep_schemes = read_interface(self.interface_path(dep))
                if dep_name != dep:
                    raise InterfaceError(
                        "interface file for %s names module %s" % (dep, dep_name)
                    )
                visible.update(dep_schemes)
            analysis = analyse_module(module, visible, force_residual)
            write_interface(
                self.interface_path(module_name), module_name, analysis.schemes
            )
            key = self.current_key(module_name, module.imports, force_residual)
            atomic_write_text(self.key_path(module_name), key + "\n")
            schemes.update(analysis.schemes)
            analysed.append(module_name)
        return schemes, analysed
