"""Polymorphic (symbolic) binding-time analysis.

This package implements the paper's central enabling technology
(Sec. 4.1): a binding-time analysis in the style of Henglein & Mossin
[HM94] as extended by Dussart, Henglein & Mossin [DHM95], factored into a
property-independent part run once per module and a property-dependent
part deferred to specialisation time.

* :mod:`repro.bt.bt` — the binding-time lattice ``S < D``, symbolic
  binding times (lubs of variables), and evaluation.
* :mod:`repro.bt.graph` — the inequality-constraint graph and its
  least-solution / closure computations.
* :mod:`repro.bt.bttypes` — binding-time types: type skeletons carrying a
  binding time on every node, with skeleton variables for Hindley–Milner
  type polymorphism, plus their unifier and coercion discipline.
* :mod:`repro.bt.scheme` — principal binding-time schemes (qualified
  types): canonical signatures written to interface files.
* :mod:`repro.bt.analysis` — per-module inference with polymorphic
  recursion by fixed-point iteration; emits annotated definitions.
* :mod:`repro.bt.interface` — binding-time interface files.
"""

from repro.bt.bt import BT, D, S, BTAExprError, bt_lub, bt_of_bool, evaluate
from repro.bt.graph import ConstraintGraph
from repro.bt.scheme import BTScheme
from repro.bt.analysis import BTAError, ModuleAnalysis, analyse_module, analyse_program

__all__ = [
    "BT",
    "BTAError",
    "BTAExprError",
    "BTScheme",
    "ConstraintGraph",
    "D",
    "ModuleAnalysis",
    "S",
    "analyse_module",
    "analyse_program",
    "bt_lub",
    "bt_of_bool",
    "evaluate",
]
