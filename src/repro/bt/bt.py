"""The binding-time lattice and symbolic binding times.

The lattice is two-point: ``S < D`` (Fig. 2).  A *symbolic* binding time
— what annotations in an analysed module contain — is a least upper bound
of named binding-time parameters and possibly the constant ``D``; the
constant ``S`` is the empty lub.  At specialisation time the generating
extension evaluates these lubs against the actual parameters (``S`` or
``D``) supplied by the caller.

:class:`BT` is the normal form: a frozenset of parameter names plus a
dynamic flag.  ``D`` absorbs everything, so a dynamic :class:`BT` keeps
no parameters.
"""

from dataclasses import dataclass
from typing import FrozenSet


class BTAExprError(Exception):
    """A malformed symbolic binding time (unknown parameter, bad value)."""


@dataclass(frozen=True)
class BT:
    """A symbolic binding time: ``lub(params) ⊔ (D if dyn)``."""

    params: FrozenSet[str]
    dyn: bool

    def __post_init__(self):
        if self.dyn and self.params:
            object.__setattr__(self, "params", frozenset())

    @property
    def is_static(self):
        """True when this is the constant ``S``."""
        return not self.dyn and not self.params

    @property
    def is_dynamic(self):
        """True when this is the constant ``D``."""
        return self.dyn

    def __str__(self):
        if self.dyn:
            return "D"
        if not self.params:
            return "S"
        return "|".join(sorted(self.params))


S = BT(frozenset(), False)
D = BT(frozenset(), True)


def var(name):
    """The symbolic binding time consisting of one parameter."""
    return BT(frozenset([name]), False)


def bt_lub(*bts):
    """Least upper bound of symbolic binding times.

    Returns the shared ``S``/``D`` singletons (no allocation) whenever
    the result is a constant — the only case generating extensions ever
    hit, since their operands are concrete at specialisation time."""
    params = None
    for b in bts:
        if b.dyn:
            return D
        if b.params:
            params = b.params if params is None else params | b.params
    if params is None:
        return S
    return BT(params, False)


def bt_of_bool(dynamic):
    """``D`` if ``dynamic`` else ``S`` — handy for building goals."""
    return D if dynamic else S


def evaluate(bt, env):
    """Evaluate a symbolic binding time to a concrete ``S``/``D``.

    ``env`` maps parameter names to concrete :class:`BT` values (``S`` or
    ``D``).  This is the property-dependent step of the factorised
    analysis, performed on the fly by generating extensions.
    """
    if bt.dyn:
        return D
    for p in bt.params:
        try:
            value = env[p]
        except KeyError:
            raise BTAExprError("unbound binding-time parameter %r" % p)
        if value.dyn:
            return D
        if not value.is_static:
            raise BTAExprError(
                "binding-time parameter %r bound to symbolic %s" % (p, value)
            )
    return S


def substitute(bt, env):
    """Substitute symbolic binding times for parameters in ``bt``.

    Unlike :func:`evaluate`, the substituted values may themselves be
    symbolic; used when one generating extension instantiates the
    signature of another symbolically (tests, pretty-printing).
    """
    if bt.dyn:
        return D
    out = S
    for p in bt.params:
        try:
            out = bt_lub(out, env[p])
        except KeyError:
            raise BTAExprError("unbound binding-time parameter %r" % p)
    return out
