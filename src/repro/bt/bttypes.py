"""Binding-time types: type skeletons carrying binding times.

A binding-time type mirrors the underlying Hindley–Milner type and
carries a binding time on **every** node (Sec. 4.1: expressions of base
type get a simple binding time, anonymous functions get types of the form
``a ->b p``; we extend the same idea to lists and pairs).  Type
polymorphism is represented by *skeleton variables* (:class:`BTTSkel`),
which stand for an unknown type structure but still expose a top binding
time; they are the extension the paper made to handle Hindley–Milner
typed programs.

The ``bt`` field of a node is polymorphic in representation:

* during inference it is an ``int`` — a variable in the
  :class:`~repro.bt.graph.ConstraintGraph`;
* in canonical schemes it is a small canonical slot index;
* in annotated programs it is a symbolic :class:`~repro.bt.bt.BT`;
* at specialisation time it is the concrete ``S`` or ``D``.

Well-formedness (a dynamic value has only dynamic components) is enforced
by generating ``parent <= child`` edges whenever a node is built during
inference — see :func:`well_formed`.
"""

from dataclasses import dataclass
from typing import Tuple


class BTType:
    """Base class of binding-time types."""

    __slots__ = ()


@dataclass(frozen=True)
class BTTBase(BTType):
    """A base type (``Nat`` or ``Bool``) with its binding time."""

    name: str
    bt: object


@dataclass(frozen=True)
class BTTList(BTType):
    """A list type: spine binding time plus element binding-time type."""

    bt: object
    elem: BTType


@dataclass(frozen=True)
class BTTPair(BTType):
    """A pair type: constructor binding time plus component types."""

    bt: object
    fst: BTType
    snd: BTType


@dataclass(frozen=True)
class BTTFun(BTType):
    """An anonymous-function type ``arg ->bt res`` (Fig. 2's ``T ->B T``)."""

    bt: object
    arg: BTType
    res: BTType


@dataclass(frozen=True)
class BTTSkel(BTType):
    """A skeleton variable: unknown structure with a top binding time.

    ``id`` identifies the variable; two occurrences with the same id
    stand for the same (unknown) structure.
    """

    id: int
    bt: object


def top(t):
    """The binding time at the root of ``t``."""
    return t.bt


def btt_children(t):
    if isinstance(t, (BTTBase, BTTSkel)):
        return ()
    if isinstance(t, BTTList):
        return (t.elem,)
    if isinstance(t, BTTPair):
        return (t.fst, t.snd)
    if isinstance(t, BTTFun):
        return (t.arg, t.res)
    raise TypeError("not a binding-time type: %r" % (t,))


def map_bts(t, f):
    """Rebuild ``t`` applying ``f`` to every binding-time slot."""
    if isinstance(t, BTTBase):
        return BTTBase(t.name, f(t.bt))
    if isinstance(t, BTTSkel):
        return BTTSkel(t.id, f(t.bt))
    if isinstance(t, BTTList):
        return BTTList(f(t.bt), map_bts(t.elem, f))
    if isinstance(t, BTTPair):
        return BTTPair(f(t.bt), map_bts(t.fst, f), map_bts(t.snd, f))
    if isinstance(t, BTTFun):
        return BTTFun(f(t.bt), map_bts(t.arg, f), map_bts(t.res, f))
    raise TypeError("not a binding-time type: %r" % (t,))


def bt_slots(t):
    """All binding-time slots of ``t`` in preorder (with repetition)."""
    out = [t.bt]
    for c in btt_children(t):
        out.extend(bt_slots(c))
    return out


def skel_vars(t):
    """All skeleton-variable ids in ``t``, preorder, with repetition."""
    if isinstance(t, BTTSkel):
        return [t.id]
    out = []
    for c in btt_children(t):
        out.extend(skel_vars(c))
    return out


class BTUnifyError(Exception):
    """Two binding-time types have incompatible shapes."""


class BTUnifier:
    """Unification and coercion generation over binding-time types.

    Owns the skeleton-variable bindings; binding-time constraints go into
    the :class:`~repro.bt.graph.ConstraintGraph` supplied at construction.
    """

    def __init__(self, graph):
        self.graph = graph
        self._next_skel = 0
        self._binding = {}  # skel id -> BTType

    def alloc_skel_id(self):
        """Allocate a fresh skeleton-variable id (no binding time)."""
        self._next_skel += 1
        return self._next_skel

    def fresh_skel(self):
        """A fresh skeleton variable with a fresh top binding time."""
        return BTTSkel(self.alloc_skel_id(), self.graph.fresh())

    def fresh_base(self, name):
        return BTTBase(name, self.graph.fresh())

    def resolve(self, t):
        """Follow skeleton-variable bindings at the root.

        The variable's own top was equated with the structure's top when
        the binding was made, so resolution is a pure query.
        """
        while isinstance(t, BTTSkel) and t.id in self._binding:
            t = self._binding[t.id]
        return t

    def deep(self, t):
        """Fully resolve ``t`` (children included)."""
        t = self.resolve(t)
        if isinstance(t, (BTTBase, BTTSkel)):
            return t
        if isinstance(t, BTTList):
            return BTTList(t.bt, self.deep(t.elem))
        if isinstance(t, BTTPair):
            return BTTPair(t.bt, self.deep(t.fst), self.deep(t.snd))
        if isinstance(t, BTTFun):
            return BTTFun(t.bt, self.deep(t.arg), self.deep(t.res))
        raise TypeError("not a binding-time type: %r" % (t,))

    def _occurs(self, skel_id, t):
        t = self.resolve(t)
        if isinstance(t, BTTSkel):
            return t.id == skel_id
        return any(self._occurs(skel_id, c) for c in btt_children(t))

    def unify(self, a, b):
        """Equate ``a`` and ``b``: same shape, equal binding times."""
        a = self.resolve(a)
        b = self.resolve(b)
        if isinstance(a, BTTSkel) and isinstance(b, BTTSkel) and a.id == b.id:
            self.graph.equate(a.bt, b.bt)
            return
        if isinstance(a, BTTSkel):
            if self._occurs(a.id, b):
                raise BTUnifyError("occurs check in binding-time skeleton")
            self.graph.equate(a.bt, b.bt)
            self._binding[a.id] = b
            return
        if isinstance(b, BTTSkel):
            self.unify(b, a)
            return
        if isinstance(a, BTTBase) and isinstance(b, BTTBase):
            if a.name != b.name:
                raise BTUnifyError("cannot unify %s with %s" % (a.name, b.name))
            self.graph.equate(a.bt, b.bt)
            return
        if isinstance(a, BTTList) and isinstance(b, BTTList):
            self.graph.equate(a.bt, b.bt)
            self.unify(a.elem, b.elem)
            return
        if isinstance(a, BTTPair) and isinstance(b, BTTPair):
            self.graph.equate(a.bt, b.bt)
            self.unify(a.fst, b.fst)
            self.unify(a.snd, b.snd)
            return
        if isinstance(a, BTTFun) and isinstance(b, BTTFun):
            self.graph.equate(a.bt, b.bt)
            self.unify(a.arg, b.arg)
            self.unify(a.res, b.res)
            return
        raise BTUnifyError(
            "shape mismatch: %s vs %s" % (type(a).__name__, type(b).__name__)
        )

    def instantiate_like(self, t):
        """A fresh type with the same shape as ``t`` but fresh binding
        times everywhere (unbound skeleton children become fresh
        skeletons).  Well-formedness edges are generated for the copy."""
        t = self.resolve(t)
        if isinstance(t, BTTSkel):
            return self.fresh_skel()
        if isinstance(t, BTTBase):
            return BTTBase(t.name, self.graph.fresh())
        if isinstance(t, BTTList):
            out = BTTList(self.graph.fresh(), self.instantiate_like(t.elem))
        elif isinstance(t, BTTPair):
            out = BTTPair(
                self.graph.fresh(),
                self.instantiate_like(t.fst),
                self.instantiate_like(t.snd),
            )
        elif isinstance(t, BTTFun):
            out = BTTFun(
                self.graph.fresh(),
                self.instantiate_like(t.arg),
                self.instantiate_like(t.res),
            )
        else:
            raise TypeError("not a binding-time type: %r" % (t,))
        self.well_formed(out)
        return out

    def coerce(self, a, b):
        """Constrain "a value of type ``a`` can be coerced to type ``b``".

        Coercions may only *raise* binding times (``S < D``), covariantly
        at base, list, and pair nodes.  Function components are equated:
        a closure coerced into a more dynamic context must already expect
        dynamic argument/result (well-formedness then makes the whole
        closure residualisable), which matches the paper's treatment of
        static functions passed to residual positions.

        An *unbound* skeleton variable on one side is first bound to a
        fresh same-shaped copy of the other side, then coerced
        structurally (instantiate-then-coerce).  Binding it directly to
        the other side would *equate* the binding times, aliasing
        parameters with the operations performed on them and losing
        principality (a dynamic use would drag unrelated parameters
        dynamic).  Only when both sides are unknown structure do we fall
        back to unification.
        """
        a = self.resolve(a)
        b = self.resolve(b)
        if isinstance(a, BTTSkel) and isinstance(b, BTTSkel):
            self.unify(a, b)
            return
        if isinstance(a, BTTSkel):
            if self._occurs(a.id, b):
                raise BTUnifyError("occurs check in binding-time coercion")
            copy = self.instantiate_like(b)
            self.graph.equate(a.bt, copy.bt)
            self._binding[a.id] = copy
            self.coerce(copy, b)
            return
        if isinstance(b, BTTSkel):
            if self._occurs(b.id, a):
                raise BTUnifyError("occurs check in binding-time coercion")
            copy = self.instantiate_like(a)
            self.graph.equate(b.bt, copy.bt)
            self._binding[b.id] = copy
            self.coerce(a, copy)
            return
        if isinstance(a, BTTBase) and isinstance(b, BTTBase):
            if a.name != b.name:
                raise BTUnifyError("cannot coerce %s to %s" % (a.name, b.name))
            self.graph.edge(a.bt, b.bt)
            return
        if isinstance(a, BTTList) and isinstance(b, BTTList):
            self.graph.edge(a.bt, b.bt)
            self.coerce(a.elem, b.elem)
            return
        if isinstance(a, BTTPair) and isinstance(b, BTTPair):
            self.graph.edge(a.bt, b.bt)
            self.coerce(a.fst, b.fst)
            self.coerce(a.snd, b.snd)
            return
        if isinstance(a, BTTFun) and isinstance(b, BTTFun):
            self.graph.edge(a.bt, b.bt)
            self.unify(a.arg, b.arg)
            self.unify(a.res, b.res)
            return
        raise BTUnifyError(
            "shape mismatch in coercion: %s vs %s"
            % (type(a).__name__, type(b).__name__)
        )

    def well_formed(self, t):
        """Generate well-formedness edges for a freshly built skeleton.

        Every composite node's binding time flows to its children's tops:
        if the node is dynamic, everything inside is dynamic (the paper's
        "dynamic function types must have purely dynamic arguments and
        results", generalised to lists and pairs).
        """
        previous = self.graph.set_context(
            "well-formedness: components of a dynamic value are dynamic"
        )
        try:
            self._well_formed(t)
        finally:
            self.graph.set_context(previous)

    def _well_formed(self, t):
        t = self.resolve(t)
        for c in btt_children(t):
            c = self.resolve(c)
            self.graph.edge(t.bt, c.bt)
            self._well_formed(c)
