"""Per-module polymorphic binding-time analysis (Sec. 4.1).

The analysis processes one module at a time, needing only the binding-time
interfaces of imported modules (never the uses of the module being
analysed).  For each definition it infers a *principal* binding-time
scheme — polymorphic in binding-time variables, with subtype
qualifications — and elaborates the definition into annotated form
(Fig. 2) with symbolic annotations over the definition's binding-time
parameters.

Inference is constraint-based: every binding-time slot is a variable in a
:class:`~repro.bt.graph.ConstraintGraph`; lubs and well-formedness are
``<=`` edges; the principal solution is the least model.  Recursive
definitions get *polymorphic recursion* in binding times (DHM95) by
Kleene iteration per strongly connected component of the call graph,
starting from the most general (unconstrained) signature.

The unfold/residualise annotation of a definition is the lub of the
binding times of all conditionals in its body, and flows into the top of
the result type (a residualised function yields a dynamic result) — the
paper's conservative Similix-style strategy.

Two optional strategy upgrades (``repro.api.SpecOptions``) sit on top:

* ``unfolding="size-change"`` replaces the Similix unfold rule for the
  recursive components where :mod:`repro.bt.sizechange` proves that
  unfolding quasi-terminates: the unfold flag becomes the lub of the
  *proof's required parameters* instead of the body's conditionals, so
  a provably decreasing loop over a static structure unfolds even under
  dynamic control.
* ``division="poly"`` adds a polyvariant binding-time division: each
  definition is additionally cloned into per-pattern *binding-time
  versions* (:class:`BTVersion`) — one per consistent ground valuation
  of its scheme's inputs, capped by ``max_bt_versions`` — with every
  annotation pre-evaluated.  The base symbolic definition remains the
  single source of truth; versions are derived views the cogen compiles
  into constant-propagated generating extensions.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.anno.ast import (
    AApp,
    ACall,
    ACoerce,
    ADef,
    AIf,
    ALam,
    ALit,
    AModule,
    APrim,
    AProgram,
    AVar,
    acalled_functions,
    afree_vars,
)
from repro.bt import bt as btmod
from repro.bt.bttypes import (
    BTTBase,
    BTTFun,
    BTTList,
    BTTPair,
    BTTSkel,
    BTUnifier,
    BTUnifyError,
    map_bts,
)
from repro.bt.graph import ConstraintGraph
from repro.bt.scheme import (
    BTScheme,
    Canonicaliser,
    ground_patterns,
    input_name,
    instantiate,
    pattern_str,
)
from repro.bt.sizechange import sct_unfold_params
from repro.types.infer import module_def_sccs

_MAX_FIXPOINT_ITERATIONS = 50

DIVISIONS = ("mono", "poly")
UNFOLDINGS = ("lub", "size-change")
DEFAULT_MAX_BT_VERSIONS = 8


def _check_strategies(division, unfolding):
    if division not in DIVISIONS:
        raise ValueError(
            "division must be one of %r, got %r" % (DIVISIONS, division)
        )
    if unfolding not in UNFOLDINGS:
        raise ValueError(
            "unfolding must be one of %r, got %r" % (UNFOLDINGS, unfolding)
        )

_ARITH = ("+", "-", "*", "div", "mod")
_CMP = ("==", "<", "<=")
_BOOL2 = ("and", "or")


class BTAError(Exception):
    """The binding-time analysis failed (shape error, divergence, ...)."""


def most_general_scheme(arity):
    """The unconstrained signature assumed for a recursive definition on
    the first fixed-point iteration: fresh skeleton variables everywhere,
    no constraints."""
    args = tuple(BTTSkel(i, i) for i in range(arity))
    res = BTTSkel(arity, arity)
    return BTScheme(
        args=args,
        res=res,
        nslots=arity + 2,
        unfold=arity + 1,
        edges=frozenset(),
        dyn=frozenset(),
    )


@dataclass
class DefAnalysis:
    """The result of analysing one definition."""

    scheme: BTScheme
    annotated: ADef


@dataclass(frozen=True)
class BTVersion:
    """One binding-time version of a definition (polyvariant division).

    ``pattern`` is a ground valuation of the base definition's
    binding-time parameters (aligned with ``adef.bt_params``);
    ``unfold`` is the base unfold annotation evaluated under it.  The
    version's annotated body is derivable on demand via
    :func:`ground_adef` — versions carry no duplicated syntax."""

    base: str
    index: int
    pattern: Tuple[btmod.BT, ...]
    unfold: btmod.BT

    @property
    def name(self):
        return "%s__btv%d" % (self.base, self.index)

    @property
    def pattern_str(self):
        return pattern_str(self.pattern)

    def env(self, bt_params):
        return dict(zip(bt_params, self.pattern))


def ground_versions(adef, scheme, cap):
    """The binding-time versions of one analysed definition: one per
    consistent ground pattern of its scheme, capped at ``cap``.  A
    definition with fewer than two patterns gets none (a single version
    would duplicate the base for no dispatch win)."""
    patterns = ground_patterns(scheme, cap)
    if len(patterns) < 2:
        return ()
    versions = []
    for i, pattern in enumerate(patterns):
        env = dict(zip(adef.bt_params, pattern))
        versions.append(
            BTVersion(
                base=adef.name,
                index=i,
                pattern=pattern,
                unfold=btmod.evaluate(adef.unfold, env),
            )
        )
    return tuple(versions)


def ground_adef(adef, env):
    """``adef`` with every symbolic annotation evaluated under ``env``
    (a ground valuation of its binding-time parameters) — the
    materialised form of one :class:`BTVersion`, used by the lint's
    per-version well-annotatedness pass."""
    final_bt = lambda b: btmod.evaluate(b, env)
    final_type = lambda t: map_bts(t, final_bt)
    return ADef(
        name=adef.name,
        bt_params=adef.bt_params,
        params=adef.params,
        body=_final_expr(adef.body, final_bt, final_type),
        unfold=final_bt(adef.unfold),
        param_types=tuple(final_type(t) for t in adef.param_types),
        res_type=final_type(adef.res_type),
    )


@dataclass
class ModuleAnalysis:
    """The result of analysing one module: its binding-time interface
    (one scheme per definition) plus the annotated module.

    ``deps`` maps each definition to the function names whose schemes
    its inference actually read — the paper's "analyse a module without
    knowing its uses" claim pushed down to definitions, and the edges
    the incremental engine cuts invalidation along."""

    name: str
    schemes: Dict[str, BTScheme]
    annotated: AModule
    deps: Dict[str, frozenset] = field(default_factory=dict)
    # Polyvariant division only: def name -> its binding-time versions
    # (empty under the default monovariant division).
    versions: Dict[str, Tuple[BTVersion, ...]] = field(default_factory=dict)


@dataclass
class ProgramAnalysis:
    """Analyses of every module, in topological order."""

    modules: Tuple[ModuleAnalysis, ...]
    schemes: Dict[str, BTScheme]
    annotated: AProgram


class _DefInference:
    """One inference pass over one definition."""

    def __init__(self, def_name, env, force_residual, sct_params=None):
        self.def_name = def_name
        self.env = env  # function name -> BTScheme
        self.graph = ConstraintGraph()
        self.unifier = BTUnifier(self.graph)
        self.cond_bts = []
        self.force_residual = force_residual
        # Size-change unfolding: parameters whose binding times gate the
        # unfold flag instead of the body's conditionals (None = Similix).
        self.sct_params = sct_params
        self._lam_counter = 0
        # Names whose schemes this inference actually read (imported or
        # same-module) — the def-level dependency edges the incremental
        # engine keys on.
        self.reads = set()

    # -- fresh skeleton constructors (always well-formed) -----------------

    def _base(self, name):
        return BTTBase(name, self.graph.fresh())

    def _fresh_list(self):
        t = BTTList(self.graph.fresh(), self.unifier.fresh_skel())
        self.unifier.well_formed(t)
        return t

    def _fresh_pair(self):
        t = BTTPair(
            self.graph.fresh(), self.unifier.fresh_skel(), self.unifier.fresh_skel()
        )
        self.unifier.well_formed(t)
        return t

    def _fresh_fun(self):
        t = BTTFun(
            self.graph.fresh(), self.unifier.fresh_skel(), self.unifier.fresh_skel()
        )
        self.unifier.well_formed(t)
        return t

    # -- plumbing -----------------------------------------------------------

    def _fail(self, message):
        raise BTAError("in %s: %s" % (self.def_name, message))

    def _unify(self, a, b, what):
        previous = self.graph.set_context(what)
        try:
            self.unifier.unify(a, b)
        except BTUnifyError as e:
            self._fail("%s: %s" % (what, e))
        finally:
            self.graph.set_context(previous)

    def _coerce_expr(self, aexpr, src, dst, what="coercion"):
        """Record that ``aexpr : src`` is used at type ``dst``; wraps the
        expression in a (possibly identity) coercion node."""
        previous = self.graph.set_context(what)
        try:
            self.unifier.coerce(src, dst)
        except BTUnifyError as e:
            self._fail("%s: %s" % (what, e))
        finally:
            self.graph.set_context(previous)
        return ACoerce(src, dst, aexpr)

    def _join_shape(self, a, b, what):
        """A fresh upper-bound skeleton for two same-shaped types.

        Base/list/pair nodes get fresh binding times (so branch binding
        times are properly lubbed, not equated); function children are
        taken from one side (the subsequent coercions equate them)."""
        a = self.unifier.resolve(a)
        b = self.unifier.resolve(b)
        if isinstance(a, BTTSkel) and isinstance(b, BTTSkel):
            # Both branches of unknown structure: nothing to copy, so the
            # branches are equated (the unavoidable conservatism of
            # joining two type variables).
            self._unify(a, b, what)
            return self.unifier.resolve(a)
        if isinstance(a, BTTSkel):
            return self._join_shape(self.unifier.instantiate_like(b), b, what)
        if isinstance(b, BTTSkel):
            return self._join_shape(a, self.unifier.instantiate_like(a), what)
        if isinstance(a, BTTBase) and isinstance(b, BTTBase):
            if a.name != b.name:
                self._fail("%s: %s vs %s" % (what, a.name, b.name))
            return BTTBase(a.name, self.graph.fresh())
        if isinstance(a, BTTList) and isinstance(b, BTTList):
            t = BTTList(self.graph.fresh(), self._join_shape(a.elem, b.elem, what))
            self.unifier.well_formed(t)
            return t
        if isinstance(a, BTTPair) and isinstance(b, BTTPair):
            t = BTTPair(
                self.graph.fresh(),
                self._join_shape(a.fst, b.fst, what),
                self._join_shape(a.snd, b.snd, what),
            )
            self.unifier.well_formed(t)
            return t
        if isinstance(a, BTTFun) and isinstance(b, BTTFun):
            t = BTTFun(self.graph.fresh(), a.arg, a.res)
            self.unifier.well_formed(t)
            return t
        self._fail(
            "%s: shape mismatch %s vs %s"
            % (what, type(a).__name__, type(b).__name__)
        )

    # -- inference ---------------------------------------------------------

    def infer_expr(self, expr, locals_):
        from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var

        g = self.graph
        if isinstance(expr, Lit):
            if isinstance(expr.value, bool):
                return self._base("Bool"), ALit(expr.value)
            if expr.value == ():
                return self._fresh_list(), ALit(expr.value)
            return self._base("Nat"), ALit(expr.value)
        if isinstance(expr, Var):
            return locals_[expr.name], AVar(expr.name)
        if isinstance(expr, Prim):
            return self._infer_prim(expr, locals_)
        if isinstance(expr, If):
            tc, ac = self.infer_expr(expr.cond, locals_)
            bc = g.fresh()
            ac = self._coerce_expr(ac, tc, BTTBase("Bool", bc), "condition")
            self.cond_bts.append(bc)
            t1, a1 = self.infer_expr(expr.then_branch, locals_)
            t2, a2 = self.infer_expr(expr.else_branch, locals_)
            rho = self._join_shape(t1, t2, "branches of 'if'")
            previous = g.set_context(
                "the result of a conditional depends on its test"
            )
            g.edge(bc, rho.bt)
            g.set_context(previous)
            a1 = self._coerce_expr(a1, t1, rho, "then-branch")
            a2 = self._coerce_expr(a2, t2, rho, "else-branch")
            return rho, AIf(bc, ac, a1, a2)
        if isinstance(expr, Call):
            scheme = self.env.get(expr.func)
            if scheme is None:
                self._fail("no binding-time scheme for %r" % expr.func)
            self.reads.add(expr.func)
            fargs, fres, slot_map = instantiate(scheme, g, self.unifier)
            if len(fargs) != len(expr.args):
                self._fail(
                    "%r expects %d arguments, got %d"
                    % (expr.func, len(fargs), len(expr.args))
                )
            coerced = []
            for i, a in enumerate(expr.args):
                ti, ai = self.infer_expr(a, locals_)
                coerced.append(
                    self._coerce_expr(
                        ai, ti, fargs[i], "argument %d of %r" % (i + 1, expr.func)
                    )
                )
            bt_args = tuple(slot_map[s] for s in scheme.inputs())
            return fres, ACall(expr.func, bt_args, tuple(coerced))
        if isinstance(expr, Lam):
            tx = self.unifier.fresh_skel()
            inner = dict(locals_)
            inner[expr.var] = tx
            tb, ab = self.infer_expr(expr.body, inner)
            t = BTTFun(g.fresh(), tx, tb)
            self.unifier.well_formed(t)
            self._lam_counter += 1
            label = "%s.lam%d" % (self.def_name, self._lam_counter)
            return t, ALam(expr.var, ab, label, type=t)
        if isinstance(expr, App):
            tf, af = self.infer_expr(expr.fun, locals_)
            fun = self._fresh_fun()
            self._unify(tf, fun, "'@' application")
            ta, aa = self.infer_expr(expr.arg, locals_)
            aa = self._coerce_expr(aa, ta, fun.arg, "'@' argument")
            return self.unifier.resolve(fun.res), AApp(fun.bt, af, aa)
        raise TypeError("not an expression: %r" % (expr,))

    def _infer_prim(self, expr, locals_):
        g = self.graph
        op = expr.op
        inferred = [self.infer_expr(a, locals_) for a in expr.args]
        if op in _ARITH or op in _CMP:
            o = g.fresh()
            dst = BTTBase("Nat", o)
            args = tuple(
                self._coerce_expr(a, t, dst, "operand of %r" % op)
                for (t, a) in inferred
            )
            res_name = "Bool" if op in _CMP else "Nat"
            return BTTBase(res_name, o), APrim(op, o, args)
        if op in _BOOL2 or op == "not":
            o = g.fresh()
            dst = BTTBase("Bool", o)
            args = tuple(
                self._coerce_expr(a, t, dst, "operand of %r" % op)
                for (t, a) in inferred
            )
            return BTTBase("Bool", o), APrim(op, o, args)
        if op == "cons":
            (t1, a1), (t2, a2) = inferred
            lst = self._fresh_list()
            self._unify(t2, lst, "second operand of 'cons'")
            r = g.fresh()
            res = BTTList(r, lst.elem)
            self.unifier.well_formed(res)
            g.edge(lst.bt, r)
            a1 = self._coerce_expr(
                a1, t1, self.unifier.resolve(lst.elem), "first operand of 'cons'"
            )
            a2 = self._coerce_expr(a2, lst, res, "second operand of 'cons'")
            return res, APrim(op, r, (a1, a2))
        if op in ("head", "tail", "null"):
            ((t1, a1),) = inferred
            lst = self._fresh_list()
            self._unify(t1, lst, "operand of %r" % op)
            if op == "head":
                return self.unifier.resolve(lst.elem), APrim(op, lst.bt, (a1,))
            if op == "tail":
                return lst, APrim(op, lst.bt, (a1,))
            o = g.fresh()
            g.edge(lst.bt, o)
            return BTTBase("Bool", o), APrim(op, o, (a1,))
        if op == "pair":
            (t1, a1), (t2, a2) = inferred
            p = g.fresh()
            res = BTTPair(p, t1, t2)
            self.unifier.well_formed(res)
            return res, APrim(op, p, (a1, a2))
        if op in ("fst", "snd"):
            ((t1, a1),) = inferred
            pr = self._fresh_pair()
            self._unify(t1, pr, "operand of %r" % op)
            component = pr.fst if op == "fst" else pr.snd
            return self.unifier.resolve(component), APrim(op, pr.bt, (a1,))
        self._fail("unknown primitive %r" % op)

    def infer_def(self, d):
        """Infer ``d``; returns ``(scheme, finalise_closure)`` where the
        closure produces the annotated definition on demand."""
        param_types = tuple(self.unifier.fresh_skel() for _ in d.params)
        locals_ = dict(zip(d.params, param_types))
        res_type, abody = self.infer_expr(d.body, locals_)
        unfold_var = self.graph.fresh()
        if self.sct_params is not None:
            # Size-change termination is proved: unfolding is gated only
            # by the staticness of the decreasing parameters, not by the
            # body's conditionals.
            previous = self.graph.set_context(
                "unfolding is safe while the size-change proof's "
                "decreasing parameters stay static"
            )
            index_of = {p: i for i, p in enumerate(d.params)}
            for p in self.sct_params:
                t = self.unifier.resolve(param_types[index_of[p]])
                self.graph.edge(t.bt, unfold_var)
            self.graph.set_context(previous)
        else:
            previous = self.graph.set_context(
                "the definition is residualised if any conditional in its "
                "body is dynamic (the Similix rule)"
            )
            for c in self.cond_bts:
                self.graph.edge(c, unfold_var)
            self.graph.set_context(previous)
        if self.force_residual:
            self.graph.force_dynamic(unfold_var)
        # A residualised function delivers a dynamic result.
        previous = self.graph.set_context(
            "a residualised definition delivers a dynamic result"
        )
        self.graph.edge(unfold_var, self.unifier.resolve(res_type).bt)
        self.graph.set_context(previous)
        canon = Canonicaliser(self.unifier)
        scheme = canon.build(
            self.graph,
            [self.unifier.deep(t) for t in param_types],
            self.unifier.deep(res_type),
            unfold_var,
        )
        finaliser = _Finaliser(
            self, d, scheme, canon, param_types, res_type, unfold_var, abody
        )
        return scheme, finaliser


class _Finaliser:
    """Turns a proto-annotated definition (raw graph-variable slots) into
    a finished :class:`ADef` with symbolic binding times."""

    def __init__(self, inf, d, scheme, canon, param_types, res_type, unfold_var, abody):
        self.inf = inf
        self.d = d
        self.scheme = scheme
        self.canon = canon
        self.param_types = param_types
        self.res_type = res_type
        self.unfold_var = unfold_var
        self.abody = abody

    def finalise(self):
        inf = self.inf
        # Recover the real graph variables behind the canonical inputs.
        slot_to_real = {}
        for real, slot in self.canon.slot_of.items():
            slot_to_real.setdefault(slot, real)
        input_slots = self.scheme.inputs()
        input_reals = [slot_to_real[s] for s in input_slots]
        names = {
            real: input_name(i) for i, real in enumerate(input_reals)
        }
        solution = inf.graph.solve(input_reals)

        def final_bt(v):
            params, dyn = solution[v]
            if dyn:
                return btmod.D
            return btmod.BT(frozenset(names[p] for p in params), False)

        def final_type(t):
            return map_bts(inf.unifier.deep(t), final_bt)

        body = _final_expr(self.abody, final_bt, final_type)
        return ADef(
            name=self.d.name,
            bt_params=tuple(input_name(i) for i in range(len(input_reals))),
            params=self.d.params,
            body=body,
            unfold=final_bt(self.unfold_var),
            param_types=tuple(final_type(t) for t in self.param_types),
            res_type=final_type(self.res_type),
        )


def _final_expr(e, final_bt, final_type):
    if isinstance(e, (ALit, AVar)):
        return e
    if isinstance(e, APrim):
        return APrim(
            e.op,
            final_bt(e.bt),
            tuple(_final_expr(a, final_bt, final_type) for a in e.args),
        )
    if isinstance(e, AIf):
        return AIf(
            final_bt(e.bt),
            _final_expr(e.cond, final_bt, final_type),
            _final_expr(e.then_branch, final_bt, final_type),
            _final_expr(e.else_branch, final_bt, final_type),
        )
    if isinstance(e, ACall):
        return ACall(
            e.func,
            tuple(final_bt(b) for b in e.bt_args),
            tuple(_final_expr(a, final_bt, final_type) for a in e.args),
        )
    if isinstance(e, ALam):
        body = _final_expr(e.body, final_bt, final_type)
        return ALam(
            e.var,
            body,
            e.label,
            free=tuple(sorted(afree_vars(body, frozenset([e.var])))),
            fvs=tuple(sorted(acalled_functions(body))),
            type=final_type(e.type),
        )
    if isinstance(e, AApp):
        return AApp(
            final_bt(e.bt),
            _final_expr(e.fun, final_bt, final_type),
            _final_expr(e.arg, final_bt, final_type),
        )
    if isinstance(e, ACoerce):
        src = final_type(e.src)
        dst = final_type(e.dst)
        inner = _final_expr(e.expr, final_bt, final_type)
        if src == dst:
            return inner
        return ACoerce(src, dst, inner)
    raise TypeError("not an annotated expression: %r" % (e,))


def analyse_scc(by_name, group, env, force_residual=frozenset(),
                unfolding="lub"):
    """Fixpoint-analyse one strongly connected component of definitions.

    ``by_name`` maps def names to (resolved) :class:`~repro.lang.ast.Def`
    nodes; ``group`` lists the SCC's members; ``env`` maps every name
    visible to the group (imports plus already-analysed same-module
    defs) to its :class:`BTScheme`.  Recursion inside the group gets
    polymorphic recursion by Kleene iteration from the most general
    signature.

    Returns ``(schemes, annotated, reads)`` — three dicts keyed by def
    name; ``reads`` records which schemes each def's inference actually
    consulted.  This is the unit of work the incremental engine caches:
    an SCC whose sources and read schemes are unchanged need never be
    re-analysed.

    With ``unfolding="size-change"`` the component is first put through
    :func:`~repro.bt.sizechange.sct_unfold_params`; a successful proof
    swaps the Similix unfold rule for the proof's parameter gates.  The
    proof is purely syntactic, so it is computed once, outside the
    Kleene iteration."""
    sct = None
    if unfolding == "size-change":
        sct = sct_unfold_params(by_name, group)
    assumed = {name: most_general_scheme(by_name[name].arity) for name in group}
    finalisers = {}
    reads = {}
    for _ in range(_MAX_FIXPOINT_ITERATIONS):
        results = {}
        for name in group:
            inf = _DefInference(
                name, {**env, **assumed}, name in force_residual,
                sct_params=None if sct is None else sct.get(name),
            )
            try:
                results[name] = inf.infer_def(by_name[name])
            except BTUnifyError as e:
                raise BTAError("in %s: %s" % (name, e))
            reads[name] = frozenset(inf.reads)
        new = {name: scheme for name, (scheme, _) in results.items()}
        finalisers = {name: fin for name, (_, fin) in results.items()}
        if new == assumed:
            break
        assumed = new
    else:
        raise BTAError(
            "binding-time analysis did not converge for %s"
            % ", ".join(group)
        )
    annotated = {name: finalisers[name].finalise() for name in group}
    return assumed, annotated, reads


def analyse_module(module, imported_schemes, force_residual=frozenset(),
                   division="mono", unfolding="lub",
                   max_bt_versions=DEFAULT_MAX_BT_VERSIONS):
    """Analyse one module given its imports' binding-time interfaces.

    ``imported_schemes`` maps function names to :class:`BTScheme`;
    ``force_residual`` names definitions to annotate non-unfoldable
    regardless of their conditionals (the paper hand-annotates its
    Sec. 5 examples this way).  ``division``/``unfolding`` pick the
    analysis strategies (see the module docstring); the defaults
    reproduce the paper's behaviour exactly.
    """
    _check_strategies(division, unfolding)
    env = dict(imported_schemes)
    schemes = {}
    annotated = {}
    deps = {}
    by_name = {d.name: d for d in module.defs}
    for group in module_def_sccs(module):
        group_schemes, group_annotated, group_reads = analyse_scc(
            by_name, group, env, force_residual, unfolding=unfolding
        )
        schemes.update(group_schemes)
        env.update(group_schemes)
        annotated.update(group_annotated)
        deps.update(group_reads)
    amodule = AModule(
        module.name,
        module.imports,
        tuple(annotated[d.name] for d in module.defs),
    )
    versions = {}
    if division == "poly":
        for d in module.defs:
            vs = ground_versions(
                annotated[d.name], schemes[d.name], max_bt_versions
            )
            if vs:
                versions[d.name] = vs
    return ModuleAnalysis(
        module.name, schemes, amodule, deps, versions=versions
    )


def analyse_program(linked, force_residual=frozenset(), division="mono",
                    unfolding="lub",
                    max_bt_versions=DEFAULT_MAX_BT_VERSIONS):
    """Analyse every module of ``linked`` in topological order.

    This mirrors the paper's workflow: each module is analysed once,
    consulting only the interface information of the modules it imports.
    """
    interfaces = {}
    analyses = []
    by_name = {m.name: m for m in linked.program.modules}
    results = {}
    for module_name in linked.topo_order:
        module = by_name[module_name]
        visible = {}
        for dep in module.imports:
            visible.update(results[dep].schemes)
            # Re-exported names from transitive imports are not visible;
            # the language's import relation is non-transitive, matching
            # the source-level name resolution.
        analysis = analyse_module(
            module, visible, force_residual,
            division=division, unfolding=unfolding,
            max_bt_versions=max_bt_versions,
        )
        results[module_name] = analysis
    for m in linked.program.modules:
        analyses.append(results[m.name])
    schemes = {}
    for a in analyses:
        schemes.update(a.schemes)
    annotated = AProgram(tuple(a.annotated for a in analyses))
    return ProgramAnalysis(tuple(analyses), schemes, annotated)
