"""Workload generators and measurement helpers for the benchmark suite.

Every experiment in EXPERIMENTS.md pulls its programs and its metrics
from here, so benchmarks and tests measure exactly the same artefacts.
"""

from repro.bench.generators import (
    chain_program,
    fanout_program,
    library_program,
    machine_interpreter_source,
    power_source,
    power_twice_main_source,
    random_machine_program,
    synthetic_module_source,
)
from repro.bench.metrics import (
    code_lines,
    genext_expansion,
    module_ast_size,
    program_ast_size,
    time_call,
)

__all__ = [
    "chain_program",
    "code_lines",
    "fanout_program",
    "genext_expansion",
    "library_program",
    "machine_interpreter_source",
    "module_ast_size",
    "power_source",
    "power_twice_main_source",
    "program_ast_size",
    "random_machine_program",
    "synthetic_module_source",
    "time_call",
]
