"""Source-program generators for benchmarks and tests.

All generators are deterministic (seeded where randomised) and produce
concrete syntax, so every experiment exercises the full pipeline from
the parser onward.
"""

import random

from repro.lang.prims import make_pair

# ---------------------------------------------------------------------------
# The paper's own example programs.
# ---------------------------------------------------------------------------

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
"""

POWER_TWICE_MAIN = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x

module Twice where

twice f x = f @ (f @ x)

module Main where
import Power
import Twice

main y = twice (\\x -> power 3 x) y
"""

MACHINE_INTERPRETER = """\
module Machine where

index xs n = if n == 0 then head xs else index (tail xs) (n - 1)
size xs = if null xs then 0 else 1 + size (tail xs)

step prog pc acc =
  if pc == size prog then acc
  else if fst (index prog pc) == 0 then step prog (pc + 1) (acc + snd (index prog pc))
  else if fst (index prog pc) == 1 then step prog (pc + 1) (acc * snd (index prog pc))
  else if fst (index prog pc) == 2 then (if acc == 0 then step prog (snd (index prog pc)) acc else step prog (pc + 1) acc)
  else step prog (pc + 1) (snd (index prog pc))

run prog acc = step prog 0 acc
"""


def power_source():
    """The paper's ``power`` module."""
    return POWER


def power_twice_main_source():
    """The paper's Sec. 5 three-module example."""
    return POWER_TWICE_MAIN


def machine_interpreter_source():
    """A register-machine interpreter (instructions are (op, arg) pairs:
    0 add, 1 mul, 2 jump-if-zero, 3 load); specialising ``run`` to a
    static program performs the first Futamura projection."""
    return MACHINE_INTERPRETER


GUARDED_LOOKUP = """\
module Lookup where

lookup xs i = if null xs then 0 else (if i == 0 then head xs else lookup (tail xs) (i - 1))
"""


def guarded_lookup_source():
    """A guarded list lookup: the flagship size-change workload.

    With ``xs`` static and ``i`` dynamic the Similix lub rule
    residualises the whole loop (``i == 0`` is dynamic), but the
    ``tail xs`` argument strictly decreases, so size-change unfolding
    turns the residual into a closed chain of conditionals over the
    static table — no residual recursion at all."""
    return GUARDED_LOOKUP


def memory_lookup_program(n_cells, seed=0):
    """E5-family scenario: a machine's static memory consulted at a
    dynamic address.  ``read`` is a guarded lookup over a static
    ``n_cells``-element memory; ``main`` reads one dynamic address (one
    call site — unfolding never duplicates the chain).  Returns
    ``(source, goal, static_args, dyn_params)``."""
    rng = random.Random(seed)
    source = (
        "module Memory where\n"
        "\n"
        "read xs i = if null xs then 0 else "
        "(if i == 0 then head xs else read (tail xs) (i - 1))\n"
        "\n"
        "main m a = read m a\n"
    )
    mem = tuple(rng.randint(0, 99) for _ in range(n_cells))
    return source, "main", {"m": mem}, ("a",)


def library_lookup_program(n_tables, n_cells, seed=0):
    """E6-family scenario: a library of static lookup tables, a client
    consulting each at one dynamic index.  Returns
    ``(source, goal, static_args, dyn_params)`` — every ``t{k}`` table
    parameter is static, the index ``i`` dynamic."""
    rng = random.Random(seed)
    lines = ["module Tables where", ""]
    lines.append(
        "get xs i = if null xs then 0 else "
        "(if i == 0 then head xs else get (tail xs) (i - 1))"
    )
    lines.append("")
    lines.append("module Client where")
    lines.append("import Tables")
    lines.append("")
    params = " ".join("t%d" % k for k in range(n_tables))
    calls = " + ".join("get t%d i" % k for k in range(n_tables))
    lines.append("client %s i = %s" % (params, calls))
    lines.append("")
    static_args = {
        "t%d" % k: tuple(rng.randint(0, 99) for _ in range(n_cells))
        for k in range(n_tables)
    }
    return "\n".join(lines), "client", static_args, ("i",)


def dual_pattern_program(n_funcs, seed=0):
    """E4-family scenario for polyvariant division: each library loop is
    called at two ground binding-time patterns — ``(S, D)`` (static
    count, dynamic seed, recursion unfolds) and ``(D, D)`` (fully
    dynamic, recursion residualises) — so a monovariant division must
    lub the two while ``division="poly"`` clones per-pattern generating
    extensions.  Returns ``(source, goal, static_args, dyn_params)``."""
    rng = random.Random(seed)
    lines = ["module Lib where", ""]
    for k in range(n_funcs):
        lines.append(
            "g%d n x = if n == 0 then x else g%d (n - 1) (x + %d)"
            % (k, k, rng.randint(1, 9))
        )
    lines.append("")
    lines.append("module Client where")
    lines.append("import Lib")
    lines.append("")
    calls = " + ".join(
        "g%d %d d + g%d d d" % (k, rng.randint(2, 5), k)
        for k in range(n_funcs)
    )
    lines.append("client d = %s" % calls)
    lines.append("")
    return "\n".join(lines), "client", {}, ("d",)


def random_machine_program(length, seed=0):
    """A random machine program of ``length`` instructions ending in a
    halt-friendly suffix (jump targets stay forward to guarantee
    termination)."""
    rng = random.Random(seed)
    instructions = []
    for i in range(length):
        op = rng.choice([0, 0, 1, 2, 3])
        if op == 2:
            arg = rng.randint(i + 1, length)  # forward jump only
        elif op == 1:
            arg = rng.randint(2, 3)
        else:
            arg = rng.randint(0, 9)
        instructions.append(make_pair(op, arg))
    return tuple(instructions)


# ---------------------------------------------------------------------------
# Synthetic modules for scaling experiments.
# ---------------------------------------------------------------------------


def synthetic_module_source(name, n_defs, arms=3, seed=0):
    """A module of ``n_defs`` first-order recursive definitions.

    Each definition dispatches on a static selector and recurses on a
    counter, giving bodies with conditionals, arithmetic, and calls —
    the mix the genext-size experiment (Sec. 6) needs.  Definitions call
    their successors, so the module is one connected program.
    """
    rng = random.Random(seed)
    lines = ["module %s where" % name, ""]
    for i in range(n_defs):
        fname = "f%d" % i
        body = "y + %d" % rng.randint(1, 9)
        for a in range(arms):
            callee = "f%d" % rng.randint(i + 1, n_defs - 1) if i + 1 < n_defs else None
            if callee is not None and a == 0:
                arm = "%s (n - 1) (y * %d)" % (callee, rng.randint(2, 5))
            else:
                arm = "y * %d + %d" % (rng.randint(2, 7), rng.randint(0, 9))
            body = "if n == %d then %s else %s" % (a, arm, body)
        lines.append("%s n y = if n == 0 then y else %s" % (fname, body))
    lines.append("")
    return "\n".join(lines)


def library_program(n_library_defs, n_used, seed=0):
    """A large library module plus a small client using ``n_used`` of its
    definitions (Sec. 4's general-purpose-library scenario).

    Library functions are independent recursive loops; the client calls
    the first ``n_used`` with a static iteration count, so specialising
    the client touches exactly those."""
    rng = random.Random(seed)
    lines = ["module Lib where", ""]
    for i in range(n_library_defs):
        k = rng.randint(2, 9)
        lines.append(
            "lib%d n x = if n == 0 then x else lib%d (n - 1) (x * %d + %d)"
            % (i, i, k, rng.randint(0, 5))
        )
    lines.append("")
    lines.append("module Client where")
    lines.append("import Lib")
    lines.append("")
    calls = " + ".join("lib%d m x" % i for i in range(n_used))
    lines.append("client m x = %s" % (calls or "x"))
    lines.append("")
    return "\n".join(lines)


def layered_program(n_modules, defs_per_module, seed=0):
    """A program of ``n_modules`` modules in an import chain
    (``M0 <- M1 <- ... <- M{n-1}``), each with ``defs_per_module``
    definitions; definitions may call into the directly imported layer.
    Used by the separate-analysis experiments.  Returns a dict of module
    name -> source text (one module per entry, loader-ready)."""
    rng = random.Random(seed)
    out = {}
    for m in range(n_modules):
        name = "M%d" % m
        lines = ["module %s where" % name]
        if m > 0:
            lines.append("import M%d" % (m - 1))
        lines.append("")
        for i in range(defs_per_module):
            fname = "m%d_f%d" % (m, i)
            if m > 0 and i == 0:
                callee = "m%d_f%d" % (m - 1, rng.randrange(defs_per_module))
                body = (
                    "if n == 0 then x else %s (n - 1) (x + %d)"
                    % (callee, rng.randint(1, 5))
                )
            else:
                body = (
                    "if n == 0 then x else %s (n - 1) (x * %d)"
                    % (fname, rng.randint(2, 4))
                )
            lines.append("%s n x = %s" % (fname, body))
        lines.append("")
        out[name] = "\n".join(lines)
    return out


def wide_program(layers, width, defs_per_module=4, seed=0):
    """A layered DAG of ``layers`` × ``width`` modules for parallel-build
    experiments: module ``L{i}W{j}`` imports every module of layer
    ``i-1``, so the wave schedule is exactly the layers and each wave is
    ``width`` modules wide — the shape that exposes maximal parallelism
    to the build pipeline.  Definitions are recursive loops; layer ``i``
    definitions call into layer ``i-1``.  Returns a dict of module name
    -> source text (one module per entry, loader-ready)."""
    rng = random.Random(seed)
    out = {}
    for i in range(layers):
        for j in range(width):
            name = "L%dW%d" % (i, j)
            lines = ["module %s where" % name]
            if i > 0:
                for jj in range(width):
                    lines.append("import L%dW%d" % (i - 1, jj))
            lines.append("")
            for k in range(defs_per_module):
                fname = "f_%d_%d_%d" % (i, j, k)
                if i > 0:
                    callee = "f_%d_%d_%d" % (
                        i - 1,
                        rng.randrange(width),
                        rng.randrange(defs_per_module),
                    )
                    body = "if n == 0 then x else %s (n - 1) (x + %d)" % (
                        callee,
                        rng.randint(1, 9),
                    )
                else:
                    body = "if n == 0 then x else %s (n - 1) (x * %d)" % (
                        fname,
                        rng.randint(2, 5),
                    )
                lines.append("%s n x = %s" % (fname, body))
            lines.append("")
            out[name] = "\n".join(lines)
    return out


def chain_program(depth):
    """A chain of ``depth`` mutually calling, always-residualised
    functions: ``c0 -> c1 -> ... -> c(depth-1)``.

    Every body has a dynamic conditional, so every function is
    residualised; a depth-first specialiser keeps ``depth``
    specialisations active at once while the breadth-first pending list
    stays flat — the Sec. 5 space comparison."""
    lines = ["module Chain where", ""]
    for i in range(depth):
        if i + 1 < depth:
            rec = "c%d (x + 1)" % (i + 1)
        else:
            rec = "x"
        lines.append("c%d x = if x == 0 then 0 else %s" % (i, rec))
    lines.append("")
    return "\n".join(lines)


def fanout_program(depth, width):
    """A tree of residualised functions: each level-``i`` function calls
    ``width`` distinct functions at level ``i+1``.  Stress test for the
    pending list and for depth-first recursion."""
    lines = ["module Fan where", ""]
    names = {}
    counter = [0]

    def make(level):
        idx = counter[0]
        counter[0] += 1
        fname = "t%d_%d" % (level, idx)
        if level + 1 < depth:
            children = [make(level + 1) for _ in range(width)]
            call = " + ".join("%s (x + %d)" % (c, i) for i, c in enumerate(children))
        else:
            call = "x + 1"
        lines.append("%s x = if x == 0 then 0 else %s" % (fname, call))
        return fname

    root = make(0)
    lines.append("root x = %s x" % root)
    lines.append("")
    return "\n".join(lines), "root"
