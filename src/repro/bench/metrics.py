"""Measurement helpers shared by benchmarks and tests."""

import time

from repro.lang.ast import module_size, program_size


def code_lines(text):
    """Non-blank, non-comment lines — the "lines of code" metric used
    for the Sec. 6 size comparisons (works for both the object language
    and generated Python; both use whole-line comment markers)."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("--") or stripped.startswith("#"):
            continue
        count += 1
    return count


def module_ast_size(module):
    """AST-node size of an object-language module."""
    return module_size(module)


def program_ast_size(program):
    """AST-node size of an object-language program."""
    return program_size(program)


def genext_expansion(source_text, genext_module):
    """The code-size expansion factor of a generating extension over its
    source module, in lines of code (Sec. 6 reports four to five)."""
    src = code_lines(source_text)
    gen = code_lines(genext_module.source)
    return gen / max(1, src)


def time_call(fn, *args, repeat=3, **kwargs):
    """Best-of-``repeat`` wall-clock time of ``fn(*args, **kwargs)``;
    returns ``(seconds, last_result)``."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best, result


def linear_fit(xs, ys):
    """Least-squares slope/intercept/R² without numpy dependencies in the
    hot path (numpy is available, but this keeps helpers self-contained
    for tests)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 - (ss_res / ss_tot if ss_tot else 0.0)
    return slope, intercept, r2
