"""Command-line driver: ``mspec``.

Subcommands mirror the paper's workflow:

* ``mspec analyze DIR``          — separate binding-time analysis of a
  directory of ``*.mod`` files, writing/refreshing ``*.bti`` interface
  files (only out-of-date modules are re-analysed).
* ``mspec cogen DIR [-o OUT]``   — run the cogen, writing one
  ``*.genext.py`` per module.
* ``mspec build DIR [--jobs N] [--cache-dir D] [--stats]
  [--keep-going] [--timeout S] [--retries N]`` — the parallel,
  incremental pipeline: wave-scheduled separate analysis and cogen
  backed by a content-addressed artifact cache; writes ``*.bti`` and
  ``*.genext.py`` like ``analyze`` + ``cogen`` but re-does only the
  dirty cone of an edit.  ``--keep-going`` builds everything outside a
  failed module's downstream cone and reports all failures at once;
  ``--timeout``/``--retries`` supervise the workers.  Exit codes name
  the failure class: 3 module error, 4 deadline, 5 worker crash.
* ``mspec fsck DIR [--cache-dir D]`` — scan the artifact cache,
  quarantine corrupt/truncated objects (exit 6 when any were found).
* ``mspec specialise DIR GOAL [name=value...]`` — link the generating
  extensions and specialise ``GOAL`` with the given static arguments
  (unlisted parameters stay dynamic); prints the residual program or
  writes it as modules with ``-o``.  ``--cache-dir`` enables the
  persistent residual cache (repeated requests are answered from
  disk); ``--batch requests.json [--jobs N]`` specialises a whole
  batch of requests through the parallel batch driver with
  deduplication and a shared cache (default ``DIR/.mspec-cache``),
  writing per-request subdirectories with ``-o``.  (``specialize`` is
  an alias.)
* ``mspec run DIR GOAL [values...]`` — interpret a program directly.
* ``mspec show DIR``             — print schemes and annotated modules.
* ``mspec serve DIR [--socket P | --tcp H:P] [--jobs N]
  [--max-inflight N] [--queue N] [--deadline S]`` — the persistent
  specialisation daemon (see ``docs/serving.md``): loads and links
  ``DIR`` once, pre-forks a worker pool, keeps the residual cache hot,
  and answers ``repro.serve/v1`` requests over a unix socket (default
  ``DIR/.mspec-serve.sock``) or TCP until told to shut down.  Requests
  beyond the admission bounds are rejected with backpressure (client
  exit 8); an edited module triggers one controlled re-link.
* ``mspec client [--socket P | --tcp H:P] OP [GOAL] [name=value...]``
  — one request against a running daemon: ``ping`` / ``health`` /
  ``metrics`` / ``trace`` / ``specialise`` / ``shutdown``.  A
  ``specialise`` answer prints the residual program byte-identically
  to ``mspec specialise``; error codes map to the same exit codes the
  one-shot pipeline uses (3/4/5), plus 8 for rejected/draining.
* ``mspec check DIR [--fuzz N] [--seed S] [--jobs-widths 1,4]`` — the
  correctness harness (see ``docs/correctness.md``): annotation lint,
  interface fsck (committed ``*.bti`` vs re-derived schemes), and
  bounded differential fuzzing of the whole toolchain; divergences are
  minimised and written as replayable JSON repro bundles
  (``--bundle-dir``, default ``DIR/.mspec-check``).  ``mspec check
  --replay bundle.json`` re-runs one bundle.  Exit 7 when anything was
  found.
* ``mspec soak DIR --requests MIX.json [--socket P | --tcp H:P |
  --spawn] [--count N] [--duration S] [--clients N]`` — the endurance
  harness (see ``docs/robustness.md``): hammer a live daemon (or one
  spawned under supervision with ``--spawn``) with a seeded request
  mix through resilient clients, differentially checking every Nth
  response against a locally computed reference and interp ground
  truth; arm a fault plan (``--faults`` / ``MSPEC_FAULTS``) to soak
  under chaos.  Emits a ``repro.bench.soak/v1`` report (``--report``);
  exit 7 on any error-budget breach.

Observability (see ``docs/observability.md``): ``build`` and
``specialise`` accept ``--trace out.json`` (Chrome trace-event JSON,
loadable in Perfetto), ``--metrics out.json`` (metrics snapshot), and
``--profile`` (wall-clock attribution per module / residual version);
``build``, ``specialise``, and ``fsck`` accept ``--json`` to print one
machine-readable ``mspec.report/v1`` document instead of prose.

Static values are Python-literal syntax: naturals, ``true``/``false``,
and lists like ``[1,2,3]``.
"""

import argparse
import json
import sys

from repro.bt.analysis import analyse_program
from repro.bt.interface import InterfaceManager
from repro.genext.cogen import cogen_program
from repro.genext.engine import specialise
from repro.genext.link import link_genexts, write_genexts
from repro.interp import run_program
from repro.lang.pretty import pretty_program
from repro.modsys.program import load_program_dir
from repro.residual.emit import emit_program_dir

EXIT_CODES_HELP = """\
exit codes:
  0  success
  2  usage error (argparse)
  3  module failed to analyse/compile
  4  a module exceeded its --timeout deadline
  5  a worker process crashed
  6  fsck found (and quarantined) corrupt cache objects
  7  check found correctness problems (lint/iface/divergence findings)
  8  serve daemon rejected the request (admission queue full / draining)
"""


def _make_obs(args):
    """The Obs bundle an observability-aware subcommand asked for,
    plus the Profiler when ``--profile`` was given."""
    from repro.obs import Obs, Profiler

    enabled = bool(
        getattr(args, "trace", None) or getattr(args, "profile", False)
    )
    obs = Obs.enabled() if enabled else Obs()
    profiler = Profiler(obs.bus) if getattr(args, "profile", False) else None
    return obs, profiler


def _finish_obs(args, obs, profiler):
    """Export --trace/--metrics sinks and print the --profile report.
    Runs even when the command failed, so a crashed build still leaves
    its trace behind."""
    if getattr(args, "trace", None):
        obs.tracer.export(args.trace)
    if getattr(args, "metrics", None):
        obs.metrics.export(args.metrics)
    if profiler is not None:
        print(file=sys.stderr)
        print(profiler.report(), file=sys.stderr)


def _emit_json(command, exit_code, report, metrics=None):
    """Print the one shared ``mspec.report/v1`` document."""
    from repro.obs.schema import REPORT_SCHEMA

    doc = {
        "schema": REPORT_SCHEMA,
        "command": command,
        "exit_code": exit_code,
        "ok": exit_code == 0,
        "report": report,
    }
    if metrics is not None:
        doc["metrics"] = metrics
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    print()
    return exit_code


def _parse_value(text):
    text = text.strip()
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return ()
        return tuple(_parse_value(part) for part in inner.split(","))
    return int(text)


def _parse_bindings(pairs):
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit("expected name=value, got %r" % pair)
        name, _, value = pair.partition("=")
        out[name] = _parse_value(value)
    return out


def cmd_analyze(args):
    linked = load_program_dir(args.dir)
    manager = InterfaceManager(args.dir, args.iface_dir)
    force_residual = frozenset(args.residual or [])
    schemes, analysed = manager.analyse(
        linked, force_residual=force_residual, force=args.force
    )
    for name in linked.topo_order:
        status = "analysed" if name in analysed else "up to date"
        print("%-20s %s" % (name, status))
    for fname in sorted(schemes):
        print("  %s : %s" % (fname, schemes[fname]))
    return 0


def cmd_build(args):
    from repro.api import BuildOptions
    from repro.pipeline import BuildError, build_dir

    options = BuildOptions(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        force_residual=frozenset(args.residual or []),
        iface_dir=args.iface_dir or args.dir,
        out_dir=args.out or args.dir,
        keep_going=args.keep_going,
        timeout=args.timeout,
        retries=args.retries,
        trace_path=args.trace,
        metrics_path=args.metrics,
        incremental=not args.no_incremental,
    )
    obs, profiler = _make_obs(args)
    try:
        # build_dir exports the trace/metrics sinks itself (also on
        # failure); _finish_obs only adds the --profile report here.
        result = build_dir(args.dir, options, obs=obs)
    except BuildError as e:
        if profiler is not None:
            print(profiler.report(), file=sys.stderr)
        if args.json:
            return _emit_json(
                "build",
                e.report.exit_code,
                e.report.as_dict(),
                metrics=obs.metrics.snapshot(),
            )
        print(e.report.render(), file=sys.stderr)
        return e.report.exit_code
    report = result.report
    if args.json:
        doc = report.as_dict()
        doc["stats"] = result.stats.as_dict()
        doc["rebuild"] = result.rebuild.as_dict()
        doc["waves"] = [list(w) for w in result.waves]
        if profiler is not None:
            doc["profile"] = profiler.as_dict()
        return _emit_json(
            "build",
            report.exit_code,
            doc,
            metrics=result.stats.metrics.snapshot(),
        )
    analysed = set(result.analysed)
    incremental = set(result.incremental)
    failed = {f.module for f in report.failures}
    for wave_idx, wave in enumerate(result.waves):
        for name in wave:
            if name in failed:
                status = "FAILED"
            elif name in report.skipped:
                status = "skipped (downstream of %s)" % report.skipped[name]
            elif name in analysed:
                status = "analysed"
            elif name in incremental:
                status = "incremental"
            else:
                status = "cached"
            print("%-20s wave %-3d %s" % (name, wave_idx, status))
    if args.stats:
        print()
        print(result.stats.report())
        print(result.rebuild.render())
    if profiler is not None:
        print(file=sys.stderr)
        print(profiler.report(), file=sys.stderr)
    if not report.ok:
        print(file=sys.stderr)
        print(report.render(), file=sys.stderr)
    return report.exit_code


def cmd_fsck(args):
    import os

    from repro.pipeline import ArtifactCache, fsck_cache
    from repro.pipeline.build import DEFAULT_CACHE_DIRNAME

    cache = ArtifactCache(
        args.cache_dir or os.path.join(args.dir, DEFAULT_CACHE_DIRNAME)
    )
    report = fsck_cache(cache)
    if args.json:
        return _emit_json("fsck", report.exit_code, report.as_dict())
    print(report.render())
    return report.exit_code


def cmd_cogen(args):
    linked = load_program_dir(args.dir)
    analysis = analyse_program(
        linked, force_residual=frozenset(args.residual or [])
    )
    modules = cogen_program(analysis)
    out = args.out or args.dir
    for path in write_genexts(modules, out):
        print("wrote", path)
    return 0


def _load_batch_requests(path):
    """Parse a ``--batch`` file: a JSON list of
    ``{"goal": ..., "static_args": {...}}`` objects (or an object with
    a ``"requests"`` list).  JSON lists become object-language lists."""

    def conv(v):
        if isinstance(v, list):
            return tuple(conv(x) for x in v)
        return v

    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = doc.get("requests")
    if not isinstance(doc, list):
        raise SystemExit(
            '--batch file must be a JSON list of requests, or an object '
            'with a "requests" list'
        )
    out = []
    for i, r in enumerate(doc):
        if not isinstance(r, dict) or not isinstance(r.get("goal"), str):
            raise SystemExit(
                'request #%d must be an object with a "goal" name' % i
            )
        static = {
            name: conv(v) for name, v in (r.get("static_args") or {}).items()
        }
        out.append({"goal": r["goal"], "static_args": static})
    return out


def _cmd_specialise_batch(args, gp, options, obs, profiler):
    import os

    from repro.genext.batch import specialise_many
    from repro.pipeline.faults import EXIT_ERROR, EXIT_TIMEOUT, EXIT_CRASH

    requests = _load_batch_requests(args.batch)
    cache_dir = args.cache_dir or os.path.join(args.dir, ".mspec-cache")
    options = options.replace(cache_dir=cache_dir)
    try:
        batch = specialise_many(gp, requests, options, jobs=args.jobs, obs=obs)
    finally:
        _finish_obs(args, obs, profiler)

    exit_code = 0
    kind_codes = {"error": EXIT_ERROR, "timeout": EXIT_TIMEOUT, "crash": EXIT_CRASH}
    for failure in batch.failures.values():
        exit_code = max(exit_code, kind_codes.get(failure.kind, EXIT_ERROR))

    written = {}
    if args.out:
        for i, result in enumerate(batch.results):
            if result is None:
                continue
            out_dir = os.path.join(args.out, "req%d" % i)
            written[i] = list(emit_program_dir(result.program, out_dir))

    if args.json:
        docs = []
        for i, (request, result) in enumerate(zip(requests, batch.results)):
            doc = {"goal": request["goal"], "static_args": request["static_args"]}
            if result is not None:
                doc.update(
                    ok=True,
                    entry=result.entry,
                    dynamic_params=list(result.dynamic_params),
                    modules=sorted(
                        name for _, name in result.module_names.items()
                    ),
                    program=pretty_program(result.program),
                )
            else:
                doc.update(ok=False, failure=batch.failures[i].as_dict())
            docs.append(doc)
        return _emit_json(
            "specialise",
            exit_code,
            {"batch": batch.stats, "requests": docs},
            metrics=obs.metrics.snapshot(),
        )

    for i, (request, result) in enumerate(zip(requests, batch.results)):
        static = ", ".join(
            "%s=%s" % (k, v)
            for k, v in sorted(request["static_args"].items())
        )
        head = "req%d %s(%s)" % (i, request["goal"], static)
        if result is None:
            f = batch.failures[i]
            print("%s: FAILED [%s] %s" % (head, f.kind, f.message))
            continue
        if args.out:
            print("%s: wrote %d module(s)" % (head, len(written.get(i, ()))))
        else:
            print("-- %s" % head)
            print(pretty_program(result.program), end="")
    print(
        "-- %(requests)d request(s): %(unique)d unique, %(deduped)d "
        "deduplicated, %(failed)d failed (jobs=%(jobs)d)" % batch.stats,
        file=sys.stderr,
    )
    return exit_code


def cmd_specialise(args):
    from repro.api import SpecOptions

    linked = load_program_dir(args.dir)
    analysis = analyse_program(
        linked, force_residual=frozenset(args.residual or [])
    )
    gp = link_genexts(cogen_program(analysis))
    options = SpecOptions(
        strategy=args.strategy,
        timeout=args.timeout,
        cache_dir=args.cache_dir,
    )
    obs, profiler = _make_obs(args)
    if args.batch:
        if args.goal is not None or args.bindings:
            raise SystemExit(
                "--batch replaces the GOAL and name=value arguments"
            )
        return _cmd_specialise_batch(args, gp, options, obs, profiler)
    if args.goal is None:
        raise SystemExit("a GOAL function is required (or use --batch)")
    static = _parse_bindings(args.bindings)
    try:
        result = specialise(gp, args.goal, static, options, obs=obs)
    finally:
        _finish_obs(args, obs, profiler)
    if args.optimise:
        from repro.modsys.program import link_program
        from repro.residual.optimise import optimise_program

        optimised = optimise_program(result.program)
        result.program = optimised
        result.linked = link_program(optimised)
    if args.json:
        doc = {
            "entry": result.entry,
            "dynamic_params": list(result.dynamic_params),
            "stats": dict(result.stats),
            "modules": sorted(
                name for _, name in result.module_names.items()
            ),
            "program": pretty_program(result.program),
        }
        if profiler is not None:
            doc["profile"] = profiler.as_dict()
        if args.out:
            for path in emit_program_dir(result.program, args.out):
                pass
        return _emit_json(
            "specialise", 0, doc, metrics=obs.metrics.snapshot()
        )
    if args.out:
        for path in emit_program_dir(result.program, args.out):
            print("wrote", path)
    else:
        print(pretty_program(result.program), end="")
    print(
        "-- entry %s(%s); %d specialisation(s), %d unfold(s)"
        % (
            result.entry,
            ", ".join(result.dynamic_params),
            result.stats["specialisations"],
            result.stats["unfolds"],
        ),
        file=sys.stderr,
    )
    return 0


def _parse_jobs_widths(text):
    try:
        widths = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit("--jobs-widths must be a comma-separated list "
                         "of integers, got %r" % text)
    if not widths or any(w < 1 for w in widths):
        raise SystemExit("--jobs-widths needs at least one width >= 1")
    return widths


def cmd_check(args):
    from repro.check import EXIT_CHECK_FAILED, run_check
    from repro.check.driver import replay

    jobs_widths = _parse_jobs_widths(args.jobs_widths)
    obs, profiler = _make_obs(args)

    if args.replay:
        try:
            try:
                case, failures = replay(
                    args.replay,
                    jobs_widths=jobs_widths,
                    timeout=args.timeout,
                    obs=obs,
                )
            except (OSError, ValueError) as exc:
                raise SystemExit("mspec check --replay: %s" % exc)
        finally:
            _finish_obs(args, obs, profiler)
        exit_code = EXIT_CHECK_FAILED if failures else 0
        if args.json:
            return _emit_json(
                "check",
                exit_code,
                {
                    "replay": args.replay,
                    "seed": case.seed,
                    "reproduces": bool(failures),
                    "failures": failures,
                },
                metrics=obs.metrics.snapshot(),
            )
        if failures:
            print("%s: still diverges (%d failure(s))"
                  % (args.replay, len(failures)))
            for f in failures:
                print("  [%s/%s] %s"
                      % (f.get("way"), f.get("kind"), f.get("message")))
        else:
            print("%s: no longer reproduces" % args.replay)
        return exit_code

    if not args.dir:
        raise SystemExit("mspec check: DIR is required (or use --replay)")
    try:
        report = run_check(
            args.dir,
            fuzz=args.fuzz,
            seed=args.seed,
            jobs_widths=jobs_widths,
            bundle_dir=args.bundle_dir,
            iface_dir=args.iface_dir,
            force_residual=frozenset(args.residual or []),
            timeout=args.timeout,
            minimise=not args.no_minimise,
            obs=obs,
            strategy_matrix=not args.no_strategy_matrix,
        )
    finally:
        _finish_obs(args, obs, profiler)
    if args.json:
        return _emit_json(
            "check",
            report.exit_code,
            report.as_dict(),
            metrics=obs.metrics.snapshot(),
        )
    print(report.render())
    return report.exit_code


def _parse_tcp(text):
    host, _, port = text.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise SystemExit("--tcp expects HOST:PORT, got %r" % text)


def cmd_serve(args):
    from repro.api import SpecOptions
    from repro.serve import ServeConfig, serve_forever

    config = ServeConfig(
        dir=args.dir,
        socket_path=args.socket,
        tcp=_parse_tcp(args.tcp) if args.tcp else None,
        jobs=args.jobs,
        max_inflight=args.max_inflight,
        queue=args.queue,
        deadline=args.deadline,
        drain_timeout=args.drain_timeout,
        cache_dir=args.cache_dir,
        options=SpecOptions(
            strategy=args.strategy,
            force_residual=frozenset(args.residual or []),
        ),
        retries=args.retries,
        watch_source=not args.no_watch,
        warm_pool=not args.no_warm,
        metrics_path=args.metrics,
        max_requests_per_worker=args.max_requests_per_worker,
        max_worker_rss_mb=args.max_worker_rss_mb,
        tier_hot=args.tier_hot,
    )

    if args.supervise:
        from repro.serve.supervise import supervise

        def on_event(event, info):
            print(
                "mspec serve[supervise]: %s %s"
                % (event, " ".join("%s=%s" % kv for kv in sorted(info.items()))),
                file=sys.stderr,
            )

        print(
            "mspec serve: supervising %s at %s (max restarts: %s)"
            % (
                args.dir,
                config.address,
                "unbounded" if args.max_restarts is None else args.max_restarts,
            ),
            file=sys.stderr,
        )
        return supervise(
            config, max_restarts=args.max_restarts, on_event=on_event
        )

    def announce(server, transport):
        import os

        print(
            "mspec serve: %s at %s (pid %d, jobs %d, max-inflight %d, "
            "queue %d)"
            % (
                args.dir,
                config.address,
                os.getpid(),
                config.jobs,
                config.max_inflight,
                config.queue,
            ),
            file=sys.stderr,
        )

    return serve_forever(config, ready=announce)


def cmd_client(args):
    from repro.serve import ServeClient, ServeClientError, exit_code_for

    if (args.socket is None) == (args.tcp is None):
        raise SystemExit("give exactly one of --socket or --tcp")
    tcp = _parse_tcp(args.tcp) if args.tcp else None
    dynamic = []
    if args.op == "run":
        # name=value entries are static; bare values are dynamic.
        static = _parse_bindings([b for b in args.bindings if "=" in b])
        dynamic = [_parse_value(b) for b in args.bindings if "=" not in b]
    else:
        static = _parse_bindings(args.bindings)
    if static and args.op not in ("specialise", "run"):
        raise SystemExit("name=value arguments only apply to specialise/run")
    if args.op in ("specialise", "run") and not args.goal:
        raise SystemExit("%s needs a GOAL function name" % args.op)
    if args.op not in ("specialise", "run") and args.goal:
        raise SystemExit("%s takes no GOAL argument" % args.op)

    try:
        if args.wait:
            client = ServeClient.wait_ready(args.socket, tcp, timeout=args.wait)
        else:
            client = ServeClient.connect(args.socket, tcp)
    except ServeClientError as exc:
        print("mspec client: %s" % exc, file=sys.stderr)
        return 3
    try:
        if args.op == "specialise":
            response = client.specialise(
                args.goal, static, deadline=args.deadline
            )
        elif args.op == "run":
            response = client.run(
                args.goal, static, dynamic, deadline=args.deadline
            )
        else:
            response = client.request({"op": args.op})
    except ServeClientError as exc:
        print("mspec client: %s" % exc, file=sys.stderr)
        return 3
    finally:
        client.close()

    exit_code = exit_code_for(response)
    if args.json:
        json.dump(response, sys.stdout, indent=2, sort_keys=True)
        print()
        return exit_code
    if not response.get("ok"):
        error = response.get("error") or {}
        print(
            "mspec client: %s [%s] %s"
            % (args.op, error.get("code"), error.get("message")),
            file=sys.stderr,
        )
        return exit_code
    if args.op == "specialise":
        # Byte-identical to `mspec specialise DIR GOAL ...` on stdout.
        result = response["result"]
        print(result["program"], end="")
        print(
            "-- served %s in %.6fs; entry %s(%s)"
            % (
                response.get("served"),
                response.get("seconds", 0.0),
                result["entry"],
                ", ".join(result["dynamic_params"]),
            ),
            file=sys.stderr,
        )
    elif args.op == "run":
        from repro.serve.protocol import value_from_json

        print(value_from_json(response.get("value")))
        print(
            "-- tier %s (%s) in %.6fs"
            % (
                response.get("tier"),
                response.get("origin"),
                response.get("seconds", 0.0),
            ),
            file=sys.stderr,
        )
    elif args.op == "ping":
        print("pong")
    else:
        # health/metrics/trace are data: print the meat as JSON.
        body = {
            k: v
            for k, v in response.items()
            if k not in ("schema", "op", "ok", "id")
        }
        json.dump(body, sys.stdout, indent=2, sort_keys=True)
        print()
    return exit_code


def cmd_soak(args):
    import contextlib
    import os

    from repro.api import SpecOptions
    from repro.pipeline.faultinject import PLAN_ENV
    from repro.soak import SoakConfig, load_request_mix, run_soak

    if args.spawn and (args.socket or args.tcp):
        raise SystemExit("--spawn starts its own daemon; drop --socket/--tcp")
    if not args.spawn and (args.socket is None) == (args.tcp is None):
        raise SystemExit("give exactly one of --socket, --tcp, or --spawn")
    try:
        mix = load_request_mix(args.requests)
    except (OSError, ValueError) as exc:
        raise SystemExit("mspec soak: %s" % exc)
    if args.faults:
        os.environ[PLAN_ENV] = os.path.abspath(args.faults)

    options = SpecOptions(
        strategy=args.strategy,
        force_residual=frozenset(args.residual or []),
    )
    stack = contextlib.ExitStack()
    with stack:
        if args.spawn:
            from repro.serve import ServeConfig
            from repro.serve.supervise import supervised_daemon

            serve_config = ServeConfig(
                dir=args.dir,
                jobs=args.jobs,
                options=options,
                max_requests_per_worker=args.max_requests_per_worker,
            )
            stack.enter_context(supervised_daemon(serve_config))
            socket_path, tcp = serve_config.socket_path, None
            print(
                "mspec soak: spawned supervised daemon at %s"
                % serve_config.address,
                file=sys.stderr,
            )
        else:
            socket_path = args.socket
            tcp = _parse_tcp(args.tcp) if args.tcp else None

        config = SoakConfig(
            dir=args.dir,
            requests=mix,
            socket_path=socket_path,
            tcp=tcp,
            max_requests=args.count,
            duration=args.duration,
            clients=args.clients,
            check_every=args.check_every,
            batch_every=args.batch_every,
            batch_jobs=args.batch_jobs,
            seed=args.seed,
            request_timeout=args.request_timeout,
            retry_attempts=args.retry_attempts,
            max_client_errors=args.max_client_errors,
            max_divergences=args.max_divergences,
            options=options,
            report_path=args.report,
        )
        obs, profiler = _make_obs(args)
        try:
            exit_code, report = run_soak(config, obs=obs)
        finally:
            _finish_obs(args, obs, profiler)

    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
        return exit_code
    requests = report["requests"]
    checks = report["checks"]
    print(
        "mspec soak: %d sent, %d ok (%d warm / %d cold), "
        "%d retries, %d reconnects, %d client errors, %d skipped"
        % (
            requests["sent"], requests["ok"], requests["warm"],
            requests["cold"], requests["retries"], requests["reconnects"],
            requests["client_errors"], requests["skipped"],
        )
    )
    if requests["batch"]:
        print(
            "mspec soak: %d via batch driver (%d failures)"
            % (requests["batch"], requests["batch_failures"])
        )
    print(
        "mspec soak: %d differential checks, %d divergences; "
        "faults planned %d, injected %d; %.1fs"
        % (
            checks["performed"], checks["divergences"],
            report["faults"]["planned"], report["faults"]["injected"],
            report["seconds"],
        )
    )
    for detail in report.get("details", []):
        print("  - %s" % json.dumps(detail, sort_keys=True))
    print(
        "mspec soak: %s"
        % ("error budget held" if report["ok"] else "ERROR BUDGET BREACHED")
    )
    return exit_code


def cmd_run(args):
    linked = load_program_dir(args.dir)
    values = [_parse_value(v) for v in args.values]
    static = _parse_bindings(args.static or [])

    if args.backend == "interp":
        if static:
            raise SystemExit(
                "mspec run: --static needs --backend tiers or compiled"
            )
        result = None
        for _ in range(args.repeat):
            result = run_program(linked, args.goal, values)
        print(result)
        return 0

    from repro.api import SpecOptions
    from repro.backend.tiers import TierLadder, TierPolicy

    options = SpecOptions(
        force_residual=frozenset(args.residual or []),
        cache_dir=args.cache_dir,
        tier_policy=TierPolicy(
            warm_after=args.tier_warm, hot_after=args.tier_hot
        ),
    )
    analysis = analyse_program(linked, force_residual=options.force_residual)
    gp = link_genexts(cogen_program(analysis))
    ladder = TierLadder(gp, options=options, program=linked)
    forced = 2 if args.backend == "compiled" else None
    run = None
    for _ in range(args.repeat):
        run = ladder.call(args.goal, static, tuple(values), tier=forced)
    print(run.value)
    print(
        "-- tier %d (%s), %d call(s)" % (run.tier, run.origin, args.repeat),
        file=sys.stderr,
    )
    return 0


def cmd_explain(args):
    from repro.bt.explain import explain_function, to_dot

    linked = load_program_dir(args.dir)
    report = explain_function(
        linked, args.goal, force_residual=frozenset(args.residual or [])
    )
    if args.dot:
        print(to_dot(report))
        return 0
    print("== result ==")
    print(report.why_result())
    print()
    print("== unfold/residualise ==")
    print(report.why_unfold())
    return 0


def cmd_show(args):
    linked = load_program_dir(args.dir)
    analysis = analyse_program(
        linked, force_residual=frozenset(args.residual or [])
    )
    from repro.anno.pretty import pretty_aprogram

    for fname in sorted(analysis.schemes):
        print("%s : %s" % (fname, analysis.schemes[fname]))
    print()
    print(pretty_aprogram(analysis.annotated), end="")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="mspec",
        description="Module-sensitive program specialisation",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("dir", help="directory of *.mod module files")
        p.add_argument(
            "--residual",
            action="append",
            metavar="FUNC",
            help="force FUNC to be residualised (repeatable)",
        )

    def observability(p, sinks=True):
        if sinks:
            p.add_argument(
                "--trace", metavar="FILE",
                help="write a Chrome trace-event JSON timeline to FILE "
                "(open in https://ui.perfetto.dev)",
            )
            p.add_argument(
                "--metrics", metavar="FILE",
                help="write the metrics snapshot (repro.obs.metrics/v1 "
                "JSON) to FILE",
            )
            p.add_argument(
                "--profile", action="store_true",
                help="print wall-clock attribution per module / residual "
                "version to stderr",
            )
        p.add_argument(
            "--json", action="store_true",
            help="print one machine-readable mspec.report/v1 JSON "
            "document on stdout instead of prose",
        )

    p = sub.add_parser("analyze", help="separate binding-time analysis")
    common(p)
    p.add_argument("--iface-dir", help="where to keep *.bti files")
    p.add_argument("--force", action="store_true", help="re-analyse everything")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "build", help="parallel incremental analyse + cogen (cached)"
    )
    common(p)
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for per-wave BTA+cogen (default 1: serial)",
    )
    p.add_argument(
        "--cache-dir",
        help="content-addressed artifact cache (default DIR/.mspec-cache)",
    )
    p.add_argument("--iface-dir", help="where to publish *.bti files")
    p.add_argument("-o", "--out", help="where to publish *.genext.py files")
    p.add_argument(
        "--stats", action="store_true",
        help="print per-stage timings, wave widths, and cache counters",
    )
    p.add_argument(
        "-k", "--keep-going", action="store_true",
        help="on a module failure, still build everything outside its "
        "downstream cone and report all failures at the end",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-module wall-clock deadline; a job past it is killed "
        "(and retried, if --retries allows)",
    )
    p.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed/hung module up to N times with capped "
        "exponential backoff (default 0)",
    )
    p.add_argument(
        "--no-incremental", action="store_true",
        help="disable definition-level incremental recompilation; key "
        "the cache at module granularity (whole dep interfaces)",
    )
    observability(p)
    p.set_defaults(fn=cmd_build)

    p = sub.add_parser(
        "fsck", help="scan the artifact cache, quarantine corrupt objects"
    )
    p.add_argument("dir", help="directory of *.mod module files")
    p.add_argument(
        "--cache-dir",
        help="content-addressed artifact cache (default DIR/.mspec-cache)",
    )
    observability(p, sinks=False)
    p.set_defaults(fn=cmd_fsck)

    p = sub.add_parser("cogen", help="generate generating extensions")
    common(p)
    p.add_argument("-o", "--out", help="output directory for *.genext.py")
    p.set_defaults(fn=cmd_cogen)

    p = sub.add_parser(
        "specialise",
        aliases=["specialize"],
        help="specialise a goal function (alias: specialize)",
    )
    common(p)
    p.add_argument(
        "goal", nargs="?", default=None,
        help="function to specialise (omit with --batch)",
    )
    p.add_argument("bindings", nargs="*", help="static arguments: name=value")
    p.add_argument("-o", "--out", help="write residual modules here")
    p.add_argument(
        "--strategy", choices=("bfs", "dfs"), default="bfs",
        help="pending-list discipline (default bfs)",
    )
    p.add_argument(
        "--batch", metavar="FILE",
        help="specialise a JSON batch of requests "
        '([{"goal": ..., "static_args": {...}}]) instead of one GOAL',
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for --batch (default 1: serial)",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent residual cache; repeated requests are answered "
        "from disk (default for --batch: DIR/.mspec-cache, else off)",
    )
    p.add_argument(
        "--optimise", action="store_true",
        help="run the residual-program optimiser (CSE + folding)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for the specialisation run",
    )
    observability(p)
    p.set_defaults(fn=cmd_specialise)

    p = sub.add_parser(
        "check",
        help="correctness harness: lint + interface fsck + differential "
        "fuzzing (exit 7 on findings)",
    )
    p.add_argument(
        "dir", nargs="?", default=None,
        help="directory of *.mod module files (omit with --replay)",
    )
    p.add_argument(
        "--residual",
        action="append",
        metavar="FUNC",
        help="force FUNC to be residualised (repeatable)",
    )
    p.add_argument(
        "--fuzz", type=int, default=10, metavar="N",
        help="generated programs to put through the differential oracle "
        "(default 10; 0 disables the pass)",
    )
    p.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="base generator seed (program i uses seed S+i; default 0)",
    )
    p.add_argument(
        "--jobs-widths", default="1", metavar="W1,W2,...",
        help="batch pool widths whose residuals must be byte-identical "
        "(default 1)",
    )
    p.add_argument(
        "--bundle-dir", metavar="DIR",
        help="where to write repro bundles (default DIR/.mspec-check)",
    )
    p.add_argument("--iface-dir", help="where the *.bti files live")
    p.add_argument(
        "--replay", metavar="FILE",
        help="re-run one repro bundle instead of checking a directory",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per specialisation run",
    )
    p.add_argument(
        "--no-minimise", action="store_true",
        help="skip minimising divergent programs before bundling",
    )
    p.add_argument(
        "--no-strategy-matrix", action="store_true",
        help="skip the non-default analysis strategies (polyvariant "
        "division, size-change unfolding) in lint and fuzzing",
    )
    observability(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "serve",
        help="run the persistent specialisation daemon (repro.serve/v1)",
    )
    common(p)
    p.add_argument(
        "--socket", metavar="PATH",
        help="unix socket to listen on (default DIR/.mspec-serve.sock)",
    )
    p.add_argument(
        "--tcp", metavar="HOST:PORT",
        help="listen on TCP instead of a unix socket",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker-pool width, pre-forked at startup (default 1)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrent specialisations admitted (default: --jobs)",
    )
    p.add_argument(
        "--queue", type=int, default=None, metavar="N",
        help="requests allowed to wait beyond --max-inflight before "
        "backpressure rejection (default: 4x max-inflight)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline, queue wait included "
        "(a request may narrow it, never widen it)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long a graceful shutdown waits for in-flight requests "
        "(default 30)",
    )
    p.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed/hung specialisation up to N times (default 0)",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent residual cache (default DIR/.mspec-cache)",
    )
    p.add_argument(
        "--strategy", choices=("bfs", "dfs"), default="bfs",
        help="pending-list discipline (default bfs)",
    )
    p.add_argument(
        "--tier-hot", type=int, default=None, metavar="N",
        help="compile + persist a goal's residual after its N-th request "
        "(arms the execution ladder for `run` requests and warm-hit "
        "promotion; default: run requests only, default thresholds)",
    )
    p.add_argument(
        "--no-warm", action="store_true",
        help="skip pre-forking the worker pool at startup",
    )
    p.add_argument(
        "--no-watch", action="store_true",
        help="do not watch DIR for source changes (skip the per-request "
        "digest check)",
    )
    p.add_argument(
        "--metrics", metavar="FILE",
        help="write the final metrics snapshot to FILE on shutdown "
        "(live metrics are always available via `mspec client metrics`)",
    )
    p.add_argument(
        "--max-requests-per-worker", type=int, default=None, metavar="N",
        help="gracefully recycle the worker pool after jobs*N cold "
        "requests (leaky workers are retired, not kept)",
    )
    p.add_argument(
        "--max-worker-rss-mb", type=float, default=None, metavar="MB",
        help="recycle the pool when any worker's resident set exceeds "
        "MB megabytes (Linux /proc check)",
    )
    p.add_argument(
        "--supervise", action="store_true",
        help="run the daemon in a supervised child process, restarting "
        "it with backoff if it crashes (exit 0 stops supervision)",
    )
    p.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="give up after N crash restarts (default: restart forever)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "client",
        help="send one request to a running serve daemon",
    )
    p.add_argument(
        "op",
        choices=("ping", "health", "metrics", "trace", "specialise",
                 "run", "shutdown"),
        help="the protocol operation",
    )
    p.add_argument(
        "goal", nargs="?", default=None,
        help="function to specialise or run (specialise/run only)",
    )
    p.add_argument(
        "bindings", nargs="*",
        help="static arguments: name=value; for run, bare values are "
        "dynamic arguments",
    )
    p.add_argument("--socket", metavar="PATH", help="daemon's unix socket")
    p.add_argument("--tcp", metavar="HOST:PORT", help="daemon's TCP address")
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline (queue wait included)",
    )
    p.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="wait up to SECONDS for the daemon to become ready "
        "(for scripts that just started it)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the raw repro.serve/v1 response document",
    )
    p.set_defaults(fn=cmd_client)

    p = sub.add_parser(
        "soak",
        help="endurance-test a live serve daemon under an armed fault plan",
    )
    common(p)
    p.add_argument(
        "--requests", required=True, metavar="MIX.json",
        help="JSON request mix: [{goal, static_args, dyn_inputs?}, ...]",
    )
    p.add_argument("--socket", metavar="PATH", help="daemon's unix socket")
    p.add_argument("--tcp", metavar="HOST:PORT", help="daemon's TCP address")
    p.add_argument(
        "--spawn", action="store_true",
        help="spawn a supervised daemon for the run (and drain it after)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker-pool width for a --spawn'ed daemon (default 1)",
    )
    p.add_argument(
        "--count", type=int, default=200, metavar="N",
        help="requests to schedule (default 200)",
    )
    p.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="wall-clock bound; scheduled requests past it are skipped",
    )
    p.add_argument(
        "--clients", type=int, default=2, metavar="N",
        help="concurrent resilient clients (default 2)",
    )
    p.add_argument(
        "--check-every", type=int, default=5, metavar="N",
        help="differentially check every Nth response (default 5)",
    )
    p.add_argument(
        "--batch-every", type=int, default=0, metavar="N",
        help="route every Nth request through the parallel batch driver "
        "instead of the daemon (default 0 = daemon only)",
    )
    p.add_argument(
        "--batch-jobs", type=int, default=2, metavar="N",
        help="pool width for the batch-driver lane (default 2)",
    )
    p.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="request-schedule seed (default 0)",
    )
    p.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request wire deadline (default 30)",
    )
    p.add_argument(
        "--retry-attempts", type=int, default=6, metavar="N",
        help="total tries per idempotent request (default 6)",
    )
    p.add_argument(
        "--max-client-errors", type=int, default=0, metavar="N",
        help="error budget: client-visible failures allowed (default 0)",
    )
    p.add_argument(
        "--max-divergences", type=int, default=0, metavar="N",
        help="error budget: differential divergences allowed (default 0)",
    )
    p.add_argument(
        "--max-requests-per-worker", type=int, default=None, metavar="N",
        help="worker recycling for a --spawn'ed daemon",
    )
    p.add_argument(
        "--faults", metavar="PLAN.json",
        help="arm this fault plan (sets MSPEC_FAULTS for the run, "
        "including a --spawn'ed daemon)",
    )
    p.add_argument(
        "--report", metavar="FILE",
        help="write the repro.bench.soak/v1 report to FILE",
    )
    p.add_argument(
        "--strategy", choices=("bfs", "dfs"), default="bfs",
        help="pending-list discipline (must match the daemon's; default bfs)",
    )
    observability(p)
    p.set_defaults(fn=cmd_soak)

    p = sub.add_parser(
        "run", help="execute a program (interpreted or via the tier ladder)"
    )
    common(p)
    p.add_argument("goal", help="function to run")
    p.add_argument("values", nargs="*", help="dynamic argument values")
    p.add_argument(
        "--backend", choices=("interp", "tiers", "compiled"),
        default="interp",
        help="interp: the general interpreter (default); tiers: the "
        "hotness-promoted execution ladder; compiled: force tier 2 "
        "(emit + compile the residual to Python)",
    )
    p.add_argument(
        "--static", action="append", metavar="NAME=VALUE",
        help="static argument for the tiers/compiled backends "
        "(repeatable); remaining values are dynamic",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent store for residuals and tier-2 artifacts",
    )
    p.add_argument(
        "--tier-warm", type=int, default=1, metavar="N",
        help="calls before a goal leaves the general interpreter "
        "(default 1)",
    )
    p.add_argument(
        "--tier-hot", type=int, default=3, metavar="N",
        help="calls before a goal is compiled and persisted (default 3)",
    )
    p.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="call the goal N times (exercises tier promotion)",
    )
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("show", help="print schemes and annotated modules")
    common(p)
    p.set_defaults(fn=cmd_show)

    p = sub.add_parser(
        "explain", help="explain a function's binding-time annotations"
    )
    common(p)
    p.add_argument("goal", help="function to explain")
    p.add_argument(
        "--dot", action="store_true",
        help="emit the constraint graph as Graphviz dot",
    )
    p.set_defaults(fn=cmd_explain)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
