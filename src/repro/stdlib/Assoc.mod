-- Association lists over natural-number keys.
module Assoc where
import Lists

akeys ps = map (\p -> fst p) ps
avalues ps = map (\p -> snd p) ps
alookup ps k d = if null ps then d else if fst (head ps) == k then snd (head ps) else alookup (tail ps) k d
amember ps k = if null ps then false else (fst (head ps) == k) || amember (tail ps) k
ainsert ps k v = pair k v : ps
aremove ps k = if null ps then nil else if fst (head ps) == k then aremove (tail ps) k else head ps : aremove (tail ps) k
