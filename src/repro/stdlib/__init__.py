"""The standard library: object-language modules shipped with the repo.

These are ordinary ``.mod`` files; :func:`stdlib_source` returns their
concatenated text for inclusion in a program, and :func:`stdlib_dir`
points tools (``mspec analyze`` / ``cogen``) at the files themselves —
exactly the library-vendor workflow of the paper.

Available modules: ``Lists``, ``Nat``, ``Assoc`` (which imports Lists).
"""

import os

_HERE = os.path.dirname(os.path.abspath(__file__))

# In dependency order.
MODULES = ("Lists", "Nat", "Assoc", "Sort")


def stdlib_dir():
    """Directory containing the standard library's ``.mod`` files."""
    return _HERE


def module_source(name):
    """The source text of one standard-library module."""
    if name not in MODULES:
        raise KeyError("no standard module %r (have: %s)" % (name, MODULES))
    with open(os.path.join(_HERE, name + ".mod")) as f:
        return f.read()


def stdlib_source(names=MODULES):
    """Concatenated source of the requested modules (dependency order).

    Prepend to a client program's text before ``load_program``:

    >>> from repro.stdlib import stdlib_source
    >>> import repro
    >>> gp = repro.compile_genexts(stdlib_source(("Lists",)) + '''
    ... module Main where
    ... import Lists
    ...
    ... main k xs = map (\\\\x -> k * x) xs
    ... ''')
    """
    ordered = [m for m in MODULES if m in names]
    missing = set(names) - set(ordered)
    if missing:
        raise KeyError("no standard module(s): %s" % ", ".join(sorted(missing)))
    # Assoc and Sort import Lists; pull dependencies in automatically.
    if ("Assoc" in ordered or "Sort" in ordered) and "Lists" not in ordered:
        ordered.insert(0, "Lists")
    return "\n".join(module_source(m) for m in ordered)
