-- Sorting, written against the ordering of the naturals.
-- (For sorting under a custom ordering, use the Sort functor pattern of
-- examples/functor_sort.py.)
module Sort where
import Lists

insertAsc x xs = if null xs then [x] else if x <= head xs then x : xs else head xs : insertAsc x (tail xs)
isort xs = if null xs then nil else insertAsc (head xs) (isort (tail xs))
merge xs ys = if null xs then ys else if null ys then xs else if head xs <= head ys then head xs : merge (tail xs) ys else head ys : merge xs (tail ys)
msort xs = if length xs <= 1 then xs else merge (msort (take (div (length xs) 2) xs)) (msort (drop (div (length xs) 2) xs))
minimum xs = foldl (\a -> \b -> if a <= b then a else b) (head xs) (tail xs)
maximum xs = foldl (\a -> \b -> if a <= b then b else a) (head xs) (tail xs)
issorted xs = if null xs then true else if null (tail xs) then true else (head xs <= head (tail xs)) && issorted (tail xs)
