-- Natural-number helpers.
module Nat where

max2 a b = if a < b then b else a
min2 a b = if a < b then a else b
even n = mod n 2 == 0
odd n = not (mod n 2 == 0)
pow n x = if n == 0 then 1 else x * pow (n - 1) x
gcd2 a b = if b == 0 then a else gcd2 b (mod a b)
fib n = fibaux n 0 1
fibaux n a b = if n == 0 then a else fibaux (n - 1) b (a + b)
triangle n = if n == 0 then 0 else n + triangle (n - 1)
