-- Standard list-processing library.
-- The paper's motivating scenario: a general-purpose library, prepared
-- for specialisation once and for all with `mspec analyze && mspec cogen`.
module Lists where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)
filter p xs = if null xs then nil else if p @ head xs then head xs : filter p (tail xs) else filter p (tail xs)
foldr f z xs = if null xs then z else f @ head xs @ foldr f z (tail xs)
foldl f z xs = if null xs then z else foldl f (f @ z @ head xs) (tail xs)
append xs ys = if null xs then ys else head xs : append (tail xs) ys
reverse xs = revonto xs nil
revonto xs acc = if null xs then acc else revonto (tail xs) (head xs : acc)
length xs = if null xs then 0 else 1 + length (tail xs)
take n xs = if n == 0 then nil else if null xs then nil else head xs : take (n - 1) (tail xs)
drop n xs = if n == 0 then xs else if null xs then nil else drop (n - 1) (tail xs)
nth xs n = if n == 0 then head xs else nth (tail xs) (n - 1)
replicate n x = if n == 0 then nil else x : replicate (n - 1) x
iota n = iotafrom 1 n
iotafrom i n = if n == 0 then nil else i : iotafrom (i + 1) (n - 1)
sum xs = if null xs then 0 else head xs + sum (tail xs)
product xs = if null xs then 1 else head xs * product (tail xs)
any p xs = if null xs then false else (p @ head xs) || any p (tail xs)
all p xs = if null xs then true else (p @ head xs) && all p (tail xs)
zipWith f xs ys = if null xs then nil else if null ys then nil else (f @ head xs @ head ys) : zipWith f (tail xs) (tail ys)
concat xss = if null xss then nil else append (head xss) (concat (tail xss))
