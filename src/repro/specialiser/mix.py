"""``mix``: the interpretive offline specialiser baseline.

``mix`` walks annotated syntax trees at specialisation time, dispatching
on node types and looking up variables in environment dictionaries.  It
shares the specialisation *mechanisms* (partially static values,
``mk_resid`` memoisation, coercions, placement) with the generating
extensions, so residual programs are identical; the difference is purely
the interpretive overhead plus the obligation to parse and analyse the
whole program up front.  That makes it the right baseline for the
paper's claim that "running a generating extension is always faster than
running the corresponding specialiser".

:class:`MixProgram` implements the same protocol as
:class:`~repro.genext.link.GenextProgram` (``signature`` / ``mk`` /
``new_state``), so :func:`repro.genext.engine.specialise` drives both.
"""

import time

from repro.anno.ast import (
    AApp,
    ACall,
    ACoerce,
    AIf,
    ALam,
    ALit,
    APrim,
    AVar,
    acalled_functions,
)
from repro.bt.bt import evaluate
from repro.bt.bttypes import BTTBase, BTTFun, BTTList, BTTPair, BTTSkel
from repro.genext import runtime as rt
from repro.genext.engine import specialise as engine_specialise


def runtime_type(t, btenv):
    """Evaluate a symbolic binding-time type to a runtime type."""
    if isinstance(t, BTTBase):
        return rt.TBase(t.name, evaluate(t.bt, btenv))
    if isinstance(t, BTTSkel):
        return rt.TSkel(evaluate(t.bt, btenv))
    if isinstance(t, BTTList):
        return rt.TList(evaluate(t.bt, btenv), runtime_type(t.elem, btenv))
    if isinstance(t, BTTPair):
        return rt.TPair(
            evaluate(t.bt, btenv),
            runtime_type(t.fst, btenv),
            runtime_type(t.snd, btenv),
        )
    if isinstance(t, BTTFun):
        return rt.TFun(
            evaluate(t.bt, btenv),
            runtime_type(t.arg, btenv),
            runtime_type(t.res, btenv),
        )
    raise TypeError("not a binding-time type: %r" % (t,))


def _signature_of(adef, scheme):
    """Build an executable :class:`~repro.genext.runtime.Signature` from
    an annotated definition (the same information a generating extension
    embeds)."""
    from repro.bt.scheme import param_own_names, result_input_names

    def param_types(env):
        btenv = {n: env[n] for n in adef.bt_params}
        return tuple(runtime_type(t, btenv) for t in adef.param_types)

    return rt.Signature(
        bt_params=adef.bt_params,
        params=adef.params,
        param_bts=param_own_names(scheme),
        param_types=param_types,
        quals=(),
        dyn_inputs=(),
        result_inputs=result_input_names(scheme),
    )


class MixProgram:
    """A whole program loaded into the interpretive specialiser."""

    def __init__(self, program_analysis, module_graph):
        self.analysis = program_analysis
        self.graph = module_graph
        self.defs = {}
        for m in program_analysis.annotated.modules:
            for d in m.defs:
                self.defs[d.name] = (m.name, d)
        self.fn_info = {
            name: rt.FnInfo(
                name,
                module,
                d.params,
                tuple(sorted(acalled_functions(d.body) | {name})),
            )
            for name, (module, d) in self.defs.items()
        }
        self._signatures = {
            name: _signature_of(d, program_analysis.schemes[name])
            for name, (_, d) in self.defs.items()
        }
        self._fingerprint = None

    def fingerprint(self):
        """Cache identity of this program (see
        :meth:`repro.genext.link.GenextProgram.fingerprint`); set by
        :meth:`from_source`, ``None`` (caching disabled) for programs
        constructed directly from an analysis."""
        return self._fingerprint

    # -- front end ----------------------------------------------------------

    @classmethod
    def from_source(cls, source, force_residual=frozenset(),
                    unfolding="lub"):
        """Parse, link, and analyse a whole program — the cost a
        specialiser pays on every run and a generating extension pays
        never.  Records the front-end time in ``front_end_seconds``.

        ``unfolding`` picks the unfold-annotation strategy (see
        :mod:`repro.bt.analysis`); it changes the residual program, so
        it enters the fingerprint.  The binding-time *division* does
        not: versions are a generating-extension compilation artefact
        with no interpretive counterpart, and the residual is identical
        either way."""
        from repro.bt.analysis import analyse_program
        from repro.modsys.program import load_program

        import hashlib

        started = time.perf_counter()
        linked = load_program(source)
        analysis = analyse_program(
            linked, force_residual=force_residual, unfolding=unfolding
        )
        mp = cls(analysis, linked.graph)
        mp.front_end_seconds = time.perf_counter() - started
        h = hashlib.sha256(b"mspec-mix-fingerprint\x00")
        h.update(source.encode("utf-8"))
        for name in sorted(force_residual):
            h.update(b"\x00resid:")
            h.update(name.encode("utf-8"))
        if unfolding != "lub":
            h.update(b"\x00unfolding:")
            h.update(unfolding.encode("utf-8"))
        mp._fingerprint = h.hexdigest()
        return mp

    # -- the GenextProgram protocol -------------------------------------------

    def signature(self, fname):
        return self._signatures[fname]

    def new_state(
        self,
        strategy="bfs",
        sink=None,
        max_versions=10_000,
        deadline=None,
        obs=None,
    ):
        return rt.SpecState(
            self.fn_info,
            self.graph,
            strategy=strategy,
            sink=sink,
            max_versions=max_versions,
            deadline=deadline,
            obs=obs,
        )

    def mk(self, fname):
        _, d = self.defs[fname]
        nbt = len(d.bt_params)

        def mk_f(st, *rest):
            bts = tuple(rest[:nbt])
            args = tuple(rest[nbt:])
            return self.call(st, fname, bts, args)

        return mk_f

    # -- the interpreter ---------------------------------------------------------

    def call(self, st, fname, bts, args):
        _, d = self.defs[fname]
        btenv = dict(zip(d.bt_params, bts))
        unfold = evaluate(d.unfold, btenv)
        return rt.mk_resid(
            st,
            unfold,
            fname,
            bts,
            args,
            lambda: self._body(st, d, btenv, args),
            lambda fresh: self._body(st, d, btenv, fresh),
        )

    def _body(self, st, d, btenv, args):
        env = dict(zip(d.params, args))
        return self.eval(st, d.body, env, btenv)

    def eval(self, st, e, env, btenv):
        if isinstance(e, ALit):
            if e.value == ():
                return rt.nil()
            return rt.lit(e.value)
        if isinstance(e, AVar):
            return env[e.name]
        if isinstance(e, APrim):
            args = tuple(self.eval(st, a, env, btenv) for a in e.args)
            return rt.mk_prim(st, e.op, evaluate(e.bt, btenv), args)
        if isinstance(e, AIf):
            return rt.mk_if(
                st,
                evaluate(e.bt, btenv),
                self.eval(st, e.cond, env, btenv),
                lambda: self.eval(st, e.then_branch, env, btenv),
                lambda: self.eval(st, e.else_branch, env, btenv),
            )
        if isinstance(e, ACall):
            bts = tuple(evaluate(b, btenv) for b in e.bt_args)
            args = tuple(self.eval(st, a, env, btenv) for a in e.args)
            return self.call(st, e.func, bts, args)
        if isinstance(e, ALam):
            return self._make_closure(e, env, btenv)
        if isinstance(e, AApp):
            fun = self.eval(st, e.fun, env, btenv)
            arg = self.eval(st, e.arg, env, btenv)
            return rt.mk_app(st, evaluate(e.bt, btenv), fun, arg)
        if isinstance(e, ACoerce):
            pe = self.eval(st, e.expr, env, btenv)
            return rt.coerce(st, pe, runtime_type(e.dst, btenv))
        raise TypeError("not an annotated expression: %r" % (e,))

    def _make_closure(self, e, env, btenv):
        """An interpretive static closure: its body generator re-enters
        :meth:`eval` (unlike a generating extension's compiled helper)."""
        free_names = e.free
        captured = tuple((name, env[name]) for name in free_names)
        bt_names = tuple(sorted(btenv))
        bts = tuple(btenv[n] for n in bt_names)

        def helper(st, *rest):
            nbt = len(bt_names)
            inner_btenv = dict(zip(bt_names, rest[:nbt]))
            arg = rest[nbt]
            env_values = rest[nbt + 1 :]
            inner_env = dict(zip(free_names, env_values))
            inner_env[e.var] = arg
            return self.eval(st, e.body, inner_env, inner_btenv)

        return rt.mk_lam(None, e.var, helper, bts, captured, e.label, e.fvs)


def mix_specialise(source, goal, static_args=None, options=None, obs=None,
                   **legacy):
    """Whole-pipeline specialisation with the interpretive baseline:
    parse + analyse the complete program, then specialise.  Returns the
    same :class:`~repro.genext.engine.SpecialisationResult` as the
    generating-extension path.

    ``options`` is a :class:`repro.api.SpecOptions`; its
    ``force_residual`` set feeds the analysis front end.  Legacy
    keywords still work with a deprecation warning."""
    from repro.api import spec_options

    options = spec_options("mix_specialise", options, legacy)
    mp = MixProgram.from_source(
        source,
        force_residual=options.force_residual,
        unfolding=options.unfolding,
    )
    return engine_specialise(
        mp, goal, static_args=static_args, options=options, obs=obs
    )
