"""The baseline specialiser ``mix``.

An interpretive offline specialiser over annotated programs.  It produces
the same residual programs as running the generating extensions (the test
suite checks this), but it must *read, parse, and analyse every
definition in a program before it can begin specialisation* and it
interprets annotated syntax trees throughout — the two costs the paper's
generating-extension approach eliminates (Sec. 4).
"""

from repro.specialiser.mix import MixProgram, mix_specialise
from repro.specialiser.online import OnlineSpecialiser, online_specialise

__all__ = [
    "MixProgram",
    "OnlineSpecialiser",
    "mix_specialise",
    "online_specialise",
]
