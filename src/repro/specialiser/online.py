"""An *online* specialiser, for contrast with the offline pipeline.

Sec. 2 of the paper motivates offline specialisation: "An obvious way
for a specialiser to decide whether an operation should be static is to
inspect its operands" — that is online specialisation.  It needs no
binding-time analysis and no annotations, but the decisions are taken at
specialisation time by inspecting values, which is exactly what makes
self-application/generating extensions blow up — and, with a
termination-safe unfolding strategy, it typically unfolds *less* than an
offline specialiser armed with binding-time information.

Strategy implemented here (conservative, terminating wherever the
offline specialiser terminates):

* primitives/conditionals/applications are performed when their operands
  are inspectably static, residualised otherwise;
* a named call is **unfolded only when all its arguments are fully
  static** (then specialisation is just evaluation, which diverges only
  if the program would); otherwise it is **residualised polyvariantly**
  with the same memoisation/pending machinery as the offline engine.

The benchmark ``bench_online_vs_offline`` quantifies the cost: on
``power {S D}``-style goals the online strategy produces a chain of
residual functions where the offline one inlines completely.
"""

from repro.genext import runtime as rt
from repro.genext.engine import _attach_entry
from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var
from repro.lang.names import called_functions
from repro.modsys.program import link_program
from repro.residual.module import assemble_monolithic, assemble_program


def fully_static(pe):
    """Is this value completely known (usable as evaluation input)?"""
    if isinstance(pe, rt.SBase):
        return True
    if isinstance(pe, rt.SList):
        return all(fully_static(v) for v in pe.items)
    if isinstance(pe, rt.SPair):
        return fully_static(pe.fst) and fully_static(pe.snd)
    if isinstance(pe, rt.SClo):
        return all(fully_static(v) for _, v in pe.env)
    return False


_BASE_OPS = (
    "+", "-", "*", "div", "mod", "==", "<", "<=", "and", "or", "not"
)


class OnlineSpecialiser:
    """Specialises a linked program by value inspection."""

    def __init__(self, linked):
        self.linked = linked
        self.defs = {}
        for module, d in linked.program.all_defs():
            self.defs[d.name] = d
        self.fn_info = {
            name: rt.FnInfo(
                name,
                linked.symbols.module_of(name),
                d.params,
                tuple(sorted(called_functions(d.body) | {name})),
            )
            for name, d in self.defs.items()
        }
        self._lam_labels = {}

    # -- driving ------------------------------------------------------------

    def specialise(
        self, goal, static_args=None, strategy="bfs", sink=None, monolithic=False
    ):
        from repro.genext.engine import SpecialisationResult

        static_args = dict(static_args or {})
        d = self.defs[goal]
        unknown = set(static_args) - set(d.params)
        if unknown:
            raise rt.SpecError(
                "%r has no parameter(s) %s" % (goal, ", ".join(sorted(unknown)))
            )
        st = rt.SpecState(
            self.fn_info, self.linked.graph, strategy=strategy, sink=sink
        )
        args = []
        dynamic_params = []
        for p in d.params:
            if p in static_args:
                args.append(rt.from_python(static_args[p]))
            else:
                dynamic_params.append(p)
                args.append(rt.DCode(Var(p)))
        with rt.deep_recursion():
            result = self.call(st, goal, tuple(args))
            st.run_pending()
            entry_code = rt.dynamize(st, result).code
            st.run_pending()
        entry, placed = _attach_entry(
            st, goal, args, entry_code, tuple(dynamic_params), list(st.defs)
        )
        if monolithic:
            program = assemble_monolithic(placed)
            names = {frozenset(["Residual"]): "Residual"}
        else:
            program, names = assemble_program(placed)
        return SpecialisationResult(
            program=program,
            linked=link_program(program),
            entry=entry,
            dynamic_params=tuple(dynamic_params),
            stats=st.stats.as_dict(),
            module_names=names,
        )

    # -- calls ---------------------------------------------------------------

    def call(self, st, fname, args):
        d = self.defs[fname]
        unfold = rt.S if all(fully_static(a) for a in args) else rt.D
        return rt.mk_resid(
            st,
            unfold,
            fname,
            (),
            args,
            lambda: self._body(st, d, args),
            # Unlike the offline pipeline, no coercion guarantees the
            # body of a residual version is dynamic code — dynamise it.
            lambda fresh: rt.dynamize(st, self._body(st, d, fresh)),
        )

    def _body(self, st, d, args):
        return self.eval(st, d.body, dict(zip(d.params, args)))

    # -- evaluation -------------------------------------------------------------

    def eval(self, st, e, env):
        if isinstance(e, Lit):
            return rt.nil() if e.value == () else rt.lit(e.value)
        if isinstance(e, Var):
            return env[e.name]
        if isinstance(e, Prim):
            return self._prim(st, e, env)
        if isinstance(e, If):
            cond = self.eval(st, e.cond, env)
            if isinstance(cond, rt.SBase):
                branch = e.then_branch if cond.value else e.else_branch
                return self.eval(st, branch, env)
            return rt.DCode(
                If(
                    rt.code_of(cond),
                    rt.dynamize(st, self.eval(st, e.then_branch, env)).code,
                    rt.dynamize(st, self.eval(st, e.else_branch, env)).code,
                )
            )
        if isinstance(e, Call):
            args = tuple(self.eval(st, a, env) for a in e.args)
            return self.call(st, e.func, args)
        if isinstance(e, Lam):
            return self._closure(e, env)
        if isinstance(e, App):
            fun = self.eval(st, e.fun, env)
            arg = self.eval(st, e.arg, env)
            if isinstance(fun, rt.SClo):
                return fun.apply(st, arg)
            return rt.DCode(
                App(rt.code_of(fun), rt.dynamize(st, arg).code)
            )
        raise TypeError("not an expression: %r" % (e,))

    def _prim(self, st, e, env):
        args = tuple(self.eval(st, a, env) for a in e.args)
        op = e.op
        static = False
        if op in _BASE_OPS:
            static = all(isinstance(a, rt.SBase) for a in args)
        elif op == "cons":
            static = isinstance(args[1], rt.SList)
        elif op in ("head", "tail", "null"):
            static = isinstance(args[0], rt.SList)
        elif op == "pair":
            static = True
        elif op in ("fst", "snd"):
            static = isinstance(args[0], rt.SPair)
        if static:
            return rt.mk_prim(st, op, rt.S, args)
        return rt.mk_prim(
            st, op, rt.D, tuple(rt.dynamize(st, a) for a in args)
        )

    def _closure(self, e, env):
        label = self._lam_labels.get(id(e))
        if label is None:
            label = "online.lam%d" % (len(self._lam_labels) + 1)
            self._lam_labels[id(e)] = label
            self._lam_labels[label] = e  # keep the node alive
        free = sorted(
            name for name in _free_vars(e.body, {e.var}) if name in env
        )
        captured = tuple((name, env[name]) for name in free)
        fvs = tuple(sorted(called_functions(e.body)))

        def helper(st, arg, *env_values):
            inner = dict(zip(free, env_values))
            inner[e.var] = arg
            return self.eval(st, e.body, inner)

        return rt.mk_lam(None, e.var, helper, (), captured, label, fvs)


def _free_vars(e, bound):
    from repro.lang.names import free_vars

    return free_vars(e, frozenset(bound))


def online_specialise(source, goal, static_args=None, **kwargs):
    """Convenience: parse + link + online-specialise in one call."""
    from repro.modsys.program import load_program

    linked = source if hasattr(source, "program") else load_program(source)
    return OnlineSpecialiser(linked).specialise(goal, static_args, **kwargs)
