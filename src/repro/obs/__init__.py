"""Observability: tracing, metrics, and profiling for the whole stack.

The paper's module-sensitivity means every unit of work — a module's
BTA+cogen job, a wave of such jobs, one residual version built by
``mk_resid`` — is separately delimitable, so it can be separately
*measured*.  This package supplies the three instruments and the plumbing
between them, with zero dependencies beyond the standard library:

* :class:`~repro.obs.trace.Tracer` — hierarchical wall-clock spans
  exported as Chrome trace-event JSON (loadable in Perfetto or
  ``chrome://tracing``).  Spans recorded inside pool workers are shipped
  back as plain dicts and merged into the parent trace, so a parallel
  build yields one timeline across processes.  The disabled tracer
  (:data:`~repro.obs.trace.NULL_TRACER`) is a shared no-op whose spans
  cost one attribute lookup — near-free on hot paths.

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges,
  and timers with a stable JSON snapshot schema
  (:data:`~repro.obs.metrics.METRICS_SCHEMA`).  The registry is the one
  store behind ``PipelineStats``, the cache hit/miss counts, the fault
  supervisor's retry/timeout/crash counters, and the specialiser's
  ``SpecState`` stats — one queryable snapshot instead of three ad-hoc
  surfaces.

* :class:`~repro.obs.bus.EventBus` — ``on_span_end`` / ``on_metric`` /
  ``subscribe`` hooks, so the fault supervisor, the cache, benchmarks,
  and the :class:`~repro.obs.profile.Profiler` observe the build instead
  of having counters hand-threaded through their constructors.

:class:`Obs` bundles the three; every layer accepts an ``obs`` and
defaults to a null one.  See ``docs/observability.md`` for the span
taxonomy, the metrics glossary, and the Perfetto how-to.
"""

from repro.obs.bus import EventBus
from repro.obs.metrics import METRICS_SCHEMA, Counter, Gauge, MetricsRegistry, Timer
from repro.obs.profile import Profiler
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "EventBus",
    "Gauge",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Obs",
    "Profiler",
    "Timer",
    "Tracer",
]


class Obs:
    """One build's (or one specialisation run's) observability bundle.

    ``Obs()`` is the *disabled* configuration: a shared no-op tracer, a
    live (but unexported) metrics registry, and an event bus with no
    subscribers — all three near-free.  ``Obs.enabled()`` turns tracing
    on.  Pass an ``Obs`` to :class:`~repro.pipeline.build.BuildEngine`,
    :func:`~repro.pipeline.build.build_dir`,
    :func:`~repro.genext.engine.specialise`, or the ``mspec`` CLI flags
    ``--trace`` / ``--metrics`` / ``--profile`` do it for you.
    """

    __slots__ = ("tracer", "metrics", "bus")

    def __init__(self, tracer=None, metrics=None, bus=None):
        self.bus = bus if bus is not None else EventBus()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(bus=self.bus)
        )

    @classmethod
    def enabled(cls):
        """An ``Obs`` with a live tracer (metrics and bus included)."""
        bus = EventBus()
        return cls(tracer=Tracer(bus=bus), metrics=MetricsRegistry(bus=bus), bus=bus)

    def with_metrics(self, metrics):
        """This bundle's tracer/bus over a different registry (used by
        the build engine so a caller-supplied ``PipelineStats`` and the
        engine's tracer share one snapshot)."""
        if metrics is self.metrics:
            return self
        return Obs(tracer=self.tracer, metrics=metrics, bus=self.bus)
