"""Counters, gauges, and timers in one queryable registry.

The registry is the single store that used to be three disconnected
surfaces — ``PipelineStats`` counters, the artifact cache's hit/miss
tallies, and the specialiser's ``SpecState`` stats.  Components write
through :meth:`MetricsRegistry.counter` / :meth:`gauge` / :meth:`timer`;
``mspec build --metrics out.json`` (or any caller of :meth:`snapshot`)
reads one JSON document with a stable schema:

.. code-block:: json

    {"schema": "repro.obs.metrics/v1",
     "counters": {"faults.retries": 2, "cache.hits": 14},
     "gauges":   {"build.jobs": 4},
     "timers":   {"stage.analyse": {"count": 3, "seconds": 0.41}}}

Snapshots round-trip: ``MetricsRegistry.from_snapshot(snapshot)``
rebuilds an equivalent registry (used to merge metrics across processes
and to regression-test the schema).  Every update is published on the
bus's ``on_metric`` channel when a bus is attached.

Thread safety: a registry may be written by many threads at once (the
specialisation daemon's request handlers all share one), so each cell's
read-modify-write and the registry's get-or-create hold a lock; bus
notification happens outside it (a subscriber may touch other metrics).
Plain ``+=`` on an attribute is *not* atomic under the GIL — a thread
switch between the load and the store loses increments.
"""

import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = ["Counter", "Gauge", "MetricsRegistry", "Timer", "METRICS_SCHEMA"]

METRICS_SCHEMA = "repro.obs.metrics/v1"


class Counter:
    """A monotonically increasing count (resettable only via ``set``)."""

    __slots__ = ("name", "value", "_registry", "_lock")

    def __init__(self, name, registry=None):
        self.name = name
        self.value = 0
        self._registry = registry
        self._lock = threading.Lock()

    def inc(self, n=1):
        with self._lock:
            self.value += n
            value = self.value
        if self._registry is not None:
            self._registry._notify(self.name, "counter", value)
        return value

    def set(self, value):
        with self._lock:
            self.value = value
        if self._registry is not None:
            self._registry._notify(self.name, "counter", value)
        return value


class Gauge:
    """A point-in-time value (last write wins; ``max_of`` keeps peaks)."""

    __slots__ = ("name", "value", "_registry", "_lock")

    def __init__(self, name, registry=None):
        self.name = name
        self.value = 0
        self._registry = registry
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self.value = value
        if self._registry is not None:
            self._registry._notify(self.name, "gauge", value)
        return value

    def max_of(self, value):
        with self._lock:
            if value <= self.value:
                return self.value
            self.value = value
        if self._registry is not None:
            self._registry._notify(self.name, "gauge", value)
        return value


class Timer:
    """Accumulated wall-clock seconds plus a record count."""

    __slots__ = ("name", "seconds", "count", "_registry", "_lock")

    def __init__(self, name, registry=None):
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self._registry = registry
        self._lock = threading.Lock()

    def add(self, seconds, count=1):
        with self._lock:
            self.seconds += seconds
            self.count += count
            total = self.seconds
        if self._registry is not None:
            self._registry._notify(self.name, "timer", seconds)
        return total

    @contextmanager
    def time(self):
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - started)


class MetricsRegistry:
    """Named metrics, created on first use; one snapshot for everything."""

    __slots__ = ("counters", "gauges", "timers", "bus", "_lock")

    def __init__(self, bus=None):
        self.counters = {}
        self.gauges = {}
        self.timers = {}
        self.bus = bus
        self._lock = threading.Lock()

    def _notify(self, name, kind, value):
        if self.bus is not None:
            self.bus.metric(name, kind, value)

    # -- access (get-or-create) ----------------------------------------------

    def counter(self, name):
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.get(name)
                if c is None:
                    c = self.counters[name] = Counter(name, self)
        return c

    def gauge(self, name):
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.get(name)
                if g is None:
                    g = self.gauges[name] = Gauge(name, self)
        return g

    def timer(self, name):
        t = self.timers.get(name)
        if t is None:
            with self._lock:
                t = self.timers.get(name)
                if t is None:
                    t = self.timers[name] = Timer(name, self)
        return t

    # -- snapshots -----------------------------------------------------------

    def snapshot(self):
        """The stable JSON-ready document (see module docstring).

        When an attached bus has suppressed subscriber exceptions, the
        drop count appears as a ``bus.subscriber_errors`` counter — so a
        buggy observer is visible in the very artifact it was corrupting.
        """
        counters = {name: c.value for name, c in self.counters.items()}
        dropped = getattr(self.bus, "subscriber_errors", 0)
        if dropped:
            counters["bus.subscriber_errors"] = (
                counters.get("bus.subscriber_errors", 0) + dropped
            )
        return {
            "schema": METRICS_SCHEMA,
            "counters": {
                name: counters[name] for name in sorted(counters)
            },
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "timers": {
                name: {"count": t.count, "seconds": t.seconds}
                for name, t in sorted(self.timers.items())
            },
        }

    @classmethod
    def from_snapshot(cls, doc, bus=None):
        """Rebuild a registry from a :meth:`snapshot` document."""
        if doc.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                "not a %s document (schema=%r)"
                % (METRICS_SCHEMA, doc.get("schema"))
            )
        registry = cls(bus=bus)
        for name, value in doc.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in doc.get("gauges", {}).items():
            registry.gauge(name).value = value
        for name, rec in doc.get("timers", {}).items():
            t = registry.timer(name)
            t.count = rec.get("count", 0)
            t.seconds = rec.get("seconds", 0.0)
        return registry

    def merge(self, other):
        """Fold another registry (or snapshot dict) into this one:
        counters and timers add, gauges keep the maximum."""
        if isinstance(other, dict):
            other = MetricsRegistry.from_snapshot(other)
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            self.gauge(name).max_of(g.value)
        for name, t in other.timers.items():
            self.timer(name).add(t.seconds, t.count)
        return self

    def export(self, path):
        """Write the snapshot as JSON; returns ``path``."""
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as f:
            json.dump(self.snapshot(), f, indent=2, sort_keys=True)
        os.replace(tmp, path)
        return path
