"""The event bus: subscription hooks over spans, metrics, and events.

Producers (the tracer, the metrics registry, the build engine, the fault
supervisor) *publish*; consumers (the profiler, benchmarks, a user's
dashboard glue) *subscribe* — nobody hand-threads counters through
constructors.  Publishing with no subscribers is a couple of attribute
checks, so an instrumented component costs nothing until someone
listens.

Three channels:

* ``on_span_end(cb)`` — ``cb(event_dict)`` for every finished span (a
  Chrome trace event dict, including spans merged from pool workers);
* ``on_metric(cb)`` — ``cb(name, kind, value)`` for every counter
  increment, gauge set, and timer record;
* ``subscribe(kind, cb)`` / ``emit(kind, **payload)`` — free-form named
  events (the fault supervisor emits ``"retry"``, ``"timeout"``,
  ``"crash"``, ``"degraded"``; the build engine emits ``"cache.hit"`` /
  ``"cache.miss"`` and ``"module.done"``).

A subscriber that raises does not break the producer (observability must
never fail the build it observes) — but the drop is *accounted*, not
silent: every suppressed exception increments
:attr:`EventBus.subscriber_errors` (surfaced as the
``bus.subscriber_errors`` counter in metrics snapshots), and the first
failure of each subscriber per channel is logged with its traceback.
``EventBus(strict=True)`` re-raises instead — the test suite runs strict
so a buggy observer fails loudly there.
"""

import logging

__all__ = ["EventBus"]

_log = logging.getLogger("repro.obs.bus")


class EventBus:
    """Pub/sub hub for spans, metrics, and named events.

    ``strict=True`` re-raises subscriber exceptions instead of counting
    and suppressing them (for test suites and debugging sessions).
    """

    __slots__ = (
        "_span_subs",
        "_metric_subs",
        "_event_subs",
        "strict",
        "subscriber_errors",
        "_failed_subs",
    )

    def __init__(self, strict=False):
        self._span_subs = []
        self._metric_subs = []
        self._event_subs = {}  # kind -> [cb]; "*" subscribes to all
        self.strict = strict
        self.subscriber_errors = 0
        self._failed_subs = set()

    # -- subscription --------------------------------------------------------

    def on_span_end(self, cb):
        """Call ``cb(event)`` for every finished span; returns ``cb``."""
        self._span_subs.append(cb)
        return cb

    def on_metric(self, cb):
        """Call ``cb(name, kind, value)`` on every metric update;
        ``kind`` is ``'counter'``, ``'gauge'``, or ``'timer'``."""
        self._metric_subs.append(cb)
        return cb

    def subscribe(self, kind, cb):
        """Call ``cb(kind, payload_dict)`` for events of ``kind``
        (``"*"`` matches every kind); returns ``cb``."""
        self._event_subs.setdefault(kind, []).append(cb)
        return cb

    # -- publication ---------------------------------------------------------

    def _subscriber_raised(self, cb, channel, exc):
        """Account (and in strict mode re-raise) a subscriber failure.

        The plain-int counter deliberately bypasses the metrics registry:
        a metric *subscriber* may be the thing that raised, and routing
        the error count back through ``on_metric`` would recurse."""
        if self.strict:
            raise exc
        self.subscriber_errors += 1
        key = (channel, id(cb))
        if key not in self._failed_subs:
            self._failed_subs.add(key)
            _log.warning(
                "%s subscriber %r raised %s: %s (suppressed; further "
                "failures counted in bus.subscriber_errors without "
                "logging)",
                channel,
                cb,
                type(exc).__name__,
                exc,
                exc_info=exc,
            )

    def span_end(self, event):
        for cb in self._span_subs:
            try:
                cb(event)
            except Exception as exc:
                self._subscriber_raised(cb, "span_end", exc)

    def metric(self, name, kind, value):
        for cb in self._metric_subs:
            try:
                cb(name, kind, value)
            except Exception as exc:
                self._subscriber_raised(cb, "metric", exc)

    def emit(self, kind, **payload):
        subs = self._event_subs
        if not subs:
            return
        for cb in subs.get(kind, ()):
            try:
                cb(kind, payload)
            except Exception as exc:
                self._subscriber_raised(cb, "event:%s" % kind, exc)
        for cb in subs.get("*", ()):
            try:
                cb(kind, payload)
            except Exception as exc:
                self._subscriber_raised(cb, "event:%s" % kind, exc)
