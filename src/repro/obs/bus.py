"""The event bus: subscription hooks over spans, metrics, and events.

Producers (the tracer, the metrics registry, the build engine, the fault
supervisor) *publish*; consumers (the profiler, benchmarks, a user's
dashboard glue) *subscribe* — nobody hand-threads counters through
constructors.  Publishing with no subscribers is a couple of attribute
checks, so an instrumented component costs nothing until someone
listens.

Three channels:

* ``on_span_end(cb)`` — ``cb(event_dict)`` for every finished span (a
  Chrome trace event dict, including spans merged from pool workers);
* ``on_metric(cb)`` — ``cb(name, kind, value)`` for every counter
  increment, gauge set, and timer record;
* ``subscribe(kind, cb)`` / ``emit(kind, **payload)`` — free-form named
  events (the fault supervisor emits ``"retry"``, ``"timeout"``,
  ``"crash"``, ``"degraded"``; the build engine emits ``"cache.hit"`` /
  ``"cache.miss"`` and ``"module.done"``).

A subscriber that raises does not break the producer: the exception is
swallowed (observability must never fail the build it observes).
"""

__all__ = ["EventBus"]


class EventBus:
    """Pub/sub hub for spans, metrics, and named events."""

    __slots__ = ("_span_subs", "_metric_subs", "_event_subs")

    def __init__(self):
        self._span_subs = []
        self._metric_subs = []
        self._event_subs = {}  # kind -> [cb]; "*" subscribes to all

    # -- subscription --------------------------------------------------------

    def on_span_end(self, cb):
        """Call ``cb(event)`` for every finished span; returns ``cb``."""
        self._span_subs.append(cb)
        return cb

    def on_metric(self, cb):
        """Call ``cb(name, kind, value)`` on every metric update;
        ``kind`` is ``'counter'``, ``'gauge'``, or ``'timer'``."""
        self._metric_subs.append(cb)
        return cb

    def subscribe(self, kind, cb):
        """Call ``cb(kind, payload_dict)`` for events of ``kind``
        (``"*"`` matches every kind); returns ``cb``."""
        self._event_subs.setdefault(kind, []).append(cb)
        return cb

    # -- publication ---------------------------------------------------------

    def span_end(self, event):
        for cb in self._span_subs:
            try:
                cb(event)
            except Exception:
                pass

    def metric(self, name, kind, value):
        for cb in self._metric_subs:
            try:
                cb(name, kind, value)
            except Exception:
                pass

    def emit(self, kind, **payload):
        subs = self._event_subs
        if not subs:
            return
        for cb in subs.get(kind, ()):
            try:
                cb(kind, payload)
            except Exception:
                pass
        for cb in subs.get("*", ()):
            try:
                cb(kind, payload)
            except Exception:
                pass
