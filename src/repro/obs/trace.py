"""Hierarchical wall-clock spans with Chrome trace-event export.

Spans are recorded as plain dicts in the Chrome trace-event format
(``ph: "X"`` complete events with microsecond ``ts``/``dur``), so a
trace file written by :meth:`Tracer.export` loads directly into Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Nesting is conveyed
the Chrome way — containment of ``[ts, ts+dur]`` within one
``pid``/``tid`` lane — and additionally recorded as an explicit
``args.parent`` so tools (and tests) need not reconstruct it.

Cross-process collection: a pool worker builds its own short-lived
:class:`Tracer`, and its event dicts travel back over the pickle channel
in the job result; the parent merges them with :meth:`Tracer.add_events`.
Timestamps are wall-clock anchored (``time.time()`` epoch refined by
``perf_counter`` deltas), so worker spans land at the right place on the
parent's timeline without any clock handshake.

The disabled path matters more than the enabled one: ``NULL_TRACER`` is
a process-wide singleton whose :meth:`~NullTracer.span` returns one
shared no-op context manager — entering a span when tracing is off costs
two attribute lookups and no allocation.
"""

import json
import os
import threading
import time

__all__ = ["NULL_TRACER", "NullTracer", "Tracer", "TRACE_SCHEMA"]

# Identifies trace files we wrote (carried in otherData; the traceEvents
# shape itself is Chrome's, not ours).
TRACE_SCHEMA = "repro.obs.trace/v1"


class _NullSpan:
    """The shared do-nothing span."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **args):
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op."""

    enabled = False

    __slots__ = ()

    def span(self, name, cat="build", **args):
        return _NULL_SPAN

    def instant(self, name, cat="build", **args):
        pass

    def add_events(self, events):
        pass

    @property
    def events(self):
        return []

    def span_names(self):
        return []


NULL_TRACER = NullTracer()


class _Span:
    """One live span; records itself on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "_start_us", "_tid")

    def __init__(self, tracer, name, cat, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def note(self, **args):
        """Attach extra ``args`` to the span (visible in the viewer)."""
        self.args.update(args)
        return self

    def __enter__(self):
        self._start_us = self.tracer._now_us()
        stack = self.tracer._stack()
        if stack:
            self.args.setdefault("parent", stack[-1])
        stack.append(self.name)
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self.tracer
        end_us = tracer._now_us()
        stack = tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        tracer.record(
            {
                "name": self.name,
                "cat": self.cat,
                "ph": "X",
                "ts": self._start_us,
                "dur": end_us - self._start_us,
                "pid": tracer.pid,
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "args": self.args,
            }
        )
        return False


class Tracer:
    """Collects span events; thread-safe; export via :meth:`export`.

    ``bus``, if given, receives every finished span on
    :meth:`~repro.obs.bus.EventBus.span_end` — including events merged
    from workers — so profilers subscribe once and see everything.
    """

    enabled = True

    def __init__(self, bus=None):
        self.bus = bus
        self.events = []
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._tls = threading.local()
        # Wall-anchored monotonic clock: epoch from time.time() once,
        # deltas from perf_counter (sub-microsecond, never steps back).
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    def _now_us(self):
        return (
            self._epoch_wall + (time.perf_counter() - self._epoch_perf)
        ) * 1e6

    def _stack(self):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- recording -----------------------------------------------------------

    def span(self, name, cat="build", **args):
        """A context manager timing one unit of work."""
        return _Span(self, name, cat, args)

    def instant(self, name, cat="build", **args):
        """A zero-duration marker event."""
        self.record(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": self._now_us(),
                "s": "t",
                "pid": self.pid,
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "args": args,
            }
        )

    def record(self, event):
        with self._lock:
            self.events.append(event)
        if self.bus is not None and event.get("ph") == "X":
            self.bus.span_end(event)

    def add_events(self, events):
        """Merge span events recorded elsewhere (a pool worker, another
        tracer).  Each merged complete-span is republished on the bus."""
        for event in events:
            self.record(event)

    def trim(self, keep):
        """Drop all but the ``keep`` most recent events.  Long-lived
        processes (the :mod:`repro.serve` daemon) call this after each
        request so the trace buffer stays bounded; dropped spans were
        already published on the bus."""
        with self._lock:
            if len(self.events) > keep:
                del self.events[: len(self.events) - keep]

    # -- export --------------------------------------------------------------

    def to_chrome(self):
        """The Chrome trace-event JSON object (``traceEvents`` + meta)."""
        with self._lock:
            events = sorted(self.events, key=lambda e: e.get("ts", 0))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "tool": "mspec"},
        }

    def export(self, path):
        """Write the trace as Chrome trace-event JSON; returns ``path``."""
        doc = self.to_chrome()
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as f:
            json.dump(doc, f, indent=None, separators=(",", ":"))
        os.replace(tmp, path)
        return path

    def span_names(self):
        """Sorted multiset of complete-span names (the deterministic
        skeleton of a trace: identical for ``jobs=1`` and ``jobs=N``)."""
        return sorted(e["name"] for e in self.events if e.get("ph") == "X")
