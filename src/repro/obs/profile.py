"""Wall-clock attribution: where did the build (or run) spend its time?

The profiler is a pure :class:`~repro.obs.bus.EventBus` subscriber — it
never touches the pipeline.  It listens to ``on_span_end`` and buckets
durations by span category: per-module job time (``job`` spans, pool
workers included), per-stage time, and per-specialisation-version time
(``mk_resid`` spans).  ``mspec build --profile`` / ``mspec specialise
--profile`` print :meth:`Profiler.report`.
"""

__all__ = ["Profiler"]

# Span categories attributed per distinct span name (everything else is
# aggregated per category only).
_NAMED_CATS = ("job", "analyse", "cogen", "mk_resid", "stage")


class Profiler:
    """Aggregates span durations from a bus subscription."""

    def __init__(self, bus):
        self.by_name = {}  # (cat, name) -> [seconds, count]
        self.by_cat = {}  # cat -> seconds
        bus.on_span_end(self._on_span_end)

    def _on_span_end(self, event):
        if event.get("ph") != "X":
            return
        cat = event.get("cat", "")
        seconds = event.get("dur", 0) / 1e6
        self.by_cat[cat] = self.by_cat.get(cat, 0.0) + seconds
        if cat in _NAMED_CATS:
            rec = self.by_name.setdefault((cat, event["name"]), [0.0, 0])
            rec[0] += seconds
            rec[1] += 1

    # -- queries -------------------------------------------------------------

    def seconds(self, cat, name=None):
        if name is None:
            return self.by_cat.get(cat, 0.0)
        return self.by_name.get((cat, name), [0.0, 0])[0]

    def top(self, cat, n=None):
        """``[(name, seconds, count)]`` for ``cat``, slowest first."""
        rows = [
            (name, rec[0], rec[1])
            for (c, name), rec in self.by_name.items()
            if c == cat
        ]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows if n is None else rows[:n]

    def as_dict(self):
        return {
            "by_category": dict(sorted(self.by_cat.items())),
            "spans": {
                "%s:%s" % (cat, name): {"seconds": rec[0], "count": rec[1]}
                for (cat, name), rec in sorted(self.by_name.items())
            },
        }

    def report(self, top=15):
        """Human-readable attribution, one section per populated
        category (module jobs, then specialisation versions)."""
        lines = []
        sections = (
            ("job", "per-module wall clock (analyse+cogen jobs)"),
            ("mk_resid", "per-version wall clock (specialised versions)"),
            ("stage", "per-stage wall clock"),
        )
        for cat, title in sections:
            rows = self.top(cat, top)
            if not rows:
                continue
            lines.append(title + ":")
            width = max(len(name) for name, _, _ in rows)
            for name, seconds, count in rows:
                lines.append(
                    "  %-*s %9.2f ms  x%d" % (width, name, seconds * 1e3, count)
                )
        if not lines:
            return "profile: no spans recorded (is tracing enabled?)"
        return "\n".join(lines)
