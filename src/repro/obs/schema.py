"""Schema validation for the observability JSON artifacts.

Zero-dependency structural validators (no jsonschema in the image) for
the three documents the toolchain emits:

* Chrome trace files (``mspec build --trace``) — checked against the
  trace-event subset we generate (``X`` complete spans / ``i`` instants
  with microsecond ``ts``, ``pid``/``tid`` lanes, ``args`` dicts);
* metrics snapshots (``mspec build --metrics``,
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot`);
* ``mspec ... --json`` reports (``mspec.report/v1``).

Each ``validate_*`` returns a list of problem strings (empty = valid).
``python -m repro.obs.schema FILE...`` validates files (kind inferred
from content) and exits non-zero on the first invalid one — CI runs it
on the artifacts of a traced smoke build.
"""

import json
import sys

from repro.obs.metrics import METRICS_SCHEMA

__all__ = [
    "BENCH_EXEC_TIERS_SCHEMA",
    "BENCH_INCREMENTAL_SCHEMA",
    "BENCH_POLYVARIANCE_SCHEMA",
    "BENCH_SERVE_SCHEMA",
    "BENCH_SOAK_SCHEMA",
    "BENCH_SPEC_THROUGHPUT_SCHEMA",
    "REPORT_SCHEMA",
    "WELL_KNOWN_COUNTERS",
    "validate_bench_exec_tiers",
    "validate_bench_incremental",
    "validate_bench_polyvariance",
    "validate_bench_serve",
    "validate_bench_soak",
    "validate_bench_spec_throughput",
    "validate_metrics",
    "validate_report",
    "validate_trace",
    "validate_file",
]

REPORT_SCHEMA = "mspec.report/v1"

BENCH_SPEC_THROUGHPUT_SCHEMA = "repro.bench.spec_throughput/v1"

BENCH_SERVE_SCHEMA = "repro.bench.serve/v1"

BENCH_SOAK_SCHEMA = "repro.bench.soak/v1"

BENCH_INCREMENTAL_SCHEMA = "repro.bench.incremental/v1"

BENCH_EXEC_TIERS_SCHEMA = "repro.bench.exec_tiers/v1"

BENCH_POLYVARIANCE_SCHEMA = "repro.bench.polyvariance/v1"

# The paper's experiment families (Sec. 6, E4-E9) a polyvariance
# scenario may claim membership of.
_BENCH_FAMILIES = frozenset(["e4", "e5", "e6", "e7", "e8", "e9"])

_REPORT_COMMANDS = ("build", "specialise", "fsck", "check")

_NUMBER = (int, float)

# Counters with a pinned meaning across the toolchain: event *counts*,
# so a snapshot carrying one must report a non-negative integer.
# (Arbitrary counter names remain legal — user code may count anything —
# but these names are part of the documented performance surface; see
# docs/performance.md.)
WELL_KNOWN_COUNTERS = frozenset(
    [
        "speccache.hits",
        "speccache.misses",
        "speccache.reads",
        "speccache.writes",
        "rtcg.lru_hits",
        "rtcg.lru_misses",
        "rtcg.lru_evictions",
        # Warm-hit payload decoding (repro.speccache.decode_result):
        # memo hits skip the parse/re-link of the residual text.
        "speccache.decode_hits",
        "speccache.decode_misses",
        # The execution ladder (repro.backend.tiers, docs/performance.md
        # "Execution tiers"): runs per tier, memoised-callable probes,
        # promotions, and how tier-2 callables were obtained (loaded
        # marshalled code / recompiled resid.py / emitted from the AST).
        "tier.t0_runs",
        "tier.t1_runs",
        "tier.t2_runs",
        "tier.memo_hits",
        "tier.promotions",
        "tier.code_loads",
        "tier.source_compiles",
        "tier.emitted",
        "batch.requests",
        "batch.deduped",
        "batch.failed",
        "cache.hits",
        "cache.misses",
        # Definition-level incremental recompilation (docs/pipeline.md):
        # defs reused verbatim from the previous build's records, defs
        # whose scheme was re-derived, re-derived defs whose scheme
        # digest came out unchanged (the early-cutoff points), modules
        # rebuilt per-definition in the parent, cache-hit modules whose
        # deps' interfaces changed (saved specifically by def-level
        # keying), and incremental attempts that fell back to full
        # module analysis.
        "incr.defs_reused",
        "incr.defs_re_derived",
        "incr.defs_cut_off",
        "incr.modules_incremental",
        "incr.modules_skipped",
        "incr.fallbacks",
        # Fallbacks caused by a *raised* exception inside the fast path
        # (as opposed to a clean "cannot apply" answer) — these indicate
        # a bug worth looking at, so they are counted separately and the
        # first per module is reported on the event bus.
        "incr.fallback_errors",
        # Execution-ladder artifacts whose marshalled code object could
        # not be decoded or exec'd (version skew, corruption): the run
        # falls back a tier, but the miss is counted, not silent.
        "tier.code_decode_miss",
        "faults.retries",
        "faults.timeouts",
        "faults.crashes",
        "faults.degradations",
        "bus.subscriber_errors",
        "check.programs",
        "check.divergences",
        "check.lint_findings",
        "check.iface_findings",
        "check.bundles",
        "check.minimise_deletions",
        # The serve daemon's request accounting (docs/serving.md):
        # every specialise request increments serve.requests and exactly
        # one of warm/cold (answered) or rejections/failures/
        # deadline_kills (refused/failed); coalesced marks followers of
        # an identical in-flight request; relinks counts source-change
        # re-links of the served program.
        "serve.requests",
        "serve.warm",
        "serve.cold",
        "serve.rejections",
        "serve.deadline_kills",
        "serve.failures",
        "serve.relinks",
        "serve.coalesced",
        # Tiered execution requests (the `run` op): answered by the
        # daemon's TierLadder, one per request.
        "serve.runs",
        # Chaos/resilience accounting (docs/robustness.md): recycles
        # counts graceful worker-generation retirements, faults_injected
        # the serve-phase faults actually performed.
        "serve.recycles",
        "serve.faults_injected",
        # The soak harness (`mspec soak`, repro.soak): requests it sent,
        # how they ended, retries the resilient client performed, and
        # the differential checks/divergences observed.
        "soak.requests",
        "soak.ok",
        "soak.client_errors",
        "soak.retries",
        "soak.rejected",
        "soak.batch_requests",
        "soak.checks",
        "soak.divergences",
    ]
)


def _problems_prefix(problems, prefix):
    return ["%s: %s" % (prefix, p) for p in problems]


def validate_trace(doc):
    """Problems with a Chrome trace-event document (empty list = ok)."""
    problems = []
    if not isinstance(doc, dict):
        return ["trace document must be a JSON object, got %s" % type(doc).__name__]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, e in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(e, dict):
            problems.append("%s: not an object" % where)
            continue
        if not isinstance(e.get("name"), str) or not e.get("name"):
            problems.append("%s: missing/empty name" % where)
        ph = e.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append("%s: unsupported ph %r" % (where, ph))
            continue
        if ph == "M":
            continue
        if not isinstance(e.get("ts"), _NUMBER) or e.get("ts", -1) < 0:
            problems.append("%s: ts must be a non-negative number" % where)
        if ph == "X" and (
            not isinstance(e.get("dur"), _NUMBER) or e.get("dur", -1) < 0
        ):
            problems.append("%s: X event needs a non-negative dur" % where)
        for lane in ("pid", "tid"):
            if not isinstance(e.get(lane), int):
                problems.append("%s: %s must be an integer" % (where, lane))
        if "cat" in e and not isinstance(e["cat"], str):
            problems.append("%s: cat must be a string" % where)
        if "args" in e and not isinstance(e["args"], dict):
            problems.append("%s: args must be an object" % where)
    return problems


def validate_metrics(doc):
    """Problems with a metrics snapshot (empty list = ok)."""
    if not isinstance(doc, dict):
        return ["metrics document must be a JSON object"]
    problems = []
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(
            "schema must be %r, got %r" % (METRICS_SCHEMA, doc.get("schema"))
        )
    for section in ("counters", "gauges"):
        table = doc.get(section)
        if not isinstance(table, dict):
            problems.append("%s must be an object" % section)
            continue
        for name, value in table.items():
            if not isinstance(name, str):
                problems.append("%s key %r is not a string" % (section, name))
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                problems.append("%s[%r] must be a number" % (section, name))
            elif section == "counters" and name in WELL_KNOWN_COUNTERS:
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        "counters[%r] is a well-known event count and "
                        "must be a non-negative integer, got %r"
                        % (name, value)
                    )
    timers = doc.get("timers")
    if not isinstance(timers, dict):
        problems.append("timers must be an object")
    else:
        for name, rec in timers.items():
            if not isinstance(rec, dict):
                problems.append("timers[%r] must be an object" % name)
                continue
            if not isinstance(rec.get("count"), int):
                problems.append("timers[%r].count must be an integer" % name)
            if not isinstance(rec.get("seconds"), _NUMBER):
                problems.append("timers[%r].seconds must be a number" % name)
    return problems


def validate_report(doc):
    """Problems with an ``mspec --json`` report (empty list = ok)."""
    if not isinstance(doc, dict):
        return ["report document must be a JSON object"]
    problems = []
    if doc.get("schema") != REPORT_SCHEMA:
        problems.append(
            "schema must be %r, got %r" % (REPORT_SCHEMA, doc.get("schema"))
        )
    if doc.get("command") not in _REPORT_COMMANDS:
        problems.append(
            "command must be one of %s, got %r"
            % ("/".join(_REPORT_COMMANDS), doc.get("command"))
        )
    if not isinstance(doc.get("exit_code"), int):
        problems.append("exit_code must be an integer")
    if not isinstance(doc.get("ok"), bool):
        problems.append("ok must be a boolean")
    if not isinstance(doc.get("report"), dict):
        problems.append("report must be an object")
    if "metrics" in doc:
        problems.extend(_problems_prefix(validate_metrics(doc["metrics"]), "metrics"))
    return problems


def validate_bench_spec_throughput(doc):
    """Problems with a ``BENCH_spec_throughput.json`` document (empty
    list = ok).  The document is what
    ``benchmarks/bench_spec_throughput.py`` emits: the workload shape,
    a flat table of timings/speedups, and the byte-identity verdict."""
    if not isinstance(doc, dict):
        return ["bench document must be a JSON object"]
    problems = []
    if doc.get("schema") != BENCH_SPEC_THROUGHPUT_SCHEMA:
        problems.append(
            "schema must be %r, got %r"
            % (BENCH_SPEC_THROUGHPUT_SCHEMA, doc.get("schema"))
        )
    if not isinstance(doc.get("cpus"), int) or doc.get("cpus", 0) < 1:
        problems.append("cpus must be a positive integer")
    if not isinstance(doc.get("workload"), dict):
        problems.append("workload must be an object")
    if doc.get("identical") is not True:
        problems.append(
            "identical must be true (results must be byte-identical "
            "across cache states and jobs widths)"
        )
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        problems.append("results must be a non-empty object")
    else:
        for name, value in results.items():
            if not isinstance(name, str):
                problems.append("results key %r is not a string" % (name,))
            if (
                not isinstance(value, _NUMBER)
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    "results[%r] must be a non-negative number" % (name,)
                )
    return problems


def validate_bench_serve(doc):
    """Problems with a ``BENCH_serve.json`` document (empty list = ok).

    The document is what ``benchmarks/bench_serve.py`` emits: the
    workload shape, daemon/CLI latencies and throughputs, and the
    byte-identity verdict for daemon-vs-CLI residuals."""
    if not isinstance(doc, dict):
        return ["bench document must be a JSON object"]
    problems = []
    if doc.get("schema") != BENCH_SERVE_SCHEMA:
        problems.append(
            "schema must be %r, got %r"
            % (BENCH_SERVE_SCHEMA, doc.get("schema"))
        )
    if not isinstance(doc.get("cpus"), int) or doc.get("cpus", 0) < 1:
        problems.append("cpus must be a positive integer")
    if not isinstance(doc.get("workload"), dict):
        problems.append("workload must be an object")
    if doc.get("identical") is not True:
        problems.append(
            "identical must be true (daemon residuals must be "
            "byte-identical to the one-shot CLI's)"
        )
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        problems.append("results must be a non-empty object")
    else:
        for name, value in results.items():
            if not isinstance(name, str):
                problems.append("results key %r is not a string" % (name,))
            if (
                not isinstance(value, _NUMBER)
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    "results[%r] must be a non-negative number" % (name,)
                )
    return problems


def validate_bench_soak(doc):
    """Problems with a ``BENCH_soak.json`` document (empty list = ok).

    The document is what ``mspec soak`` (:mod:`repro.soak`) emits: the
    workload shape, request/outcome tallies, the differential-check
    verdict, and the error-budget verdict."""
    if not isinstance(doc, dict):
        return ["bench document must be a JSON object"]
    problems = []
    if doc.get("schema") != BENCH_SOAK_SCHEMA:
        problems.append(
            "schema must be %r, got %r"
            % (BENCH_SOAK_SCHEMA, doc.get("schema"))
        )
    if not isinstance(doc.get("cpus"), int) or doc.get("cpus", 0) < 1:
        problems.append("cpus must be a positive integer")
    if not isinstance(doc.get("workload"), dict):
        problems.append("workload must be an object")
    if not isinstance(doc.get("ok"), bool):
        problems.append("ok must be a boolean")
    if (
        not isinstance(doc.get("seconds"), _NUMBER)
        or isinstance(doc.get("seconds"), bool)
        or doc.get("seconds", -1) < 0
    ):
        problems.append("seconds must be a non-negative number")
    for section in ("requests", "checks", "faults"):
        table = doc.get(section)
        if not isinstance(table, dict):
            problems.append("%s must be an object" % section)
            continue
        for name, value in table.items():
            if not isinstance(name, str):
                problems.append("%s key %r is not a string" % (section, name))
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    "%s[%r] must be a non-negative integer" % (section, name)
                )
    checks = doc.get("checks")
    if isinstance(checks, dict):
        for key in ("performed", "divergences"):
            if not isinstance(checks.get(key), int):
                problems.append("checks.%s must be an integer" % key)
    budget = doc.get("error_budget")
    if not isinstance(budget, dict):
        problems.append("error_budget must be an object")
    elif not isinstance(budget.get("ok"), bool):
        problems.append("error_budget.ok must be a boolean")
    return problems


def validate_bench_incremental(doc):
    """Problems with a ``BENCH_incremental.json`` document (empty list =
    ok).  The document is what ``benchmarks/bench_incremental.py``
    emits: the chain shape, the cold/warm/incremental timing
    trajectory, the ``incr.*`` counter evidence, and the byte-identity
    verdict for incremental-vs-cold artifacts."""
    if not isinstance(doc, dict):
        return ["bench document must be a JSON object"]
    problems = []
    if doc.get("schema") != BENCH_INCREMENTAL_SCHEMA:
        problems.append(
            "schema must be %r, got %r"
            % (BENCH_INCREMENTAL_SCHEMA, doc.get("schema"))
        )
    if not isinstance(doc.get("cpus"), int) or doc.get("cpus", 0) < 1:
        problems.append("cpus must be a positive integer")
    if not isinstance(doc.get("workload"), dict):
        problems.append("workload must be an object")
    if doc.get("identical") is not True:
        problems.append(
            "identical must be true (incremental artifacts must be "
            "byte-identical to a from-scratch build's)"
        )
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        problems.append("results must be a non-empty object")
    else:
        for name, value in results.items():
            if not isinstance(name, str):
                problems.append("results key %r is not a string" % (name,))
            if (
                not isinstance(value, _NUMBER)
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    "results[%r] must be a non-negative number" % (name,)
                )
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        problems.append("counters must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(
                    "counters[%r] must be a non-negative integer" % (name,)
                )
        if counters.get("defs_cut_off", 0) < 1:
            problems.append(
                "counters.defs_cut_off must be >= 1 (the single-def "
                "edit must demonstrate early cutoff)"
            )
    return problems


def validate_bench_exec_tiers(doc):
    """Problems with a ``BENCH_exec_tiers.json`` document (empty list =
    ok).  The document is what ``benchmarks/bench_exec_tiers.py``
    emits: per-tier warm timings on the machine-interpreter workload,
    the cross-tier value-identity verdict, the tier-2-vs-tier-1
    speedup (with its >= 10x floor), and the daemon-restart evidence —
    a previously-hot goal answered from the persisted artifact with
    zero specialisation runs and zero ``compile()``s from the AST."""
    if not isinstance(doc, dict):
        return ["bench document must be a JSON object"]
    problems = []
    if doc.get("schema") != BENCH_EXEC_TIERS_SCHEMA:
        problems.append(
            "schema must be %r, got %r"
            % (BENCH_EXEC_TIERS_SCHEMA, doc.get("schema"))
        )
    if not isinstance(doc.get("cpus"), int) or doc.get("cpus", 0) < 1:
        problems.append("cpus must be a positive integer")
    if not isinstance(doc.get("workload"), dict):
        problems.append("workload must be an object")
    if doc.get("identical") is not True:
        problems.append(
            "identical must be true (all three tiers must produce "
            "byte-identical values)"
        )
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        problems.append("results must be a non-empty object")
    else:
        for name, value in results.items():
            if not isinstance(name, str):
                problems.append("results key %r is not a string" % (name,))
            if (
                not isinstance(value, _NUMBER)
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    "results[%r] must be a non-negative number" % (name,)
                )
        speedup = results.get("tier2_vs_tier1_speedup", 0)
        if not isinstance(speedup, _NUMBER) or speedup < 10:
            problems.append(
                "results.tier2_vs_tier1_speedup must be >= 10 (compiled "
                "execution must beat interpreting the residual 10x)"
            )
    restart = doc.get("restart")
    if not isinstance(restart, dict):
        problems.append("restart must be an object")
    else:
        if restart.get("served_from_artifact") is not True:
            problems.append(
                "restart.served_from_artifact must be true (the cold "
                "daemon must answer at tier 2 from the persisted "
                "artifact)"
            )
        for name in ("code_loads", "specialisations", "emitted"):
            value = restart.get(name)
            if not isinstance(value, int) or isinstance(value, bool) or (
                value < 0
            ):
                problems.append(
                    "restart.%s must be a non-negative integer" % name
                )
        if restart.get("code_loads", 0) < 1:
            problems.append(
                "restart.code_loads must be >= 1 (the artifact's "
                "marshalled code object must actually be loaded)"
            )
        if restart.get("specialisations", 1) != 0:
            problems.append(
                "restart.specialisations must be 0 (no re-specialising "
                "after the restart)"
            )
        if restart.get("emitted", 1) != 0:
            problems.append(
                "restart.emitted must be 0 (no re-compile() from the "
                "AST after the restart)"
            )
    return problems


def validate_bench_polyvariance(doc):
    """Problems with a ``BENCH_polyvariance.json`` document (empty list
    = ok).  The document is what ``benchmarks/bench_polyvariance.py``
    emits: per-scenario residual sizes and warm residual run times under
    the default strategies vs size-change unfolding, plus the
    polyvariant-division byte-identity and cross-strategy value-identity
    verdicts.  Every scenario names the paper experiment family
    (E4-E9) it instantiates, and at least two scenarios must show a
    measurable win — a smaller residual or a faster residual run."""
    if not isinstance(doc, dict):
        return ["bench document must be a JSON object"]
    problems = []
    if doc.get("schema") != BENCH_POLYVARIANCE_SCHEMA:
        problems.append(
            "schema must be %r, got %r"
            % (BENCH_POLYVARIANCE_SCHEMA, doc.get("schema"))
        )
    if not isinstance(doc.get("cpus"), int) or doc.get("cpus", 0) < 1:
        problems.append("cpus must be a positive integer")
    if not isinstance(doc.get("workload"), dict):
        problems.append("workload must be an object")
    if doc.get("values_identical") is not True:
        problems.append(
            "values_identical must be true (every strategy's residual "
            "must compute the same values as the interpreter)"
        )
    if doc.get("poly_identical") is not True:
        problems.append(
            "poly_identical must be true (polyvariant division must "
            "not change the residual program)"
        )
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        return problems + ["scenarios must be a non-empty object"]
    wins = 0
    for name, s in sorted(scenarios.items()):
        where = "scenarios[%r]" % name
        if not isinstance(s, dict):
            problems.append("%s: not an object" % where)
            continue
        if s.get("family") not in _BENCH_FAMILIES:
            problems.append(
                "%s: family must be one of %s, got %r"
                % (where, "/".join(sorted(_BENCH_FAMILIES)), s.get("family"))
            )
        bad = False
        for key, value in sorted(s.items()):
            if key == "family":
                continue
            if (
                not isinstance(value, _NUMBER)
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    "%s.%s must be a non-negative number" % (where, key)
                )
                bad = True
        if bad:
            continue
        smaller = (
            "sizechange_chars" in s
            and s["sizechange_chars"] < s.get("baseline_chars", 0)
        )
        faster = (
            "sizechange_run_us" in s
            and s["sizechange_run_us"] < s.get("baseline_run_us", 0)
        )
        if smaller or faster:
            wins += 1
    if wins < 2:
        problems.append(
            "at least 2 scenarios must show a measurable size-change "
            "win (smaller residual or faster residual run), got %d" % wins
        )
    return problems


def validate_file(path):
    """``(kind, problems)`` for a JSON file; kind inferred from content."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return "unknown", ["cannot load %s: %s" % (path, exc)]
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace", validate_trace(doc)
    if isinstance(doc, dict) and doc.get("schema") == METRICS_SCHEMA:
        return "metrics", validate_metrics(doc)
    if isinstance(doc, dict) and doc.get("schema") == REPORT_SCHEMA:
        return "report", validate_report(doc)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SPEC_THROUGHPUT_SCHEMA:
        return "bench", validate_bench_spec_throughput(doc)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SERVE_SCHEMA:
        return "bench", validate_bench_serve(doc)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SOAK_SCHEMA:
        return "bench", validate_bench_soak(doc)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_INCREMENTAL_SCHEMA:
        return "bench", validate_bench_incremental(doc)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_EXEC_TIERS_SCHEMA:
        return "bench", validate_bench_exec_tiers(doc)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_POLYVARIANCE_SCHEMA:
        return "bench", validate_bench_polyvariance(doc)
    return "unknown", ["unrecognised document (no known schema marker)"]


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.schema FILE.json ...", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        kind, problems = validate_file(path)
        if problems:
            status = 1
            print("%s: INVALID %s" % (path, kind))
            for p in problems:
                print("  - " + p)
        else:
            print("%s: valid %s" % (path, kind))
    return status


if __name__ == "__main__":
    sys.exit(main())
