"""The serve daemon: protocol, request brain, sockets, lifecycle.

The load-bearing property mirrors the batch driver's: the daemon is
pure performance, never semantics — every answer's residual program is
byte-identical to what a one-shot ``specialise`` produces for the same
request, warm or cold, at any concurrency.  Around that: the
``repro.serve/v1`` wire contract, the admission/backpressure layer,
per-request deadlines that kill hung workers, source-change re-links,
coalescing of identical in-flight requests, graceful drain, and both
transports.
"""

import json
import os
import threading
import time

import pytest

import repro
from repro.obs.schema import validate_metrics, validate_trace
from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeConfig,
    SpecServer,
    protocol,
)
from repro.serve.daemon import make_transport, serve_forever

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x

module Sum where
import Power

sumpow n x y = power n x + power n y
"""

# Specialising `spin` w.r.t. static `n` never terminates: the deadline
# path's workload.
SPIN = """\
module Spin where

spin n x = spin (n + 1) x
"""


def _write_modules(path, source=POWER):
    """Split a multi-module source into the one-file-per-module layout
    ``load_program_dir`` expects."""
    os.makedirs(str(path), exist_ok=True)
    current, name = [], None
    chunks = []
    for line in source.splitlines(keepends=True):
        if line.startswith("module "):
            if name:
                chunks.append((name, "".join(current)))
            name = line.split()[1]
            current = [line]
        else:
            current.append(line)
    chunks.append((name, "".join(current)))
    for name, text in chunks:
        with open(os.path.join(str(path), name + ".mod"), "w") as f:
            f.write(text)


@pytest.fixture
def moddir(tmp_path):
    d = tmp_path / "modules"
    _write_modules(d)
    return str(d)


def _server(moddir, **overrides):
    kw = dict(dir=moddir, jobs=1, warm_pool=False)
    kw.update(overrides)
    return SpecServer(ServeConfig(**kw))


def _specialise(server, goal, static, **extra):
    doc = {"op": "specialise", "goal": goal, "static_args": static}
    doc.update(extra)
    return server.handle_request(doc)


# ---------------------------------------------------------------------------
# Protocol.
# ---------------------------------------------------------------------------


def test_parse_request_rejects_garbage():
    for line, fragment in [
        (b"\xff\xfe", "UTF-8"),
        (b"not json", "not JSON"),
        (b"[1,2]", "JSON object"),
        (b'{"op":"dance"}', "op must be one of"),
        (b'{"op":"specialise"}', "goal"),
        (b'{"op":"specialise","goal":""}', "goal"),
        (b'{"op":"specialise","goal":"f","static_args":[1]}', "static_args"),
        (b'{"op":"specialise","goal":"f","deadline":0}', "deadline"),
        (b'{"op":"specialise","goal":"f","deadline":true}', "deadline"),
    ]:
        with pytest.raises(protocol.ProtocolError, match=fragment):
            protocol.parse_request(line)


def test_parse_request_converts_static_lists_to_tuples():
    doc = protocol.parse_request(
        b'{"op":"specialise","goal":"run",'
        b'"static_args":{"prog":[["pair",1,2],["pair",0,3]]}}'
    )
    assert doc["static_args"]["prog"] == (("pair", 1, 2), ("pair", 0, 3))


def test_encode_decode_roundtrip():
    doc = protocol.ok_response("ping", request_id="r1", extra=3)
    line = protocol.encode(doc)
    assert line.endswith(b"\n")
    assert protocol.decode_line(line) == doc


def test_exit_codes_cover_the_documented_contract():
    assert protocol.exit_code_for(protocol.ok_response("specialise")) == 0
    for code, exit_code in [
        (protocol.ERR_BAD_REQUEST, 3),
        (protocol.ERR_ERROR, 3),
        (protocol.ERR_DEADLINE, 4),
        (protocol.ERR_CRASH, 5),
        (protocol.ERR_REJECTED, 8),
        (protocol.ERR_SHUTTING_DOWN, 8),
    ]:
        response = protocol.error_response("specialise", code, "boom")
        assert protocol.exit_code_for(response) == exit_code


def test_error_code_for_kind_mirrors_module_failures():
    assert protocol.error_code_for_kind("timeout") == protocol.ERR_DEADLINE
    assert protocol.error_code_for_kind("crash") == protocol.ERR_CRASH
    assert protocol.error_code_for_kind("error") == protocol.ERR_ERROR


# ---------------------------------------------------------------------------
# The request brain (no sockets).
# ---------------------------------------------------------------------------


def test_ping_health_metrics_trace(moddir):
    server = _server(moddir)
    try:
        assert server.handle_request({"op": "ping"})["ok"]

        health = server.handle_request({"op": "health"})
        assert health["ok"] and health["pid"] == os.getpid()
        assert health["inflight"] == 0 and not health["draining"]
        assert health["fingerprint"] == server.state.fingerprint

        metrics = server.handle_request({"op": "metrics"})["metrics"]
        assert validate_metrics(metrics) == []

        trace = server.handle_request({"op": "trace"})["trace"]
        assert validate_trace(trace) == []
        # The startup link span is already in the ring.
        assert any(
            e["name"] == "serve:link" for e in trace["traceEvents"]
        )
    finally:
        server.close()


def test_unknown_op_is_a_bad_request(moddir):
    server = _server(moddir)
    try:
        response = server.handle_request({"op": "dance"})
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST
    finally:
        server.close()


def test_cold_then_warm_byte_identical_to_one_shot(moddir, tmp_path):
    server = _server(moddir)
    try:
        # A separate cache dir: the reference run must not pre-warm the
        # daemon's cache, or the first request would not be cold.
        expected = repro.pretty_program(
            repro.specialise(
                server.state.gp,
                "power",
                {"n": 4},
                server.options.replace(cache_dir=str(tmp_path / "ref")),
            ).program
        )
        cold = _specialise(server, "power", {"n": 4}, id="c")
        assert cold["ok"] and cold["served"] == "cold" and cold["id"] == "c"
        assert cold["result"]["program"] == expected

        warm = _specialise(server, "power", {"n": 4})
        assert warm["ok"] and warm["served"] == "warm"
        assert warm["result"]["program"] == expected

        counters = server.obs.metrics.snapshot()["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.cold"] == 1
        assert counters["serve.warm"] == 1
    finally:
        server.close()


def test_unknown_goal_is_an_error_not_a_crash(moddir):
    server = _server(moddir)
    try:
        response = _specialise(server, "nosuch", {})
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_ERROR
        assert protocol.exit_code_for(response) == 3
        assert server.obs.metrics.snapshot()["counters"]["serve.failures"] == 1
        # The daemon still answers afterwards.
        assert _specialise(server, "power", {"n": 2})["ok"]
    finally:
        server.close()


def test_bad_static_value_is_a_bad_request(moddir):
    server = _server(moddir)
    try:
        response = _specialise(server, "power", {"n": 1.5})
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST
    finally:
        server.close()


def test_backpressure_rejects_beyond_queue(moddir):
    server = _server(moddir, max_inflight=1, queue=0)
    try:
        with server._adm:
            server.inflight = 1  # pin the only slot
        response = _specialise(server, "power", {"n": 2})
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_REJECTED
        assert protocol.exit_code_for(response) == protocol.EXIT_REJECTED
        counters = server.obs.metrics.snapshot()["counters"]
        assert counters["serve.rejections"] == 1
        with server._adm:
            server.inflight = 0
            server._adm.notify_all()
        assert _specialise(server, "power", {"n": 2})["ok"]
    finally:
        server.close()


def test_deadline_expires_while_queued(moddir):
    server = _server(moddir, max_inflight=1, queue=4)
    try:
        with server._adm:
            server.inflight = 1  # never released: the queue wait must
        started = time.perf_counter()  # be bounded by the deadline
        response = _specialise(server, "power", {"n": 2}, deadline=0.2)
        waited = time.perf_counter() - started
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_DEADLINE
        assert response["error"]["kind"] == "timeout"
        assert waited < 5.0
        with server._adm:
            server.inflight = 0
    finally:
        server.close()


def test_draining_refuses_new_requests(moddir):
    server = _server(moddir)
    try:
        assert server.drain(timeout=1.0)
        response = _specialise(server, "power", {"n": 2})
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_SHUTTING_DOWN
        assert protocol.exit_code_for(response) == protocol.EXIT_REJECTED
    finally:
        server.close()


def test_deadline_kills_hung_worker_and_daemon_recovers(tmp_path):
    d = tmp_path / "spin"
    _write_modules(d, SPIN + "\n" + POWER)
    server = _server(str(d), jobs=1, warm_pool=True)
    try:
        response = _specialise(server, "spin", {"n": 1}, deadline=0.5)
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_DEADLINE
        assert server.pool.kills >= 1  # the wedged worker was terminated
        counters = server.obs.metrics.snapshot()["counters"]
        assert counters["serve.deadline_kills"] == 1
        # The pool respawns transparently; later requests still work.
        follow = _specialise(server, "power", {"n": 3})
        assert follow["ok"]
    finally:
        server.close()


def test_source_change_triggers_one_relink_never_stale(moddir):
    server = _server(moddir)
    try:
        before = _specialise(server, "power", {"n": 3})
        assert before["ok"]
        # A semantic edit: power now squares at the base case.
        with open(os.path.join(moddir, "Power.mod"), "w") as f:
            f.write(
                "module Power where\n\n"
                "power n x = if n == 1 then x * x "
                "else x * power (n - 1) x\n"
            )
        after = _specialise(server, "power", {"n": 3})
        assert after["ok"]
        assert after["result"]["program"] != before["result"]["program"]
        counters = server.obs.metrics.snapshot()["counters"]
        assert counters["serve.relinks"] == 1
        # The answer matches a fresh one-shot run of the new source.
        expected = repro.pretty_program(
            repro.specialise(
                server.state.gp, "power", {"n": 3}, server.options
            ).program
        )
        assert after["result"]["program"] == expected
    finally:
        server.close()


def test_watch_source_disabled_keeps_the_loaded_program(moddir):
    server = _server(moddir, watch_source=False)
    try:
        before = _specialise(server, "power", {"n": 3})
        with open(os.path.join(moddir, "Power.mod"), "w") as f:
            f.write("module Power where\n\npower n x = 0\n")
        after = _specialise(server, "power", {"n": 3})
        assert after["result"]["program"] == before["result"]["program"]
        assert "serve.relinks" not in (
            server.obs.metrics.snapshot()["counters"]
        )
    finally:
        server.close()


def test_concurrent_identical_cold_requests_coalesce(moddir):
    server = _server(moddir, max_inflight=4, jobs=1, warm_pool=True)
    try:
        responses = []
        lock = threading.Lock()

        def ask():
            response = _specialise(server, "sumpow", {"n": 6})
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=ask) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r["ok"] for r in responses)
        programs = {r["result"]["program"] for r in responses}
        assert len(programs) == 1
        counters = server.obs.metrics.snapshot()["counters"]
        # One leader computed; everyone else was answered warm.
        assert counters["serve.cold"] == 1
        assert counters["serve.warm"] == 3
    finally:
        server.close()


# ---------------------------------------------------------------------------
# Sockets: unix and TCP transports, the client, graceful shutdown.
# ---------------------------------------------------------------------------


def _run_daemon(config):
    """serve_forever on a thread; returns (thread, server, transport)."""
    box = {}
    ready = threading.Event()

    def on_ready(server, transport):
        box["server"] = server
        box["transport"] = transport
        ready.set()

    thread = threading.Thread(
        target=serve_forever, args=(config,), kwargs={"ready": on_ready},
        daemon=True,
    )
    thread.start()
    assert ready.wait(60)
    return thread, box["server"], box["transport"]


def test_unix_socket_end_to_end(moddir):
    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    thread, server, _ = _run_daemon(config)

    with ServeClient.wait_ready(socket_path=config.socket_path) as client:
        assert client.ping()["ok"]
        cold = client.specialise("power", {"n": 5}, request_id="r1")
        assert cold["ok"] and cold["id"] == "r1"
        warm = client.specialise("power", {"n": 5})
        assert warm["served"] == "warm"
        assert warm["result"]["program"] == cold["result"]["program"]
        expected = repro.pretty_program(
            repro.specialise(
                server.state.gp, "power", {"n": 5}, server.options
            ).program
        )
        assert cold["result"]["program"] == expected

        assert validate_metrics(client.metrics()["metrics"]) == []
        assert validate_trace(client.trace()["trace"]) == []

        assert client.shutdown()["ok"]
    thread.join(60)
    assert not thread.is_alive()
    assert not os.path.exists(config.socket_path)


def test_many_concurrent_clients_identical_answers(moddir):
    config = ServeConfig(
        dir=moddir, jobs=1, max_inflight=4, queue=64, warm_pool=False
    )
    thread, server, transport = _run_daemon(config)
    try:
        programs = []
        lock = threading.Lock()

        def hammer(n):
            with ServeClient.connect(
                socket_path=config.socket_path
            ) as client:
                for _ in range(5):
                    response = client.specialise("power", {"n": n})
                    assert response["ok"], response
                    with lock:
                        programs.append((n, response["result"]["program"]))

        threads = [
            threading.Thread(target=hammer, args=(2 + i % 3,))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_n = {}
        for n, program in programs:
            by_n.setdefault(n, set()).add(program)
        assert all(len(texts) == 1 for texts in by_n.values())
        assert len(programs) == 30
    finally:
        transport.initiate_shutdown()
        thread.join(60)


def test_tcp_transport(moddir):
    config = ServeConfig(
        dir=moddir, tcp=("127.0.0.1", 0), jobs=1, warm_pool=False
    )
    thread, server, transport = _run_daemon(config)
    host, port = transport.server_address[:2]
    with ServeClient.wait_ready(tcp=(host, port)) as client:
        assert client.ping()["ok"]
        response = client.specialise("power", {"n": 3})
        assert response["ok"]
        assert client.shutdown()["ok"]
    thread.join(60)
    assert not thread.is_alive()


def test_malformed_line_answers_bad_request_and_keeps_connection(moddir):
    import socket as socketlib

    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    thread, server, transport = _run_daemon(config)
    try:
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.connect(config.socket_path)
        f = sock.makefile("rb")
        sock.sendall(b"this is not json\n")
        response = protocol.decode_line(f.readline())
        assert not response["ok"]
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST
        # The connection survives a bad line.
        sock.sendall(protocol.encode({"op": "ping"}))
        assert protocol.decode_line(f.readline())["ok"]
        sock.close()
    finally:
        transport.initiate_shutdown()
        thread.join(60)


def test_client_error_when_no_daemon(tmp_path):
    with pytest.raises(ServeClientError):
        ServeClient.connect(socket_path=str(tmp_path / "nothing.sock"))
    with pytest.raises(ServeClientError):
        ServeClient.wait_ready(
            socket_path=str(tmp_path / "nothing.sock"), timeout=0.3
        )


def test_stale_socket_file_is_reclaimed(moddir):
    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    # A dead daemon's leftover socket file must not block the next one.
    import socket as socketlib

    leftover = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    leftover.bind(config.socket_path)
    leftover.close()  # bound but never listening: stale
    server = SpecServer(config)
    try:
        transport = make_transport(server)
        transport.server_close()
    finally:
        server.close()
        if os.path.exists(config.socket_path):
            os.unlink(config.socket_path)


def test_config_validation(moddir):
    with pytest.raises(ValueError):
        ServeConfig(dir=moddir, jobs=0)
    with pytest.raises(ValueError):
        ServeConfig(dir=moddir, max_inflight=0)
    with pytest.raises(ValueError):
        ServeConfig(dir=moddir, queue=-1)
    config = ServeConfig(dir=moddir, jobs=3)
    assert config.max_inflight == 3 and config.queue == 12
    assert config.socket_path.endswith(".mspec-serve.sock")
    assert config.cache_dir.endswith(".mspec-cache")


# ---------------------------------------------------------------------------
# The CLI surface.
# ---------------------------------------------------------------------------


def test_cli_client_maps_protocol_errors_to_exit_codes(moddir, capsys):
    from repro.cli import main

    config = ServeConfig(
        dir=moddir, jobs=1, max_inflight=1, queue=0, warm_pool=False
    )
    thread, server, transport = _run_daemon(config)
    try:
        assert (
            main(
                ["client", "--socket", config.socket_path, "ping"]
            )
            == 0
        )
        assert capsys.readouterr().out.strip() == "pong"

        assert (
            main(
                [
                    "client", "--socket", config.socket_path,
                    "specialise", "power", "n=4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        expected = repro.pretty_program(
            repro.specialise(
                server.state.gp, "power", {"n": 4}, server.options
            ).program
        )
        assert out == expected

        # Pin the admission slot: the client sees backpressure, exit 8.
        with server._adm:
            server.inflight = 1
        assert (
            main(
                [
                    "client", "--socket", config.socket_path,
                    "specialise", "power", "n=9",
                ]
            )
            == protocol.EXIT_REJECTED
        )
        capsys.readouterr()
        with server._adm:
            server.inflight = 0
            server._adm.notify_all()
    finally:
        transport.initiate_shutdown()
        thread.join(60)


def test_cli_client_json_mode(moddir, capsys):
    from repro.cli import main

    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    thread, server, transport = _run_daemon(config)
    try:
        assert (
            main(
                ["client", "--socket", config.socket_path, "health",
                 "--json"]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == protocol.SERVE_SCHEMA
        assert doc["op"] == "health" and doc["ok"]
    finally:
        transport.initiate_shutdown()
        thread.join(60)


def test_cli_client_argument_validation(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["client", "ping"])  # neither --socket nor --tcp
    with pytest.raises(SystemExit):
        main(["client", "--socket", "s", "--tcp", "h:1", "ping"])
    with pytest.raises(SystemExit):
        main(["client", "--socket", "s", "specialise"])  # no goal
    with pytest.raises(SystemExit):
        main(["client", "--socket", "s", "ping", "extra"])
    # Unreachable daemon: a clean error exit, not a traceback.
    assert (
        main(
            ["client", "--socket", str(tmp_path / "no.sock"), "ping"]
        )
        == 3
    )


# ---------------------------------------------------------------------------
# Chaos: serve-phase fault injection, self-healing, supervision.
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _disarm_fault_plans():
    """No fault plan leaks into (or out of) any serve test."""
    from repro.pipeline.faultinject import FaultPlan

    FaultPlan.uninstall()
    yield
    FaultPlan.uninstall()


def _arm(tmp_path, *planned):
    from repro.pipeline.faultinject import FaultPlan

    plan = FaultPlan(
        faults=tuple(planned), state_dir=str(tmp_path / "fault-state")
    )
    plan.install(str(tmp_path / "fault-plan.json"))
    return plan


def test_transport_faults_absorbed_by_resilient_client(moddir, tmp_path):
    from repro.pipeline.faultinject import Fault
    from repro.serve.client import RetryPolicy

    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    thread, server, transport = _run_daemon(config)
    _arm(
        tmp_path,
        Fault(module="*", phase="serve", action="drop-connection"),
        Fault(module="*", phase="serve", action="stall", seconds=2.0),
        Fault(module="*", phase="serve", action="corrupt-response"),
    )
    try:
        retry = RetryPolicy(attempts=6, backoff_base=0.01, rng=lambda: 0.0)
        with ServeClient.connect(
            socket_path=config.socket_path,
            request_timeout=0.5,
            retry=retry,
        ) as client:
            # One request absorbs all three transport faults: the drop
            # (EOF), the stall (wire timeout), and the garbage line each
            # trigger a reconnect + retry, and the fourth try answers.
            response = client.specialise("power", {"n": 4})
            assert response["ok"], response
            assert client.stats["retries"] == 3
            assert client.stats["reconnects"] == 3
            assert client.stats["timeouts"] == 1
        counters = server.obs.metrics.snapshot()["counters"]
        assert counters["serve.faults_injected"] == 3
    finally:
        transport.initiate_shutdown()
        thread.join(60)


def test_kill_worker_mid_request_is_absorbed(moddir, tmp_path):
    from repro.pipeline.faultinject import Fault

    # Arm before startup: pool workers are forked at daemon start and
    # inherit the environment (and so the plan) from that moment.
    _arm(
        tmp_path,
        Fault(module="power", phase="serve", action="kill-worker"),
    )
    config = ServeConfig(dir=moddir, jobs=1, warm_pool=True)
    thread, server, transport = _run_daemon(config)
    try:
        # A *bare* client: the SIGKILL'd worker must be invisible even
        # without retries — the supervisor's degraded serial rerun
        # answers (and fire() skips kill-worker outside pool workers
        # without spending budget, so the rerun cannot re-kill itself).
        with ServeClient.connect(socket_path=config.socket_path) as client:
            response = client.specialise("power", {"n": 6})
            assert response["ok"], response
            assert response["served"] == "cold"
        assert server.pool.kills >= 1
        # The budget sentinel was spent exactly once, by the dead worker.
        state = tmp_path / "fault-state"
        assert sorted(p.name for p in state.iterdir()) == ["fault.0.0"]
        # The daemon is healthy afterwards: warm answers keep flowing.
        with ServeClient.connect(socket_path=config.socket_path) as client:
            assert client.specialise("power", {"n": 6})["served"] == "warm"
    finally:
        transport.initiate_shutdown()
        thread.join(60)


def test_worker_recycling_over_the_serve_path(moddir):
    server = _server(moddir, jobs=1, max_requests_per_worker=1)
    try:
        for n in (2, 3, 4):
            response = _specialise(server, "power", {"n": n})
            assert response["ok"], response
        # Budget 1 request/worker x 1 job: every cold request after the
        # first retires a generation gracefully.
        assert server.pool.recycles >= 2
        health = server.handle_request({"op": "health"})
        assert health["pool_recycles"] == server.pool.recycles
        counters = server.obs.metrics.snapshot()["counters"]
        assert counters["serve.recycles"] == server.pool.recycles
        # Recycling is invisible to correctness: warm hits still serve.
        assert _specialise(server, "power", {"n": 2})["served"] == "warm"
    finally:
        server.close()


def test_supervisor_restarts_a_sigkilled_daemon(moddir, tmp_path):
    import signal as signallib

    from repro.serve.supervise import supervised_daemon

    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    events = []
    with supervised_daemon(
        config,
        backoff_base=0.05,
        on_event=lambda event, info: events.append((event, info)),
    ) as supervisor:
        with ServeClient.wait_ready(socket_path=config.socket_path) as c:
            first_pid = c.health()["pid"]
        assert supervisor.process.pid == first_pid

        # kill -9: no drain, no cleanup — the socket file goes stale.
        os.kill(first_pid, signallib.SIGKILL)

        # The supervisor restarts the daemon; the stale socket is
        # reclaimed and the next request succeeds against the new pid.
        with ServeClient.wait_ready(
            socket_path=config.socket_path, timeout=60
        ) as c:
            health = c.health()
            assert health["pid"] != first_pid
            assert c.specialise("power", {"n": 3})["ok"]
        assert supervisor.restarts == 1
    assert any(event == "restarting" for event, _ in events)
    assert events[-1][0] == "stopped"


def test_supervisor_does_not_restart_a_graceful_exit(moddir):
    from repro.serve.supervise import supervised_daemon

    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    events = []
    with supervised_daemon(
        config,
        on_event=lambda event, info: events.append(event),
    ) as supervisor:
        with ServeClient.wait_ready(socket_path=config.socket_path) as c:
            assert c.shutdown()["ok"]
        process = supervisor.process
        process.join(60)
        assert process.exitcode == 0
        # Give the supervisor loop a moment to observe the exit; a
        # graceful stop must not spawn a replacement.
        time.sleep(0.3)
        assert supervisor.restarts == 0
    assert "restarting" not in events


def test_supervisor_gives_up_past_max_restarts(tmp_path):
    from repro.serve.supervise import Supervisor

    # A config whose daemon can never come up: the module directory
    # does not exist, so serve_forever raises and the child exits
    # nonzero immediately.
    config = ServeConfig(
        dir=str(tmp_path / "missing"),
        socket_path=str(tmp_path / "s.sock"),
        jobs=1,
        warm_pool=False,
    )
    events = []
    supervisor = Supervisor(
        config,
        max_restarts=2,
        sleep=lambda s: None,
        on_event=lambda event, info: events.append(event),
    )
    code = supervisor.run()
    assert code != 0
    assert supervisor.restarts == 3  # initial + 2 budgeted restarts
    assert events.count("restarting") == 2
    assert events[-1] == "gave_up"


def test_supervisor_validates_max_restarts(moddir):
    from repro.serve.supervise import Supervisor

    with pytest.raises(ValueError):
        Supervisor(ServeConfig(dir=moddir), max_restarts=-1)


def test_serve_config_recycling_knobs(moddir):
    config = ServeConfig(
        dir=moddir, jobs=2, max_requests_per_worker=100,
        max_worker_rss_mb=256.0, warm_pool=False,
    )
    server = SpecServer(config)
    try:
        assert server.pool.max_requests_per_worker == 100
        assert server.pool.max_worker_rss == 256 * 1024 * 1024
    finally:
        server.close()
