"""Python-backend tests: compiled programs agree with the interpreter."""

import pytest

import repro
from repro.backend import compile_program, emit_python, generate
from repro.interp import run_program
from repro.lang.prims import make_pair
from repro.modsys.program import load_program


def compiled(source):
    return compile_program(load_program(source))


def test_arithmetic():
    c = compiled("module M where\n\nf x y = x * 2 + y\n")
    assert c.call("f", 3, 4) == 10


def test_monus_subtraction():
    c = compiled("module M where\n\nf x y = x - y\n")
    assert c.call("f", 3, 5) == 0
    assert c.call("f", 5, 3) == 2


def test_division_faults_match_object_semantics():
    c = compiled("module M where\n\nf x = div x 0\n")
    with pytest.raises(Exception) as exc:
        c.call("f", 1)
    assert "division by zero" in str(exc.value)


def test_recursion():
    c = compiled(
        "module M where\n\nfact n = if n == 0 then 1 else n * fact (n - 1)\n"
    )
    assert c.call("fact", 10) == 3628800


def test_deep_recursion_supported():
    c = compiled(
        "module M where\n\ncount n = if n == 0 then 0 else 1 + count (n - 1)\n"
    )
    assert c.call("count", 20_000) == 20_000


def test_lists_and_pairs():
    c = compiled(
        "module M where\n\n"
        "rev xs = revacc xs nil\n"
        "revacc xs acc = if null xs then acc else revacc (tail xs) (head xs : acc)\n"
        "swap p = pair (snd p) (fst p)\n"
    )
    assert c.call("rev", (1, 2, 3)) == (3, 2, 1)
    assert c.call("swap", make_pair(1, 2)) == make_pair(2, 1)


def test_head_of_empty_faults():
    c = compiled("module M where\n\nf xs = head xs\n")
    with pytest.raises(Exception):
        c.call("f", ())


def test_higher_order():
    c = compiled(
        "module M where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
        "go k xs = map (\\x -> x * k) xs\n"
    )
    assert c.call("go", 3, (1, 2)) == (3, 6)


def test_keyword_and_prime_names_mangle():
    c = compiled("module M where\n\nf class' = class' + 1\n")
    assert c.call("f", 1) == 2


def test_underscore_leading_names_mangle():
    c = compiled("module M where\n\n_f _x = _x + _helper _x\n_helper y = y * 2\n")
    assert c.call("_f", 3) == 9


def test_colliding_mangles_stay_distinct():
    """``class'`` and ``class_q`` both naively mangle to ``class_q``;
    ``for`` and ``for_v`` both to ``for_v``.  The per-program mangle
    table must keep every pair apart and runnable."""
    c = compiled(
        "module M where\n\n"
        "go x = class' x + class_q x + for x + for_v x\n"
        "class' x = x * 2\n"
        "class_q x = x * 3\n"
        "for x = x * 5\n"
        "for_v x = x * 7\n"
    )
    assert c.call("go", 1) == 17
    assert c.call("class'", 4) == 8
    assert c.call("class_q", 4) == 12
    assert c.call("for", 4) == 20
    assert c.call("for_v", 4) == 28


def test_mangle_table_is_injective_and_deterministic():
    from repro.backend.pyemit import mangle_table

    lp = load_program(
        "module M where\n\n"
        "go x = class' x + class_q x + for x + for_v x + _x x\n"
        "class' x = x\nclass_q x = x\nfor x = x\nfor_v x = x\n_x x = x\n"
    )
    table = mangle_table(lp.program)
    assert len(set(table.values())) == len(table)
    assert table == mangle_table(lp.program)
    # Collision-free names keep their historical base mangling; the
    # sorted-first owner of a colliding base keeps it, later owners get
    # a _vN suffix.
    assert table["go"] == "go"
    assert table["class'"] == "class_q"
    assert table["class_q"] == "class_q_v2"
    assert table["for"] == "for_v"
    assert table["for_v"] == "for_v_v2"


def test_cross_module_programs_compile_into_one_unit():
    c = compiled(
        "module A where\n\ninc x = x + 1\n"
        "module B where\nimport A\n\ntwice x = inc (inc x)\n"
    )
    assert c.call("twice", 5) == 7
    assert "# module A" in c.source and "# module B" in c.source


def test_compiled_agrees_with_interpreter_on_corpus(corpus_case):
    case = corpus_case
    linked = load_program(case["source"])
    c = compile_program(linked)
    sig_params = linked.find_def(case["goal"])[1].params
    for dyn in case["dyn_inputs"]:
        dyn_iter = iter(dyn)
        args = [
            case["static"][p] if p in case["static"] else next(dyn_iter)
            for p in sig_params
        ]
        assert c.call(case["goal"], *args) == run_program(
            linked, case["goal"], args
        )


def test_emit_python_is_deterministic():
    lp = load_program("module M where\n\nf x = x + 1\n")
    assert emit_python(lp.program) == emit_python(lp.program)


# -- run-time code generation ----------------------------------------------------


def test_rtcg_generate_power():
    gp = repro.compile_genexts(
        "module Power where\n\n"
        "power n x = if n == 1 then x else x * power (n - 1) x\n"
    )
    cube = generate(gp, "power", {"n": 3})
    assert cube(5) == 125
    assert "def power" in cube.python_source


def test_rtcg_residual_loop():
    gp = repro.compile_genexts(
        "module Power where\n\n"
        "power n x = if n == 1 then x else x * power (n - 1) x\n"
    )
    pow2 = generate(gp, "power", {"x": 2})
    assert pow2(10) == 1024


def test_rtcg_machine_compiler():
    from repro.bench.generators import machine_interpreter_source

    gp = repro.compile_genexts(machine_interpreter_source())
    prog = (make_pair(1, 2), make_pair(0, 10))
    run = generate(gp, "run", {"prog": prog})
    assert run(5) == 20
    # The generated Python is straight-line residual code.
    assert "_head" not in run.python_source.split("# module")[1]


def test_rtcg_compiled_residual_agrees_with_interpreted_residual(corpus_case, corpus_genexts):
    case = corpus_case
    gp = corpus_genexts[case["name"]]
    fn = generate(gp, case["goal"], case["static"])
    result = repro.specialise(gp, case["goal"], case["static"])
    for dyn in case["dyn_inputs"]:
        assert fn(*dyn) == result.run(*dyn)
