"""Workload generators: everything they emit must be valid and runnable."""

import pytest

import repro
from repro.bench.generators import (
    chain_program,
    fanout_program,
    library_program,
    random_machine_program,
    synthetic_module_source,
)
from repro.bench.metrics import code_lines, genext_expansion, linear_fit
from repro.interp import run_program
from repro.modsys.program import load_program
from repro.types import infer_program


@pytest.mark.parametrize("n", [1, 5, 20])
def test_synthetic_modules_are_well_typed(n):
    lp = load_program(synthetic_module_source("M", n))
    infer_program(lp)
    assert len(lp.module("M").defs) == n


def test_synthetic_modules_run():
    lp = load_program(synthetic_module_source("M", 8, seed=3))
    value = run_program(lp, "f0", [2, 3])
    assert isinstance(value, int)


def test_synthetic_modules_specialise():
    gp = repro.compile_genexts(synthetic_module_source("M", 8, seed=3))
    result = repro.specialise(gp, "f0", {"n": 2})
    lp = load_program(synthetic_module_source("M", 8, seed=3))
    for y in (0, 1, 9):
        assert result.run(y) == run_program(lp, "f0", [2, y])


def test_synthetic_generator_is_deterministic():
    assert synthetic_module_source("M", 10, seed=1) == synthetic_module_source(
        "M", 10, seed=1
    )
    assert synthetic_module_source("M", 10, seed=1) != synthetic_module_source(
        "M", 10, seed=2
    )


@pytest.mark.parametrize("n,k", [(5, 1), (20, 3), (40, 5)])
def test_library_programs_are_valid(n, k):
    lp = load_program(library_program(n, k))
    infer_program(lp)
    assert len(lp.module("Lib").defs) == n


def test_library_client_specialises_only_used_functions():
    gp = repro.compile_genexts(library_program(25, 2, seed=1))
    result = repro.specialise(gp, "client", {"m": 3})
    # Only lib0, lib1 (plus possibly the entry) can be specialised.
    assert result.stats["specialisations"] <= 3
    lp = load_program(library_program(25, 2, seed=1))
    assert result.run(2) == run_program(lp, "client", [3, 2])


def test_chain_program_structure():
    lp = load_program(chain_program(10))
    assert len(lp.module("Chain").defs) == 10
    assert run_program(lp, "c0", [3]) == 3 + 9  # counts up the chain


def test_fanout_program_structure():
    src, root = fanout_program(3, 2)
    lp = load_program(src)
    infer_program(lp)
    value = run_program(lp, root, [1])
    assert isinstance(value, int)


def test_random_machine_programs_terminate():
    lp = load_program(
        "module Machine where\n\n"
        "index xs n = if n == 0 then head xs else index (tail xs) (n - 1)\n"
    )
    for seed in range(4):
        prog = random_machine_program(15, seed=seed)
        assert len(prog) == 15
        for instr in prog:
            assert instr[0] == "pair"


def test_code_lines_ignores_blanks_and_comments():
    text = "-- header\n\nf x = x\n# pycomment\n  g y = y\n"
    assert code_lines(text) == 2


def test_genext_expansion_metric():
    from repro.bt.analysis import analyse_program
    from repro.genext.cogen import cogen_module

    src = synthetic_module_source("M", 10)
    analysis = analyse_program(load_program(src))
    factor = genext_expansion(src, cogen_module(analysis.modules[0]))
    assert factor > 1.0


def test_linear_fit():
    slope, intercept, r2 = linear_fit([1, 2, 3, 4], [2.1, 4.0, 6.1, 8.0])
    assert 1.9 < slope < 2.1
    assert r2 > 0.99
