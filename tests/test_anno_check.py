"""Well-annotatedness checker tests: the analysis output always checks,
and hand-broken annotations are rejected."""

import pytest

from repro.anno import AnnotationError, check_program
from repro.anno.ast import (
    ACoerce,
    ADef,
    AIf,
    ALam,
    AModule,
    APrim,
    AProgram,
    AVar,
)
from repro.bt.analysis import analyse_program
from repro.bt.bt import BT, D, S, bt_lub, var
from repro.bt.bttypes import BTTBase, BTTFun
from repro.modsys.program import load_program


def analysed(source, force_residual=frozenset()):
    return analyse_program(load_program(source), force_residual=force_residual)


def replace_def(aprogram, module_name, new_def):
    modules = []
    for m in aprogram.modules:
        if m.name == module_name:
            defs = tuple(
                new_def if d.name == new_def.name else d for d in m.defs
            )
            modules.append(AModule(m.name, m.imports, defs))
        else:
            modules.append(m)
    return AProgram(tuple(modules))


POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"


def test_analysis_output_checks():
    check_program(analysed(POWER).annotated)


def test_forced_residual_output_checks():
    check_program(analysed(POWER, force_residual={"power"}).annotated)


def test_broken_unfold_rejected():
    pa = analysed(POWER)
    d = pa.annotated.module("Power").find("power")
    broken = ADef(
        d.name, d.bt_params, d.params, d.body,
        S if d.unfold != S else D,  # flip the unfold annotation
        d.param_types, d.res_type,
    )
    with pytest.raises(AnnotationError):
        check_program(replace_def(pa.annotated, "Power", broken))


def test_lowering_coercion_rejected():
    # A coercion D -> S must be rejected.
    pa = analysed(POWER)
    d = pa.annotated.module("Power").find("power")
    bad_body = ACoerce(
        BTTBase("Nat", d.res_type.bt),
        BTTBase("Nat", S),
        d.body,
    )
    broken = ADef(
        d.name, d.bt_params, d.params, bad_body, d.unfold,
        d.param_types, BTTBase("Nat", S),
    )
    with pytest.raises(AnnotationError):
        check_program(replace_def(pa.annotated, "Power", broken))


def test_wrong_prim_binding_time_rejected():
    pa = analysed(POWER)
    d = pa.annotated.module("Power").find("power")

    def clobber(e):
        if isinstance(e, APrim) and e.op == "*":
            return APrim(e.op, S, e.args)  # operands are t|u, op claims S
        if isinstance(e, AIf):
            return AIf(
                e.bt,
                clobber(e.cond),
                clobber(e.then_branch),
                clobber(e.else_branch),
            )
        return e

    broken = ADef(
        d.name, d.bt_params, d.params, clobber(d.body), d.unfold,
        d.param_types, d.res_type,
    )
    with pytest.raises(AnnotationError):
        check_program(replace_def(pa.annotated, "Power", broken))


def test_wrong_result_type_rejected():
    pa = analysed(POWER)
    d = pa.annotated.module("Power").find("power")
    broken = ADef(
        d.name, d.bt_params, d.params, d.body, d.unfold,
        d.param_types, BTTBase("Nat", var("t")),  # result is t|u, not t
    )
    with pytest.raises(AnnotationError):
        check_program(replace_def(pa.annotated, "Power", broken))


def test_ill_formed_lambda_type_rejected():
    src = "module M where\n\napply f x = f @ x\n"
    pa = analysed(src)
    d = pa.annotated.module("M").find("apply")
    # Claim a dynamic lambda with a static argument: violates wf.
    bad = ALam(
        "y",
        AVar("y"),
        "apply.lam1",
        type=BTTFun(D, BTTBase("Nat", S), BTTBase("Nat", D)),
    )
    broken = ADef(
        "bad", ("t",), ("z",), bad, S,
        (BTTBase("Nat", var("t")),),
        BTTFun(D, BTTBase("Nat", S), BTTBase("Nat", D)),
    )
    module = pa.annotated.module("M")
    extended = AModule(module.name, module.imports, module.defs + (broken,))
    with pytest.raises(AnnotationError):
        check_program(AProgram((extended,)))


def test_conditional_not_dominated_by_unfold_rejected():
    src = "module M where\n\nf c x = if c then x else x + 1\n"
    pa = analysed(src)
    d = pa.annotated.module("M").find("f")
    broken = ADef(
        d.name, d.bt_params, d.params, d.body, S,  # unfold must be >= t
        d.param_types, d.res_type,
    )
    # f's conditional is annotated t, so unfold S violates domination
    # (unless t happens to be S, which it is not symbolically).
    with pytest.raises(AnnotationError):
        check_program(replace_def(pa.annotated, "M", broken))


def test_corpus_wide_acceptance():
    from tests.conftest import CORPUS

    for case in CORPUS:
        pa = analysed(
            case["source"],
            force_residual=frozenset(case.get("force_residual", ())),
        )
        check_program(pa.annotated)


def test_unknown_function_in_call_rejected():
    src = "module M where\n\nf x = x + 1\ng y = f y\n"
    pa = analysed(src)
    module = pa.annotated.module("M")
    only_g = AModule(module.name, module.imports, (module.find("g"),))
    with pytest.raises(AnnotationError):
        check_program(AProgram((only_g,)))
