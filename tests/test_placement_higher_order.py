"""E9: higher-order residual-module placement (Sec. 5)."""

import pytest

import repro
from repro.lang.names import called_functions
from repro.api import SpecOptions

MAP_A = """\
module A where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)
"""


def test_map_specialisation_moves_out_of_defining_module():
    # The paper's second example: placing map_g in A would make A refer
    # to g in B; the specialisation must live with g instead.
    gp = repro.compile_genexts(MAP_A
        + """
module B where
import A

g x = x + 1
h zs = map (\\x -> g x) zs
""", SpecOptions(force_residual={"g", "h"}))
    result = repro.specialise(gp, "h", {})
    assert [m.name for m in result.program.modules] == ["B"]
    assert result.run((1, 2, 3)) == (2, 3, 4)


def test_no_cyclic_residual_imports():
    gp = repro.compile_genexts(MAP_A
        + """
module B where
import A

g x = x + 1
h zs = map (\\x -> g x) zs
""", SpecOptions(force_residual={"g", "h"}))
    result = repro.specialise(gp, "h", {})
    result.linked.graph.check_acyclic()


def test_combination_module_shared_between_importers():
    # The paper's third example: g defined in C, map in A; both B and Dm
    # specialise map to the same closure, so one residual function lands
    # in combination A∩C and is imported by both.
    gp = repro.compile_genexts("""
module A where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)

module C where

g x = x + 1
gclo = \\x -> g x

module B where
import A
import C

hb zs = map gclo zs

module Dm where
import A
import C

hd zs = map gclo (tail zs)

module Main where
import B
import Dm

append xs ys = if null xs then ys else head xs : append (tail xs) ys
main zs = append (hb zs) (hd zs)
""", SpecOptions(force_residual={"g", "hb", "hd", "main", "append"}))
    result = repro.specialise(gp, "main", {})
    names = {m.name: m for m in result.program.modules}
    assert "AC" in names
    ac = names["AC"]
    # One shared specialisation of map, referenced from both B and Dm.
    assert len(ac.defs) == 1
    shared = ac.defs[0].name
    assert shared in called_functions(names["B"].defs[0].body)
    assert shared in called_functions(names["Dm"].defs[0].body)
    assert "AC" in names["B"].imports
    assert "AC" in names["Dm"].imports
    assert result.run((5, 6)) == (6, 7, 7)


def test_dominated_module_dropped_from_combination():
    # When g lives in a module that A already imports, the combination
    # {A, Base} reduces to {A}.
    gp = repro.compile_genexts("""
module Base where

g x = x + 1

module A where
import Base

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)
use zs = map (\\x -> g x) zs
""", SpecOptions(force_residual={"g", "use"}))
    result = repro.specialise(gp, "use", {})
    module_names = {m.name for m in result.program.modules}
    assert "ABase" not in module_names
    assert "BaseA" not in module_names
    assert result.run((1,)) == (2,)


def test_closures_in_environments_count_for_placement():
    # A closure capturing another closure over g: the inner fvs must
    # still reach the placement computation.
    gp = repro.compile_genexts("""
module A where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)

module B where
import A

g x = x * 2
h zs = map ((\\inner -> \\x -> inner @ x) @ (\\y -> g y)) zs
""", SpecOptions(force_residual={"g", "h"}))
    result = repro.specialise(gp, "h", {})
    # All residual code must be in B (it references g).
    assert [m.name for m in result.program.modules] == ["B"]
    assert result.run((3,)) == (6,)


def test_partially_static_list_of_closures():
    gp = repro.compile_genexts("""
module A where

applyall fs x = if null fs then x else applyall (tail fs) (head fs @ x)

module B where
import A

g x = x + 1
go x = applyall [\\a -> g a, \\b -> b * 2] x
""", SpecOptions(force_residual={"g", "go"}))
    result = repro.specialise(gp, "go", {})
    assert result.run(5) == 12
    # applyall's specialisations reference g, so they live in B.
    assert [m.name for m in result.program.modules] == ["B"]
