"""Engine tests: goal setup, binding-time saturation, entry attachment,
error handling."""

import pytest

import repro
from repro.genext.engine import goal_binding_times
from repro.genext.runtime import D, S, SpecError
from repro.api import SpecOptions

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"


@pytest.fixture(scope="module")
def power_gp():
    return repro.compile_genexts(POWER)


def test_goal_binding_times_static_and_dynamic(power_gp):
    sig = power_gp.signature("power")
    env = goal_binding_times(sig, {"n"})
    assert env == {"t": S, "u": D}
    env = goal_binding_times(sig, {"n", "x"})
    assert env == {"t": S, "u": S}
    env = goal_binding_times(sig, set())
    assert env == {"t": D, "u": D}


def test_all_static_goal_computes_value(power_gp):
    result = repro.specialise(power_gp, "power", {"n": 4, "x": 3})
    assert result.dynamic_params == ()
    assert result.run() == 81
    body = result.program.modules[0].defs[-1].body
    from repro.lang.ast import Lit

    assert body == Lit(81)


def test_unknown_static_parameter_rejected(power_gp):
    with pytest.raises(SpecError) as exc:
        repro.specialise(power_gp, "power", {"zz": 1})
    assert "zz" in str(exc.value)


def test_unknown_goal_rejected(power_gp):
    with pytest.raises(KeyError):
        repro.specialise(power_gp, "nosuch", {})


def test_shared_binding_time_forces_coercion():
    # Both parameters share a binding time through the result; making
    # one dynamic must not break injection of the other.
    src = "module M where\n\nf a b = a + b\n"
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "f", {"a": 2})
    assert result.run(3) == 5


def test_function_typed_parameter_can_be_dynamic():
    # A dynamic function parameter is sound: the application becomes a
    # residual '@'.  (Only fully dynamic parameter types are accepted as
    # dynamic goals; the analysis makes higher-order parameters fully
    # dynamic when their closure binding time is.)
    src = (
        "module M where\n\n"
        "apply f x = f @ x\n"
    )
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "apply", {})
    from repro.lang.ast import App, Var

    entry = result.program.modules[0].defs[-1]
    assert entry.body == App(Var("f"), Var("x"))


def test_entry_keeps_goal_name(power_gp):
    result = repro.specialise(power_gp, "power", {"n": 3})
    assert result.entry == "power"
    assert any(
        d.name == "power" for m in result.program.modules for d in m.defs
    )


def test_trivial_wrapper_is_folded():
    gp = repro.compile_genexts(POWER, SpecOptions(force_residual={"power"}))
    result = repro.specialise(gp, "power", {"n": 3})
    names = [d.name for m in result.program.modules for d in m.defs]
    # The residualised goal takes over the entry name; no power_1 wrapper
    # plus separate entry.
    assert "power" in names


def test_static_list_argument_computed_away():
    src = (
        "module M where\n\n"
        "sum xs = if null xs then 0 else head xs + sum (tail xs)\n"
    )
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "sum", {"xs": (1, 2, 3, 4)})
    from repro.lang.ast import Lit

    assert result.program.modules[0].defs[-1].body == Lit(10)


def test_stats_are_reported(power_gp):
    result = repro.specialise(power_gp, "power", {"x": 2})
    assert result.stats["specialisations"] == 1
    assert result.stats["memo_hits"] >= 1
    result = repro.specialise(power_gp, "power", {"n": 3})
    assert result.stats["unfolds"] == 3


def test_sink_receives_streamed_definitions(power_gp):
    seen = []
    repro.specialise(power_gp, "power", {"x": 2}, SpecOptions(sink=lambda pl, d: seen.append(d.name)))
    assert seen == ["power_1"]


def test_bool_static_argument():
    src = "module M where\n\npick c x y = if c then x else y\n"
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "pick", {"c": True})
    assert result.run(1, 2) == 1
    # The conditional is gone from the residual program.
    from repro.lang.ast import If, Var
    entry = result.program.modules[0].defs[-1]
    assert entry.body == Var("x")


def test_pair_static_argument():
    src = "module M where\n\naddp p = fst p + snd p\n"
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "addp", {"p": ("pair", 20, 22)})
    assert result.run() == 42


def test_wrong_shape_static_argument_rejected(power_gp):
    with pytest.raises(SpecError) as exc:
        repro.specialise(power_gp, "power", {"n": (1, 2, 3)})
    assert "does not fit" in str(exc.value)


def test_unbounded_static_variation_is_diagnosed():
    # pc counts up under a dynamic halt test: the classic divergence.
    src = (
        "module M where\n\n"
        "loop pc limit = if pc == limit then pc else loop (pc + 1) limit\n"
    )
    gp = repro.compile_genexts(src)
    with pytest.raises(SpecError) as exc:
        repro.specialise(gp, "loop", {"pc": 0}, SpecOptions(max_versions=50))
    assert "unbounded static variation" in str(exc.value)


def test_deep_static_unfolding_is_supported():
    # Legitimate deep static recursion (depth 5000) must work.
    src = (
        "module M where\n\n"
        "count n x = if n == 0 then x else count (n - 1) (x + 1)\n"
    )
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "count", {"n": 5000})
    assert result.run(1) == 5001


def test_wrong_shape_list_argument_rejected():
    src = "module M where\n\nsum xs = if null xs then 0 else head xs + sum (tail xs)\n"
    gp = repro.compile_genexts(src)
    with pytest.raises(SpecError):
        repro.specialise(gp, "sum", {"xs": 7})
