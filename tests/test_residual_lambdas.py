"""Residual programs containing lambdas (dynamised static closures)."""

import pytest

import repro
from repro.lang.ast import Lam, walk
from repro.api import SpecOptions


def _has_lambda(program):
    return any(
        isinstance(e, Lam)
        for m in program.modules
        for d in m.defs
        for e in walk(d.body)
    )


def test_dynamic_choice_of_closures_residualises_lambdas():
    src = (
        "module M where\n\n"
        "pick c = if c then (\\x -> x + 1) else (\\x -> x * 2)\n"
        "use c y = pick c @ y\n"
    )
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "use", {})
    assert _has_lambda(result.program)
    assert result.run(True, 10) == 11
    assert result.run(False, 10) == 20


def test_static_choice_eliminates_the_lambda():
    src = (
        "module M where\n\n"
        "pick c = if c then (\\x -> x + 1) else (\\x -> x * 2)\n"
        "use c y = pick c @ y\n"
    )
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "use", {"c": True})
    assert not _has_lambda(result.program)
    assert result.run(10) == 11


def test_residualised_lambda_captures_static_environment():
    src = (
        "module M where\n\n"
        "mk k c = if c then (\\x -> x + k) else (\\x -> x)\n"
        "use k c y = mk k c @ y\n"
    )
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "use", {"k": 7})
    # k was static: it is inlined inside the residual lambda.
    text = repro.pretty_program(result.program)
    assert "+ 7" in text
    assert result.run(True, 1) == 8
    assert result.run(False, 1) == 1


def test_residual_lambda_type_checks_and_backends():
    from repro.backend import compile_program

    src = (
        "module M where\n\n"
        "pick c = if c then (\\x -> x + 1) else (\\x -> x * 2)\n"
        "use c y = pick c @ y\n"
    )
    gp = repro.compile_genexts(src)
    result = repro.specialise(gp, "use", {})
    from repro.types import infer_program

    infer_program(result.linked)
    compiled = compile_program(result.program)
    assert compiled.call(result.entry, True, 3) == 4


def test_closure_passed_to_residual_function_keeps_dynamic_env():
    src = (
        "module A where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
        "module B where\n"
        "import A\n\n"
        "addall z ys = map (\\x -> x + z) ys\n"
    )
    gp = repro.compile_genexts(src, SpecOptions(force_residual={"addall"}))
    result = repro.specialise(gp, "addall", {})
    # The paper's own example: map_{\x->x+z} gets z as an extra residual
    # parameter.
    assert result.run(10, (1, 2)) == (11, 12)
    text = repro.pretty_program(result.program)
    assert "map_1" in text
