"""Property tests for binding-time scheme subsumption.

Subsumption must be a preorder (reflexive, transitive) on the schemes of
real programs, and instantiation-compatible: if an actual subsumes the
assumed signature, running the functor's genext with that actual must be
semantically correct (differential-tested)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro
from repro.bt.analysis import analyse_program
from repro.functor import default_param_scheme, make_functor, scheme_subsumes
from repro.genext.cogen import cogen_program
from repro.genext.link import GenextProgram, load_genext
from repro.interp import run_program
from repro.lang.parser import parse_program
from repro.modsys.program import load_program

# A pool of binary functions with varied schemes.
POOL = """\
module Pool where

first a b = a
second a b = b
plus a b = a + b
times a b = a * b
maxish a b = if a < b then b else a
le a b = a <= b
constf a b = 42
"""


@pytest.fixture(scope="module")
def pool():
    return analyse_program(load_program(POOL))


def _schemes(pool):
    return [pool.schemes[n] for n in sorted(pool.schemes)]


def test_subsumption_reflexive(pool):
    for s in _schemes(pool):
        assert scheme_subsumes(s, s)


def test_subsumption_transitive_on_pool(pool):
    schemes = _schemes(pool)
    for a in schemes:
        for b in schemes:
            for c in schemes:
                if scheme_subsumes(a, b) and scheme_subsumes(b, c):
                    assert scheme_subsumes(a, c)


def test_everything_subsumes_the_default(pool):
    # All pool functions are strict first-order base functions; the
    # default signature is the most constrained assumption.
    d = default_param_scheme(2)
    for name in ("first", "second", "plus", "times", "le", "constf"):
        assert scheme_subsumes(pool.schemes[name], d), name


def test_default_does_not_subsume_projections(pool):
    # 'first' promises its result depends only on argument 1; assuming
    # the default (result may absorb both) cannot be used where a
    # 'first'-shaped signature was assumed.
    assert not scheme_subsumes(default_param_scheme(2), pool.schemes["first"])


FUNCTOR = """\
module Fold(op 2) where

fold z xs = if null xs then z else op (head xs) (fold z (tail xs))
"""

_ACTUALS = ["first", "second", "plus", "times", "maxish", "constf"]


@given(
    actual=st.sampled_from(_ACTUALS),
    xs=st.lists(st.integers(0, 9), max_size=5).map(tuple),
    z=st.integers(0, 9),
)
@settings(max_examples=60, deadline=None)
def test_instantiated_functor_is_correct(pool, actual, xs, z):
    template = make_functor(parse_program(FUNCTOR).modules[0])
    assumed = template.param_schemes["op"]
    if not scheme_subsumes(pool.schemes[actual], assumed):
        return  # rejected actuals are out of scope here
    loaded, prefix = template.instantiate(
        "X", {"op": actual}, pool.schemes
    )
    base = [load_genext(m) for m in cogen_program(pool)]
    gp = GenextProgram(base + [loaded])
    result = repro.specialise(gp, prefix + "fold", {"z": z})

    # Reference: the equivalent monolithic program.
    reference = load_program(
        POOL
        + """
module F where
import Pool

fold z xs = if null xs then z else %s (head xs) (fold z (tail xs))
"""
        % actual
    )
    assert result.run(xs) == run_program(reference, "fold", [z, xs])
