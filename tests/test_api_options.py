"""The typed options facade (``repro.api``) and its deprecation shim."""

import dataclasses
import warnings

import pytest

import repro
from repro import api
from repro.api import BuildOptions, LegacyOptionsWarning, SpecOptions
from repro.pipeline import build_dir
from repro.pipeline.faults import FaultPolicy

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    api._reset_legacy_warnings()
    yield
    api._reset_legacy_warnings()


# ---------------------------------------------------------------------------
# The option objects themselves.
# ---------------------------------------------------------------------------


def test_options_are_frozen():
    opts = BuildOptions(jobs=2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        opts.jobs = 4
    with pytest.raises(dataclasses.FrozenInstanceError):
        SpecOptions().strategy = "dfs"


def test_replace_returns_modified_copy():
    base = BuildOptions(jobs=2, keep_going=True)
    other = base.replace(jobs=8)
    assert other.jobs == 8 and other.keep_going is True
    assert base.jobs == 2, "the original is untouched"


def test_build_options_validate_jobs():
    with pytest.raises(ValueError):
        BuildOptions(jobs=0)


def test_spec_options_validate_strategy():
    with pytest.raises(ValueError):
        SpecOptions(strategy="sideways")


def test_force_residual_coerced_to_frozenset():
    opts = SpecOptions(force_residual=["power", "twice"])
    assert opts.force_residual == frozenset({"power", "twice"})
    assert BuildOptions(force_residual=None).force_residual == frozenset()


def test_fault_policy_resolution():
    assert BuildOptions(keep_going=True, retries=2).fault_policy() == (
        FaultPolicy(keep_going=True, retries=2)
    )
    custom = FaultPolicy(timeout=9.0)
    assert BuildOptions(policy=custom, retries=5).fault_policy() is custom


def test_options_compare_by_value():
    assert BuildOptions(jobs=3) == BuildOptions(jobs=3)
    assert SpecOptions(strategy="dfs") != SpecOptions()


# ---------------------------------------------------------------------------
# The coercion helpers and the deprecation shim.
# ---------------------------------------------------------------------------


def test_legacy_keywords_warn_exactly_once_per_entry_point():
    gp = repro.compile_genexts(POWER)
    with pytest.warns(LegacyOptionsWarning, match="specialise"):
        repro.specialise(gp, "power", {"n": 3}, strategy="dfs")
    # Second legacy call through the same entry point: silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = repro.specialise(gp, "power", {"n": 3}, strategy="dfs")
    assert result.run(2) == 8, "legacy keywords still work"


def test_each_entry_point_warns_independently(tmp_path):
    (tmp_path / "Power.mod").write_text(POWER)
    with pytest.warns(LegacyOptionsWarning, match="build_dir"):
        build_dir(str(tmp_path), cache_dir=str(tmp_path / "cache"))
    with pytest.warns(LegacyOptionsWarning, match="compile_genexts"):
        repro.compile_genexts(POWER, force_residual={"power"})


def test_reset_makes_the_warning_fire_again():
    gp = repro.compile_genexts(POWER)
    with pytest.warns(LegacyOptionsWarning):
        repro.specialise(gp, "power", {"n": 3}, strategy="dfs")
    api._reset_legacy_warnings()
    with pytest.warns(LegacyOptionsWarning):
        repro.specialise(gp, "power", {"n": 3}, strategy="dfs")


def test_unknown_keyword_is_a_type_error():
    gp = repro.compile_genexts(POWER)
    with pytest.raises(TypeError, match="warp_speed"):
        repro.specialise(gp, "power", {"n": 3}, warp_speed=9)


def test_options_and_legacy_keywords_together_rejected():
    gp = repro.compile_genexts(POWER)
    with pytest.raises(TypeError, match="not both"):
        repro.specialise(
            gp, "power", {"n": 3}, SpecOptions(strategy="dfs"), timeout=5.0
        )


def test_wrong_options_type_rejected(tmp_path):
    with pytest.raises(TypeError, match="BuildOptions"):
        build_dir(str(tmp_path), SpecOptions())


def test_options_object_passes_through_unchanged():
    opts = SpecOptions(strategy="dfs")
    assert api.spec_options("specialise", opts, {}) is opts
    assert api.build_options("build_dir", None, {}) == BuildOptions()


def test_legacy_coercion_builds_equivalent_options():
    with pytest.warns(LegacyOptionsWarning):
        opts = api.build_options(
            "build_dir", None, {"jobs": 4, "keep_going": True}
        )
    assert opts == BuildOptions(jobs=4, keep_going=True)


# ---------------------------------------------------------------------------
# End to end through the public entry points.
# ---------------------------------------------------------------------------


def test_build_dir_accepts_options_object(tmp_path):
    (tmp_path / "Power.mod").write_text(POWER)
    result = build_dir(
        str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache"))
    )
    assert result.analysed == ["Power"]


def test_specialise_accepts_options_object():
    gp = repro.compile_genexts(POWER)
    result = repro.specialise(
        gp, "power", {"n": 4}, SpecOptions(strategy="dfs")
    )
    assert result.run(3) == 81


def test_mix_specialise_accepts_options_object():
    from repro.specialiser import mix_specialise

    result = mix_specialise(POWER, "power", {"n": 2})
    assert result.run(5) == 25
