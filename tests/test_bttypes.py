"""Binding-time type machinery: unification, coercion, well-formedness,
schemes, and instantiation."""

import pytest

from repro.bt.bttypes import (
    BTTBase,
    BTTFun,
    BTTList,
    BTTPair,
    BTTSkel,
    BTUnifier,
    BTUnifyError,
    bt_slots,
    map_bts,
    top,
)
from repro.bt.graph import ConstraintGraph
from repro.bt.scheme import BTScheme, Canonicaliser, input_name, instantiate


def setup():
    g = ConstraintGraph()
    return g, BTUnifier(g)


def solved(g, params, v):
    return g.solve(params)[v]


# -- unification -----------------------------------------------------------


def test_unify_bases_equates_binding_times():
    g, u = setup()
    p = g.fresh()
    a = BTTBase("Nat", p)
    b = BTTBase("Nat", g.fresh())
    u.unify(a, b)
    assert solved(g, [p], b.bt) == (frozenset({p}), False)


def test_unify_base_name_mismatch():
    g, u = setup()
    with pytest.raises(BTUnifyError):
        u.unify(BTTBase("Nat", g.fresh()), BTTBase("Bool", g.fresh()))


def test_unify_shape_mismatch():
    g, u = setup()
    with pytest.raises(BTUnifyError):
        u.unify(
            BTTList(g.fresh(), u.fresh_skel()), BTTBase("Nat", g.fresh())
        )


def test_unify_skeleton_binds():
    g, u = setup()
    s = u.fresh_skel()
    t = BTTList(g.fresh(), BTTBase("Nat", g.fresh()))
    u.unify(s, t)
    assert u.resolve(s) == t


def test_unify_skeleton_occurs_check():
    g, u = setup()
    s = u.fresh_skel()
    with pytest.raises(BTUnifyError):
        u.unify(s, BTTList(g.fresh(), s))


def test_unify_deep_resolution():
    g, u = setup()
    s1, s2 = u.fresh_skel(), u.fresh_skel()
    u.unify(s1, s2)
    t = BTTBase("Nat", g.fresh())
    u.unify(s2, t)
    assert u.deep(s1) == t


# -- coercion ----------------------------------------------------------------


def test_coerce_base_is_one_way():
    g, u = setup()
    p, q = g.fresh(), g.fresh()
    u.coerce(BTTBase("Nat", p), BTTBase("Nat", q))
    assert solved(g, [p], q) == (frozenset({p}), False)
    assert solved(g, [p, q], p) == (frozenset({p}), False)  # no back edge


def test_coerce_list_covariant():
    g, u = setup()
    p, e1 = g.fresh(), g.fresh()
    q, e2 = g.fresh(), g.fresh()
    u.coerce(
        BTTList(p, BTTBase("Nat", e1)), BTTList(q, BTTBase("Nat", e2))
    )
    sol = g.solve([p, e1])
    assert sol[q] == (frozenset({p}), False)
    assert sol[e2] == (frozenset({e1}), False)


def test_coerce_function_children_invariant():
    g, u = setup()
    a1, r1, f1 = g.fresh(), g.fresh(), g.fresh()
    a2, r2, f2 = g.fresh(), g.fresh(), g.fresh()
    u.coerce(
        BTTFun(f1, BTTBase("Nat", a1), BTTBase("Nat", r1)),
        BTTFun(f2, BTTBase("Nat", a2), BTTBase("Nat", r2)),
    )
    sol = g.solve([a2, r1])
    # argument and result equated (both directions).
    assert sol[a1] == (frozenset({a2}), False)
    assert sol[r2] == (frozenset({r1}), False)


def test_coerce_unbound_skeleton_source_instantiates_one_way():
    # The principality fix: coercing an unbound parameter skeleton into
    # Nat^o must NOT alias the parameter with o.
    g, u = setup()
    s = u.fresh_skel()
    o = g.fresh()
    other = g.fresh()
    g.edge(other, o)  # o also absorbs another parameter
    u.coerce(s, BTTBase("Nat", o))
    bound = u.resolve(s)
    assert isinstance(bound, BTTBase)
    sol = g.solve([bound.bt, other])
    # o sees the parameter; the parameter does not see `other` back.
    assert sol[o][0] == frozenset({bound.bt, other})
    assert sol[bound.bt] == (frozenset({bound.bt}), False)


def test_coerce_unbound_skeleton_target():
    g, u = setup()
    s = u.fresh_skel()
    p = g.fresh()
    u.coerce(BTTBase("Nat", p), s)
    bound = u.resolve(s)
    assert isinstance(bound, BTTBase)
    assert solved(g, [p], bound.bt) == (frozenset({p}), False)


def test_coerce_shape_mismatch():
    g, u = setup()
    with pytest.raises(BTUnifyError):
        u.coerce(
            BTTBase("Nat", g.fresh()),
            BTTList(g.fresh(), BTTBase("Nat", g.fresh())),
        )


# -- well-formedness ------------------------------------------------------------


def test_well_formed_pushes_parent_to_children():
    g, u = setup()
    spine, elem = g.fresh(), g.fresh()
    t = BTTList(spine, BTTBase("Nat", elem))
    u.well_formed(t)
    assert solved(g, [spine], elem) == (frozenset({spine}), False)


def test_well_formed_recursive():
    g, u = setup()
    a, b, c = g.fresh(), g.fresh(), g.fresh()
    t = BTTList(a, BTTPair(b, BTTBase("Nat", c), BTTBase("Nat", g.fresh())))
    u.well_formed(t)
    sol = g.solve([a])
    assert sol[b][0] == frozenset({a})
    assert sol[c][0] == frozenset({a})


def test_instantiate_like_preserves_shape():
    g, u = setup()
    t = BTTFun(
        g.fresh(),
        BTTList(g.fresh(), BTTBase("Nat", g.fresh())),
        u.fresh_skel(),
    )
    copy = u.instantiate_like(t)
    assert isinstance(copy, BTTFun)
    assert isinstance(copy.arg, BTTList)
    assert isinstance(copy.res, BTTSkel)
    assert copy.bt != t.bt


# -- canonical schemes -------------------------------------------------------------


def _power_like_scheme():
    """Build a scheme resembling power's: t -> u -> t|u, unfold t."""
    g, u = setup()
    t, uu, r, c = g.fresh(), g.fresh(), g.fresh(), g.fresh()
    g.edge(t, r)
    g.edge(uu, r)
    g.edge(t, c)
    g.edge(c, r)
    canon = Canonicaliser(u)
    return canon.build(
        g, [BTTBase("Nat", t), BTTBase("Nat", uu)], BTTBase("Nat", r), c
    )


def test_canonical_scheme_shape():
    s = _power_like_scheme()
    assert s.inputs() == (0, 1)
    assert s.input_names() == ("t", "u")
    sol = s.solve_symbolic()
    assert str(sol[s.args[0].bt]) == "t"
    assert str(sol[s.res.bt]) == "t|u"
    assert str(sol[s.unfold]) == "t"


def test_scheme_equality_is_structural():
    assert _power_like_scheme() == _power_like_scheme()


def test_scheme_str_mentions_unfold():
    assert "[unfold: t]" in str(_power_like_scheme())


def test_instantiate_replays_edges():
    s = _power_like_scheme()
    g, u = setup()
    args, res, slot_map = instantiate(s, g, u)
    t_var = args[0].bt
    sol = g.solve([t_var])
    assert sol[res.bt][0] == frozenset({t_var})


def test_instantiate_shares_skeletons():
    g0, u0 = setup()
    elem = u0.fresh_skel()
    spine = g0.fresh()
    canon = Canonicaliser(u0)
    scheme = canon.build(
        g0, [BTTList(spine, elem)], elem, g0.fresh()
    )
    g, u = setup()
    args, res, _ = instantiate(scheme, g, u)
    assert isinstance(res, BTTSkel)
    assert args[0].elem.id == res.id  # same fresh skeleton on both sides


def test_input_name_sequence():
    names = [input_name(i) for i in range(14)]
    assert names[:4] == ["t", "u", "v", "w"]
    assert names[12] == "t12"


def test_bt_slots_and_map_bts():
    g, u = setup()
    t = BTTPair(1, BTTBase("Nat", 2), BTTList(3, BTTBase("Bool", 4)))
    assert bt_slots(t) == [1, 2, 3, 4]
    doubled = map_bts(t, lambda b: b * 10)
    assert bt_slots(doubled) == [10, 20, 30, 40]
    assert top(doubled) == 10
