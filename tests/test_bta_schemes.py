"""Binding-time schemes across a range of definitions: principality,
polymorphic recursion, qualifications, and module-by-module analysis."""

import pytest

from repro.bt.analysis import BTAError, analyse_module, analyse_program
from repro.bt.bt import BT, D, S, bt_lub, var
from repro.modsys.program import load_program


def schemes(source, force_residual=frozenset()):
    return analyse_program(
        load_program(source), force_residual=force_residual
    ).schemes


def sol_of(scheme):
    return scheme.solve_symbolic()


def test_identity_is_fully_polymorphic():
    s = schemes("module M where\n\nident x = x\n")["ident"]
    sol = sol_of(s)
    assert sol[s.res.bt] == var("t")
    assert sol[s.unfold] == S


def test_constant_function_result_is_static():
    s = schemes("module M where\n\nconst2 x = 2\n")["const2"]
    assert sol_of(s)[s.res.bt] == S


def test_addition_lubs_its_operands():
    s = schemes("module M where\n\nplus x y = x + y\n")["plus"]
    sol = sol_of(s)
    assert sol[s.res.bt] == bt_lub(var("t"), var("u"))
    assert sol[s.unfold] == S


def test_conditional_forces_result_at_least_test():
    s = schemes("module M where\n\nf c x = if c then x else x + 1\n")["f"]
    sol = sol_of(s)
    assert sol[s.res.bt] == bt_lub(var("t"), var("u"))
    assert sol[s.unfold] == var("t")


def test_length_ignores_element_binding_times():
    s = schemes(
        "module M where\n\nlen xs = if null xs then 0 else 1 + len (tail xs)\n"
    )["len"]
    sol = sol_of(s)
    # Result depends only on the spine.
    assert sol[s.res.bt] == var("t")
    assert sol[s.unfold] == var("t")


def test_map_scheme_matches_dhm_shape():
    s = schemes(
        "module M where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
    )["map"]
    names = s.input_names()
    assert len(names) == 4  # closure bt, arg elem, result elem, spine
    quals = s.qualifications()
    assert quals, "map needs qualifications relating closure and spine"


def test_polymorphic_recursion_converges_for_mutual_recursion():
    src = (
        "module M where\n\n"
        "even n = if n == 0 then true else odd (n - 1)\n"
        "odd n = if n == 0 then false else even (n - 1)\n"
    )
    out = schemes(src)
    for name in ("even", "odd"):
        s = out[name]
        sol = sol_of(s)
        assert sol[s.res.bt] == var("t")
        assert sol[s.unfold] == var("t")


def test_zero_arity_definition():
    s = schemes("module M where\n\nc = 41\n")["c"]
    assert s.args == ()
    assert sol_of(s)[s.res.bt] == S


def test_force_residual_makes_unfold_dynamic():
    out = schemes("module M where\n\nid2 x = x\n", force_residual={"id2"})
    s = out["id2"]
    sol = sol_of(s)
    assert sol[s.unfold] == D
    assert sol[s.res.bt] == D


def test_imported_scheme_is_instantiated_per_call():
    src = (
        "module A where\n\nident x = x\n"
        "module B where\nimport A\n\n"
        "two a b = ident a + ident (a + b)\n"
    )
    s = schemes(src)["two"]
    sol = sol_of(s)
    assert sol[s.res.bt] == bt_lub(var("t"), var("u"))


def test_module_analysis_requires_import_interfaces():
    lp = load_program(
        "module A where\n\nf x = x\n"
        "module B where\nimport A\n\ng y = f y\n"
    )
    with pytest.raises(BTAError):
        analyse_module(lp.module("B"), {})  # missing f's scheme


def test_analysis_is_per_module_composable():
    lp = load_program(
        "module A where\n\nf x = x + 1\n"
        "module B where\nimport A\n\ng y = f (f y)\n"
    )
    a = analyse_module(lp.module("A"), {})
    b = analyse_module(lp.module("B"), a.schemes)
    whole = analyse_program(lp)
    assert b.schemes["g"] == whole.schemes["g"]
    assert a.schemes["f"] == whole.schemes["f"]


def test_unfold_includes_conditionals_under_lambdas():
    src = (
        "module M where\n\n"
        "apply f x = f @ x\n"
        "g c x = apply (\\y -> if c then y else y + 1) x\n"
    )
    s = schemes(src)["g"]
    sol = sol_of(s)
    # The conditional sits textually in g's body, so g's unfold
    # annotation must dominate c's binding time.
    assert var("t").params <= sol[s.unfold].params or sol[s.unfold].dyn


def test_static_pair_projections():
    s = schemes("module M where\n\nf a b = fst (pair a b)\n")["f"]
    sol = sol_of(s)
    assert sol[s.res.bt] == var("t")


def test_well_formedness_dynamic_spine_forces_elements():
    src = "module M where\n\nf c xs ys = if c then xs else tail ys\n"
    s = schemes(src)["f"]
    sol = sol_of(s)
    from repro.bt.bttypes import BTTList

    res = s.res
    assert isinstance(res, BTTList)
    # spine of the result absorbs the condition's binding time, and the
    # element top dominates the spine.
    spine = sol[res.bt]
    elem_top = sol[res.elem.bt]
    assert spine.params <= elem_top.params or elem_top.dyn


def test_returned_closure_argument_is_an_input():
    from repro.bt.scheme import result_input_names

    src = (
        "module M where\n\n"
        "pick c = if c then (\\x -> x + 1) else (\\x -> x * 2)\n"
    )
    s = schemes(src)["pick"]
    extra = result_input_names(s)
    # The returned closure's argument binding time is context-chosen.
    assert len(extra) >= 1
    assert set(extra) <= set(s.input_names())


def test_first_order_results_add_no_inputs():
    from repro.bt.scheme import result_input_names

    src = "module M where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"
    assert result_input_names(schemes(src)["power"]) == ()


def test_schemes_stable_under_reanalysis():
    src = power = "module M where\n\nf n x = if n == 0 then x else f (n - 1) (x * x)\n"
    assert schemes(src)["f"] == schemes(src)["f"]
