"""Binding-time lattice tests, including algebraic properties."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.bt.bt import BT, BTAExprError, D, S, bt_lub, evaluate, substitute, var


def test_constants():
    assert S.is_static and not S.is_dynamic
    assert D.is_dynamic and not D.is_static
    assert str(S) == "S" and str(D) == "D"


def test_variable_display():
    assert str(var("t")) == "t"
    assert str(bt_lub(var("u"), var("t"))) == "t|u"


def test_d_absorbs():
    assert bt_lub(var("t"), D) == D
    assert bt_lub(D, S) == D
    assert BT(frozenset({"t"}), True).params == frozenset()


def test_s_is_identity():
    assert bt_lub(S, var("t")) == var("t")
    assert bt_lub(S, S) == S


def test_evaluate():
    env = {"t": S, "u": D}
    assert evaluate(var("t"), env) == S
    assert evaluate(var("u"), env) == D
    assert evaluate(bt_lub(var("t"), var("u")), env) == D
    assert evaluate(S, {}) == S
    assert evaluate(D, {}) == D


def test_evaluate_unbound_parameter():
    with pytest.raises(BTAExprError):
        evaluate(var("t"), {})


def test_evaluate_rejects_symbolic_bindings():
    with pytest.raises(BTAExprError):
        evaluate(var("t"), {"t": var("u")})


def test_substitute_symbolic():
    out = substitute(bt_lub(var("t"), var("u")), {"t": var("a"), "u": S})
    assert out == var("a")
    out = substitute(var("t"), {"t": bt_lub(var("a"), var("b"))})
    assert out == bt_lub(var("a"), var("b"))


_bts = st.one_of(
    st.just(S),
    st.just(D),
    st.sets(st.sampled_from("tuvw"), min_size=1, max_size=3).map(
        lambda names: BT(frozenset(names), False)
    ),
)


@given(_bts, _bts)
def test_lub_commutative(a, b):
    assert bt_lub(a, b) == bt_lub(b, a)


@given(_bts, _bts, _bts)
def test_lub_associative(a, b, c):
    assert bt_lub(bt_lub(a, b), c) == bt_lub(a, bt_lub(b, c))


@given(_bts)
def test_lub_idempotent(a):
    assert bt_lub(a, a) == a


@given(_bts)
def test_lub_units(a):
    assert bt_lub(a, S) == a
    assert bt_lub(a, D) == D


@given(_bts, st.dictionaries(st.sampled_from("tuvw"), st.sampled_from([S, D])))
def test_evaluate_is_lub_homomorphism(a, env):
    full_env = {n: env.get(n, S) for n in "tuvw"}
    evaluated = evaluate(a, full_env)
    # Evaluating is the same as substituting concrete values.
    assert evaluated == substitute(a, full_env)
