"""Run the executable examples embedded in docstrings."""

import doctest

import pytest

import repro
import repro.backend.rtcg
import repro.bt.explain
import repro.stdlib


@pytest.mark.parametrize(
    "module",
    [repro, repro.backend.rtcg, repro.stdlib],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, tests = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert failures == 0
    assert tests > 0
