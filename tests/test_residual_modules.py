"""Residual-module assembly: naming, imports, two-pass emission."""

import os

import pytest

import repro
from repro.lang.ast import Call, Def, Lit, Var
from repro.modsys.program import load_program_dir
from repro.residual.emit import TwoPassEmitter, emit_program_dir
from repro.api import SpecOptions
from repro.residual.module import (
    ResidualStructureError,
    assemble_monolithic,
    assemble_program,
    combination_name,
)


def test_combination_name_single():
    assert combination_name({"Power"}) == "Power"


def test_combination_name_sorts_parts():
    assert combination_name({"Twice", "Power"}) == "PowerTwice"


def test_combination_name_uniquifies():
    taken = {"PowerTwice"}
    assert combination_name({"Twice", "Power"}, taken) == "PowerTwice_2"


def test_assemble_groups_by_placement():
    defs = [
        (frozenset({"A"}), Def("f_1", ("x",), Var("x"))),
        (frozenset({"A"}), Def("f_2", ("x",), Call("f_1", (Var("x"),)))),
        (frozenset({"B"}), Def("g_1", ("y",), Call("f_1", (Var("y"),)))),
    ]
    program, names = assemble_program(defs)
    by_name = {m.name: m for m in program.modules}
    assert set(by_name) == {"A", "B"}
    assert len(by_name["A"].defs) == 2
    assert by_name["B"].imports == ("A",)
    assert by_name["A"].imports == ()


def test_assemble_orders_modules_topologically():
    defs = [
        (frozenset({"B"}), Def("g_1", ("y",), Call("f_1", (Var("y"),)))),
        (frozenset({"A"}), Def("f_1", ("x",), Var("x"))),
    ]
    program, _ = assemble_program(defs)
    assert [m.name for m in program.modules] == ["A", "B"]


def test_assemble_rejects_dangling_references():
    defs = [(frozenset({"A"}), Def("f_1", ("x",), Call("ghost", ())))]
    with pytest.raises(ResidualStructureError):
        assemble_program(defs)


def test_assemble_monolithic():
    defs = [
        (frozenset({"A"}), Def("f_1", ("x",), Var("x"))),
        (frozenset({"B"}), Def("g_1", ("y",), Lit(1))),
    ]
    program = assemble_monolithic(defs)
    assert len(program.modules) == 1
    assert len(program.modules[0].defs) == 2


def test_emit_program_dir_roundtrip(tmp_path):
    gp = repro.compile_genexts(
        "module Power where\n\n"
        "power n x = if n == 1 then x else x * power (n - 1) x\n"
    )
    result = repro.specialise(gp, "power", {"x": 2})
    out = str(tmp_path / "residual")
    emit_program_dir(result.program, out)
    reloaded = load_program_dir(out)
    assert reloaded.program == result.program


def test_two_pass_emitter_streams_and_assembles(tmp_path):
    from repro.bench.generators import power_twice_main_source

    gp = repro.compile_genexts(power_twice_main_source(), SpecOptions(force_residual={"power", "twice", "main"}))
    out = str(tmp_path / "residual")
    emitter = TwoPassEmitter(out)
    result = repro.specialise(gp, "main", {}, SpecOptions(sink=emitter))
    names = emitter.finish()
    assert emitter.defs_written == result.stats["specialisations"]
    emitted = sorted(os.listdir(out))
    assert emitted == ["Main.mod", "Power.mod", "PowerTwice.mod"]
    # The emitted program parses, links, and behaves like the in-memory
    # one modulo the entry definition (attached after streaming).
    reloaded = load_program_dir(out)
    from repro.interp import run_program

    entry = next(
        d.name for m in reloaded.program.modules for d in m.defs
        if d.name.startswith("main")
    )
    assert run_program(reloaded, entry, [2]) == 512


def test_two_pass_emitter_imports_are_computed_after_bodies(tmp_path):
    gp = repro.compile_genexts(
        "module A where\n\n"
        "f n x = if n == 0 then x else f (n - 1) (x + 1)\n"
    )
    out = str(tmp_path / "residual")
    emitter = TwoPassEmitter(out)
    repro.specialise(gp, "f", {}, SpecOptions(sink=emitter))
    emitter.finish()
    text = (tmp_path / "residual" / "A.mod").read_text()
    assert text.startswith("module A where\n")
