"""Backend edge cases: deep expressions, collision-safe naming, errors."""

import pytest

import repro
from repro.backend import compile_program
from repro.modsys.program import load_program


def test_moderately_deep_residual_expression_compiles():
    # A few hundred nested operations must survive CPython's parser.
    gp = repro.compile_genexts(
        "module M where\n\n"
        "count n x = if n == 0 then x else count (n - 1) (x + 1)\n"
    )
    result = repro.specialise(gp, "count", {"n": 300})
    compiled = compile_program(result.program)
    assert compiled.call(result.entry, 5) == 305


def test_name_collision_with_helpers():
    # Object-language names that match backend helpers must not clash
    # (helpers are underscore-prefixed, user names never are).
    c = compile_program(
        load_program("module M where\n\nhead2 xs = head xs\ncons2 x = x : nil\n")
    )
    assert c.call("head2", (9,)) == 9
    assert c.call("cons2", 1) == (1,)


def test_mangled_names_do_not_collide():
    c = compile_program(
        load_program("module M where\n\nf x' = x' + 1\nf2 in' = in' * 2\n")
    )
    assert c.call("f", 1) == 2
    assert c.call("f2", 3) == 6


def test_compiled_program_exposes_source():
    c = compile_program(load_program("module M where\n\nf x = x\n"))
    assert "def f(x):" in c.source


def test_unknown_function_raises_keyerror():
    c = compile_program(load_program("module M where\n\nf x = x\n"))
    with pytest.raises(KeyError):
        c.function("ghost")


def test_strict_booleans_evaluate_both_sides():
    # `false && head nil` faults under strict object semantics; the
    # compiled code must preserve that (no Python short-circuit).
    c = compile_program(
        load_program("module M where\n\nf xs = false && (head xs == 1)\n")
    )
    with pytest.raises(Exception):
        c.call("f", ())
