"""End-to-end integration across the on-disk artefact formats:

source .mod files → .bti interfaces → .genext.py modules → residual .mod
files → reload and run.  This is the full vendor/client story with every
artefact actually written to and read back from disk."""

import os

import pytest

import repro
from repro.bt.interface import InterfaceManager
from repro.genext.cogen import cogen_program
from repro.genext.link import load_genext_dir, write_genexts
from repro.interp import run_program
from repro.modsys.program import load_program_dir
from repro.residual.emit import TwoPassEmitter, emit_program_dir
from repro.api import SpecOptions

LIB = """\
module Lib where

power n x = if n == 1 then x else x * power (n - 1) x
sumto n acc = if n == 0 then acc else sumto (n - 1) (acc + n)
"""

APP = """\
module App where
import Lib

main y = power 3 y + sumto 4 0
"""


@pytest.fixture
def project(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "Lib.mod").write_text(LIB)
    (src / "App.mod").write_text(APP)
    return tmp_path


def test_full_disk_pipeline(project):
    src_dir = str(project / "src")
    dist_dir = str(project / "dist")
    out_dir = str(project / "residual")

    # 1. Separate analysis with interface files on disk.
    linked = load_program_dir(src_dir)
    manager = InterfaceManager(src_dir)
    schemes, analysed = manager.analyse(linked)
    assert analysed == ["Lib", "App"]
    assert (project / "src" / "Lib.bti").exists()

    # 2. Cogen to disk.
    analysis = repro.analyse_program(linked)
    write_genexts(cogen_program(analysis), dist_dir)
    assert sorted(os.listdir(dist_dir)) == ["App.genext.py", "Lib.genext.py"]

    # 3. Link from disk only (no sources consulted).
    gp = load_genext_dir(dist_dir)

    # 4. Specialise with streaming two-pass emission to disk.
    emitter = TwoPassEmitter(out_dir)
    result = repro.specialise(gp, "main", {}, SpecOptions(sink=emitter))
    emitter.finish()

    # 5. Reload the emitted residual modules and run them.
    # The streaming emitter wrote the memoised specialisations; the
    # in-memory program additionally carries the entry definition.
    emit_program_dir(result.program, out_dir)
    reloaded = load_program_dir(out_dir)
    for y in (0, 1, 2, 5):
        assert run_program(reloaded, result.entry, [y]) == y ** 3 + 10


def test_incremental_edit_only_reanalyses_app(project):
    src_dir = str(project / "src")
    linked = load_program_dir(src_dir)
    manager = InterfaceManager(src_dir)
    manager.analyse(linked)
    # Edit App only (content change; a mere touch would re-do nothing).
    (project / "src" / "App.mod").write_text(APP + "alt y = power 2 y\n")
    _, analysed = manager.analyse(load_program_dir(src_dir))
    assert analysed == ["App"]


def test_residual_emission_roundtrip_machine_compiler(tmp_path):
    from repro.bench.generators import machine_interpreter_source, random_machine_program
    from repro.modsys.program import load_program

    gp = repro.compile_genexts(machine_interpreter_source())
    prog = random_machine_program(15, seed=3)
    result = repro.specialise(gp, "run", {"prog": prog})
    out = str(tmp_path / "compiled")
    emit_program_dir(result.program, out)
    reloaded = load_program_dir(out)
    source = load_program(machine_interpreter_source())
    for acc in (0, 2, 7):
        assert run_program(reloaded, result.entry, [acc]) == run_program(
            source, "run", [prog, acc], fuel=10_000_000
        )
