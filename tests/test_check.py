"""The correctness harness (``repro.check``) and its satellite fixes.

Covers: the seed-pinned golden corpus, the four-way differential
oracle (including byte-identity across ``--jobs`` widths), the
annotation lint (each Fig. 2 rule, positive and negative), the
interface fsck against deliberately skewed ``*.bti`` files, repro
bundles and replay, the ddmin-lite minimiser, the ``mspec check`` CLI,
and regression tests that the narrowed exception handlers (bus,
residual assembly, fault supervisor, residual cache) now let
programming errors surface.
"""

import dataclasses
import glob
import json
import logging
import os
import shutil

import pytest

from repro.anno.ast import ACoerce, AExpr, walk_aexpr
from repro.bt.analysis import analyse_program
from repro.bt.bt import D, S
from repro.bt.interface import InterfaceManager
from repro.check import EXIT_CHECK_FAILED, run_check
from repro.check.diff import DIFF_FUEL, minimise_case, run_case
from repro.check.driver import case_from_bundle, replay
from repro.check.gen import generate_case, generate_cases
from repro.check.lint import lint_aprogram, lint_linked
from repro.check.ifaces import check_interfaces
from repro.check.report import (
    CHECK_BUNDLE_SCHEMA,
    CheckReport,
    Finding,
    make_bundle,
    read_bundle,
    validate_bundle,
    write_bundle,
)
from repro.genext.cogen import cogen_program
from repro.genext.engine import specialise
from repro.genext.link import link_genexts
from repro.interp import run_program
from repro.lang.pretty import pretty_program
from repro.modsys.program import load_program, load_program_dir

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "seed*.json")))

EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "modules"
)

TWO_MODULE_SOURCE = {
    "Power.mod": """\
module Power where

power n x = if n == 0 then 1 else x * power (n - 1) x
""",
    "Main.mod": """\
module Main where
import Power

main s d = power s d + power 2 d
""",
}


def _write_two_module_dir(path):
    os.makedirs(path, exist_ok=True)
    for name, text in TWO_MODULE_SOURCE.items():
        with open(os.path.join(path, name), "w") as f:
            f.write(text)
    return path


@pytest.fixture
def src_dir(tmp_path):
    return _write_two_module_dir(str(tmp_path / "src"))


@pytest.fixture
def analysed_dir(src_dir):
    """A source dir with freshly analysed ``*.bti`` + key sidecars."""
    manager = InterfaceManager(src_dir)
    manager.analyse(load_program_dir(src_dir))
    return src_dir


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_deterministic(self):
        a, b = generate_case(7), generate_case(7)
        assert a == b

    def test_distinct_seeds_distinct_programs(self):
        cases = generate_cases(6, seed=100)
        assert len({c.source for c in cases}) > 1

    def test_cases_are_runnable(self):
        for case in generate_cases(4, seed=40):
            linked = load_program(case.source)
            for valuation in case.static_variants:
                for vec in case.dyn_inputs:
                    run_program(
                        linked,
                        case.goal,
                        case.full_args(valuation, vec),
                        fuel=DIFF_FUEL,
                    )

    def test_static_split_is_proper(self):
        case = generate_case(3)
        assert case.static_args
        assert set(case.static_args) < set(case.params)


# ---------------------------------------------------------------------------
# Seed-pinned corpus: byte-identical residuals, agreeing values
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "corpus_file", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_golden(corpus_file):
    with open(corpus_file) as f:
        doc = json.load(f)
    assert doc["schema"] == "repro.check.corpus/v1"
    linked = load_program(doc["source"])
    gp = link_genexts(cogen_program(analyse_program(linked)))
    for vi, valuation in enumerate(doc["static_variants"]):
        result = specialise(gp, doc["goal"], dict(valuation))
        assert pretty_program(result.program) == doc["residuals"][vi], (
            "residual for %s variant %d drifted from the pinned golden "
            "text — if intended, re-run tests/corpus/regenerate.py"
            % (os.path.basename(corpus_file), vi)
        )
        for vec, want in zip(doc["dyn_inputs"], doc["values"][vi]):
            got = result.run(*vec, fuel=DIFF_FUEL)
            listy = tuple(want) if isinstance(want, list) else want
            assert got == listy


def test_corpus_is_complete():
    assert len(CORPUS_FILES) == 25


def _case_from_corpus(doc):
    from repro.check.gen import GeneratedCase

    return GeneratedCase(
        seed=doc["seed"],
        source=doc["source"],
        goal=doc["goal"],
        static_args=dict(doc["static_args"]),
        static_variants=tuple(dict(v) for v in doc["static_variants"]),
        dyn_inputs=tuple(tuple(v) for v in doc["dyn_inputs"]),
        params=tuple(doc["params"]),
    )


@pytest.mark.parametrize(
    "corpus_file", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_agrees_across_tiers_and_widths(corpus_file):
    """Every pinned seed runs byte-identically through all five
    differential ways — including each rung of the execution ladder
    (interp / residual / compiled Python) — at --jobs widths 1 and 4."""
    with open(corpus_file) as f:
        doc = json.load(f)
    failures = run_case(_case_from_corpus(doc), jobs_widths=(1, 4))
    assert failures == [], failures


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------


class TestDiffOracle:
    def test_fuzz_agrees_across_ways_and_widths(self):
        for case in generate_cases(6, seed=0):
            failures = run_case(case, jobs_widths=(1, 2))
            assert failures == [], "seed %d diverged: %r" % (
                case.seed,
                failures,
            )

    def test_detects_planted_value_divergence(self, monkeypatch):
        """A residual that runs to the wrong value must be reported."""
        import repro.check.diff as diff_mod

        case = generate_case(1)
        real = diff_mod._run_residual

        def skewed(result, vec, fuel=DIFF_FUEL):
            return real(result, vec, fuel) + 1

        monkeypatch.setattr(diff_mod, "_run_residual", skewed)
        failures = run_case(case, jobs_widths=(), check_cache=False)
        assert any(f["kind"] == "value" for f in failures)


# ---------------------------------------------------------------------------
# Annotation lint
# ---------------------------------------------------------------------------


def _map_aexpr(fn, e):
    kw = {}
    for f in dataclasses.fields(e):
        v = getattr(e, f.name)
        if isinstance(v, AExpr):
            kw[f.name] = _map_aexpr(fn, v)
        elif isinstance(v, tuple) and v and all(
            isinstance(x, AExpr) for x in v
        ):
            kw[f.name] = tuple(_map_aexpr(fn, x) for x in v)
    return fn(dataclasses.replace(e, **kw) if kw else e)


def _tamper_first_def(aprogram, predicate, rewrite):
    """``aprogram`` with the first def satisfying ``predicate``
    replaced by ``rewrite(def)``; asserts one was found."""
    mods, done = [], False
    for m in aprogram.modules:
        defs = []
        for d in m.defs:
            if not done and predicate(d):
                d = rewrite(d)
                done = True
            defs.append(d)
        mods.append(dataclasses.replace(m, defs=tuple(defs)))
    assert done, "no definition matched the tamper predicate"
    return dataclasses.replace(aprogram, modules=tuple(mods))


class TestLint:
    @pytest.fixture
    def annotated(self):
        return analyse_program(load_program_dir(EXAMPLES)).annotated

    def test_clean_program_lints_clean(self, annotated):
        assert lint_aprogram(annotated) == []

    def test_lint_linked_clean(self):
        assert lint_linked(load_program_dir(EXAMPLES)) == []

    def test_inflated_unfold_flag_detected(self, annotated):
        tampered = _tamper_first_def(
            annotated,
            lambda d: d.unfold == S,
            lambda d: dataclasses.replace(d, unfold=D),
        )
        rules = {f.rule for f in lint_aprogram(tampered)}
        assert "unfold-lub" in rules

    def test_downward_coercion_detected(self, annotated):
        def has_proper_coercion(d):
            return any(
                isinstance(n, ACoerce) and n.src != n.dst
                for n in walk_aexpr(d.body)
            )

        def flip(d):
            def swap(e):
                if isinstance(e, ACoerce) and e.src != e.dst:
                    return dataclasses.replace(e, src=e.dst, dst=e.src)
                return e

            return dataclasses.replace(d, body=_map_aexpr(swap, d.body))

        tampered = _tamper_first_def(annotated, has_proper_coercion, flip)
        findings = lint_aprogram(tampered)
        assert any(f.rule == "coercion-upward" for f in findings)
        assert all(f.check_pass == "lint" for f in findings)

    def test_mis_annotation_fails_whole_check(self, monkeypatch, tmp_path):
        """End to end: a lint error turns into ``mspec check`` exit 7."""
        import repro.check.driver as driver_mod

        monkeypatch.setattr(
            driver_mod,
            "lint_linked",
            lambda linked, force_residual, **strategies: [
                Finding(
                    check_pass="lint",
                    rule="coercion-upward",
                    where="X.f",
                    message="planted",
                )
            ],
        )
        report = run_check(EXAMPLES, fuzz=0)
        assert not report.ok
        assert report.exit_code == EXIT_CHECK_FAILED


# ---------------------------------------------------------------------------
# Interface fsck
# ---------------------------------------------------------------------------


class TestInterfaceFsck:
    def test_clean_interfaces_pass(self, analysed_dir):
        findings, checked = check_interfaces(analysed_dir)
        assert findings == []
        assert checked == 2

    def test_no_interfaces_means_skipped(self, src_dir):
        report = run_check(src_dir, fuzz=0)
        assert report.ok
        assert "ifaces" in report.skipped

    def test_skewed_interface_detected(self, analysed_dir):
        """Hand-edit one binding time inside ``Power.bti``: the fsck
        must flag the skew and the importer's now-stale key."""
        path = os.path.join(analysed_dir, "Power.bti")
        with open(path) as f:
            doc = json.load(f)
        # Skew the unfold slot of the first scheme to a nonsense value.
        fn = sorted(doc["schemes"])[0]
        doc["schemes"][fn]["unfold"] += 7
        with open(path, "w") as f:
            json.dump(doc, f, sort_keys=True, indent=1)
            f.write("\n")

        report = run_check(analysed_dir, fuzz=0)
        assert not report.ok
        assert report.exit_code == EXIT_CHECK_FAILED
        rules = {f.rule for f in report.findings}
        assert "scheme-skew" in rules
        skew = next(f for f in report.findings if f.rule == "scheme-skew")
        details = dict(skew.details)
        assert "committed" in details and "derived" in details

    def test_wrong_checkout_interface_detected(self, analysed_dir):
        """Replace ``Power.bti`` with ``Main``'s interface — the
        wrong-module guard fires before any scheme diffing."""
        shutil.copyfile(
            os.path.join(analysed_dir, "Main.bti"),
            os.path.join(analysed_dir, "Power.bti"),
        )
        findings, checked = check_interfaces(analysed_dir)
        assert checked == 2
        assert any(f.rule == "wrong-module" for f in findings)

    def test_non_canonical_serialisation_is_warning(self, analysed_dir):
        path = os.path.join(analysed_dir, "Power.bti")
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text + "\n")
        findings, _ = check_interfaces(analysed_dir)
        non_canon = [f for f in findings if f.rule == "non-canonical"]
        assert non_canon and non_canon[0].severity == "warning"

    def test_missing_key_sidecar_is_warning(self, analysed_dir):
        os.remove(os.path.join(analysed_dir, "Power.bti.key"))
        findings, _ = check_interfaces(analysed_dir)
        assert any(f.rule == "no-key" for f in findings)
        report = CheckReport().extend(findings)
        assert report.ok  # warnings alone never fail the run

    def test_corrupt_interface_detected(self, analysed_dir):
        path = os.path.join(analysed_dir, "Power.bti")
        with open(path, "w") as f:
            f.write("{ not json")
        findings, _ = check_interfaces(analysed_dir)
        assert any(f.rule == "corrupt-interface" for f in findings)


# ---------------------------------------------------------------------------
# Repro bundles, replay, minimisation
# ---------------------------------------------------------------------------


class TestBundles:
    def test_round_trip(self, tmp_path):
        case = generate_case(11)
        failures = [{"way": "mix", "kind": "bytes", "message": "differs"}]
        path = str(tmp_path / "bundle.json")
        write_bundle(path, make_bundle(case, failures, "module M where"))
        doc = read_bundle(path)
        assert doc["schema"] == CHECK_BUNDLE_SCHEMA
        assert doc["seed"] == 11
        assert doc["failures"] == failures
        rebuilt = case_from_bundle(doc)
        assert rebuilt == case
        reduced = case_from_bundle(doc, minimised=True)
        assert reduced.source == "module M where"

    def test_validate_rejects_junk(self):
        assert validate_bundle([]) != []
        assert validate_bundle({"schema": "nope"}) != []
        good = make_bundle(generate_case(2), [])
        assert validate_bundle(good) == []

    def test_replay_of_fixed_divergence_is_clean(self, tmp_path):
        """Replaying a bundle whose bug has since been 'fixed' (the
        case actually agrees) reports no failures."""
        case = generate_case(5)
        path = str(tmp_path / "b.json")
        write_bundle(
            path,
            make_bundle(
                case, [{"way": "genext", "kind": "value", "message": "old"}]
            ),
        )
        _, failures = replay(path, jobs_widths=())
        assert failures == []

    def test_minimise_noop_when_case_passes(self):
        case = generate_case(9)
        assert minimise_case(case) == case.source

    def test_minimise_deletes_irrelevant_defs(self, monkeypatch):
        """With a planted failure predicate ('any program containing
        the goal fails'), minimisation strips everything else while
        keeping the program well-formed."""
        import repro.check.diff as diff_mod

        case = generate_case(13)
        full_defs = case.source.count("=")

        def planted(reduced, jobs_widths=(), check_cache=True, timeout=None, obs=None,
                    strategy_matrix=True):
            return [{"way": "genext", "kind": "value", "message": "planted"}]

        monkeypatch.setattr(diff_mod, "run_case", planted)
        reduced = minimise_case(case)
        # Still a valid program containing the goal, with fewer defs.
        linked = load_program(reduced)
        assert any(
            d.name == case.goal for _, d in linked.program.all_defs()
        )
        assert reduced.count("=") <= full_defs


# ---------------------------------------------------------------------------
# Driver + CLI
# ---------------------------------------------------------------------------


class TestDriverAndCli:
    def test_run_check_clean(self):
        report = run_check(EXAMPLES, fuzz=3, jobs_widths=(1,))
        assert report.ok
        assert report.exit_code == 0
        assert report.counters.get("check.programs") == 3
        assert "check.divergences" not in report.counters

    def test_run_check_writes_bundle_on_divergence(
        self, monkeypatch, tmp_path
    ):
        import repro.check.driver as driver_mod

        def planted(case, jobs_widths=(1,), check_cache=True, timeout=None, obs=None,
                    strategy_matrix=True):
            return [{"way": "mix", "kind": "bytes", "message": "planted"}]

        monkeypatch.setattr(driver_mod, "run_case", planted)
        bundle_dir = str(tmp_path / "bundles")
        report = run_check(
            EXAMPLES,
            fuzz=1,
            seed=21,
            bundle_dir=bundle_dir,
            minimise=False,
        )
        assert not report.ok
        assert report.counters.get("check.divergences") == 1
        assert len(report.bundles) == 1
        doc = read_bundle(report.bundles[0])
        assert doc["seed"] == 21

    def test_cli_check_ok(self, capsys):
        from repro.cli import main

        assert main(["check", EXAMPLES, "--fuzz", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_cli_check_json_is_valid_report(self, capsys):
        from repro.cli import main
        from repro.obs.schema import validate_report

        assert main(["check", EXAMPLES, "--fuzz", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_report(doc) == []
        assert doc["command"] == "check"

    def test_cli_check_skewed_dir_exits_7(self, analysed_dir, capsys):
        from repro.cli import main

        path = os.path.join(analysed_dir, "Power.bti")
        with open(path) as f:
            doc = json.load(f)
        fn = sorted(doc["schemes"])[0]
        doc["schemes"][fn]["unfold"] += 7
        with open(path, "w") as f:
            json.dump(doc, f)
        code = main(["check", analysed_dir, "--fuzz", "0"])
        assert code == EXIT_CHECK_FAILED
        assert "scheme-skew" in capsys.readouterr().out

    def test_cli_replay(self, tmp_path, capsys):
        from repro.cli import main

        case = generate_case(4)
        path = str(tmp_path / "b.json")
        write_bundle(path, make_bundle(case, [{"way": "x", "kind": "y", "message": "z"}]))
        assert main(["check", "--replay", path]) == 0
        assert "no longer reproduces" in capsys.readouterr().out

    def test_cli_requires_dir_or_replay(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["check"])

    def test_cli_rejects_bad_jobs_widths(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["check", EXAMPLES, "--jobs-widths", "1,zero"])


# ---------------------------------------------------------------------------
# Narrowed exception handlers (the silent-failure sweep)
# ---------------------------------------------------------------------------


class TestBusAccounting:
    def _bus(self):
        from repro.obs.bus import EventBus

        return EventBus(strict=False)

    def test_default_bus_counts_and_logs_once(self, caplog):
        bus = self._bus()

        def bad(kind, payload):
            raise RuntimeError("boom")

        bus.subscribe("tick", bad)
        with caplog.at_level(logging.WARNING, logger="repro.obs.bus"):
            bus.emit("tick")
            bus.emit("tick")
            bus.emit("tick")
        assert bus.subscriber_errors == 3
        warnings = [
            r for r in caplog.records if "suppressed" in r.getMessage()
        ]
        assert len(warnings) == 1  # first failure only

    def test_strict_bus_raises(self):
        from repro.obs.bus import EventBus

        bus = EventBus(strict=True)
        bus.on_metric(lambda *a: (_ for _ in ()).throw(ValueError("x")))
        with pytest.raises(ValueError):
            bus.metric("n", "counter", 1)

    def test_test_suite_buses_are_strict_by_default(self):
        # The autouse conftest fixture flips the default for the suite.
        from repro.obs.bus import EventBus

        assert EventBus().strict

    def test_errors_surface_in_metrics_snapshot(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.schema import validate_metrics

        bus = self._bus()
        registry = MetricsRegistry(bus)
        bus.on_span_end(lambda e: 1 / 0)
        bus.span_end({"name": "s"})
        bus.span_end({"name": "s"})
        snap = registry.snapshot()
        assert snap["counters"]["bus.subscriber_errors"] == 2
        assert validate_metrics(snap) == []

    def test_one_channel_failure_does_not_starve_others(self):
        bus = self._bus()
        seen = []
        bus.subscribe("tick", lambda k, p: 1 / 0)
        bus.subscribe("tick", lambda k, p: seen.append(k))
        bus.emit("tick")
        assert seen == ["tick"]
        assert bus.subscriber_errors == 1


class TestNarrowedHandlers:
    def test_speccache_parse_rejection_is_cache_miss(self):
        from repro.speccache import SPECCACHE_SCHEMA, validate_payload_bytes

        payload = {
            "schema": SPECCACHE_SCHEMA,
            "entry": "f",
            "dynamic_params": [],
            "stats": {},
            "module_names": [],
            "program": "module ( garbage",
        }
        reason = validate_payload_bytes(json.dumps(payload).encode())
        assert reason is not None
        assert "does not parse" in reason

    def test_speccache_programming_error_propagates(self, monkeypatch):
        import repro.speccache as speccache
        from repro.speccache import SPECCACHE_SCHEMA, validate_payload_bytes

        def buggy_parser(text):
            raise TypeError("parser bug")

        monkeypatch.setattr(speccache, "parse_program", buggy_parser)
        payload = {
            "schema": SPECCACHE_SCHEMA,
            "entry": "f",
            "dynamic_params": [],
            "stats": {},
            "module_names": [],
            "program": "module M where",
        }
        with pytest.raises(TypeError):
            validate_payload_bytes(json.dumps(payload).encode())

    def test_kill_pool_swallows_dead_worker_errors_only(self):
        # The narrowed handler lives in WorkerPool.kill (the shared
        # pool-lifecycle seam behind the supervisor and the daemon).
        from repro.pipeline.pool import WorkerPool

        class Proc:
            def __init__(self, exc):
                self.exc = exc
                self.terminated = False

            def terminate(self):
                if self.exc is not None:
                    raise self.exc
                self.terminated = True

        class Executor:
            def __init__(self, procs):
                self._processes = dict(enumerate(procs))
                self.shut_down = False

            def shutdown(self, wait=False, cancel_futures=True):
                self.shut_down = True

        pool = WorkerPool(1)
        ok = Proc(None)
        executor = Executor([Proc(OSError("gone")), ok])
        pool._executor = executor
        pool.kill()  # OSError from an already-dead worker: fine
        assert ok.terminated and executor.shut_down

        pool._executor = Executor([Proc(TypeError("bug"))])
        with pytest.raises(TypeError):
            pool.kill()

    def test_residual_cycle_is_structure_error(self):
        from repro.lang.ast import Call, Def, Var
        from repro.residual.module import (
            ResidualStructureError,
            assemble_program,
        )

        placed = [
            (frozenset({"A"}), Def("f", ("x",), Call("g", (Var("x"),)))),
            (frozenset({"B"}), Def("g", ("x",), Call("f", (Var("x"),)))),
        ]
        with pytest.raises(ResidualStructureError, match="cyclic"):
            assemble_program(placed)

    def test_residual_assembly_bug_propagates(self, monkeypatch):
        from repro.lang.ast import Def, Lit
        from repro.modsys.graph import ModuleGraph
        from repro.residual.module import assemble_program

        def buggy(self):
            raise TypeError("graph bug")

        monkeypatch.setattr(ModuleGraph, "topo_order", buggy)
        placed = [(frozenset({"A"}), Def("f", ("x",), Lit(1)))]
        with pytest.raises(TypeError):
            assemble_program(placed)
