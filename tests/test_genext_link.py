"""Linker tests: in-memory and on-disk generating extensions."""

import os

import pytest

import repro
from repro.bench.generators import power_twice_main_source
from repro.bt.analysis import analyse_program
from repro.genext.cogen import cogen_program
from repro.genext.link import (
    GenextProgram,
    link_genexts,
    load_genext,
    load_genext_dir,
    write_genexts,
)
from repro.modsys.program import load_program


def genexts(source, force_residual=frozenset()):
    return cogen_program(
        analyse_program(load_program(source), force_residual=force_residual)
    )


def test_link_collects_exports_and_signatures():
    gp = link_genexts(genexts(power_twice_main_source()))
    assert set(gp.registry) == {"power", "twice", "main"}
    assert gp.signature("power").params == ("n", "x")
    assert gp.fn_info["twice"].module == "Twice"


def test_link_rejects_missing_dependency():
    modules = genexts(power_twice_main_source())
    without_power = [m for m in modules if m.name != "Power"]
    with pytest.raises(Exception):
        link_genexts(without_power)


def test_link_rejects_duplicate_functions():
    modules = genexts("module A where\n\nf x = x\n") + genexts(
        "module B where\n\nf x = x\n"
    )
    with pytest.raises(ValueError):
        link_genexts(list(modules))


def test_cross_module_calls_resolve_after_link():
    gp = link_genexts(genexts(power_twice_main_source()))
    result = repro.specialise(gp, "main", {})
    assert result.run(2) == 512


def test_write_and_load_genext_dir(tmp_path):
    modules = genexts(
        power_twice_main_source(), force_residual={"power", "twice", "main"}
    )
    write_genexts(modules, str(tmp_path))
    files = sorted(os.listdir(str(tmp_path)))
    assert files == ["Main.genext.py", "Power.genext.py", "Twice.genext.py"]
    gp = load_genext_dir(str(tmp_path))
    result = repro.specialise(gp, "main", {})
    assert result.run(2) == 512
    assert {m.name for m in result.program.modules} == {
        "Main",
        "Power",
        "PowerTwice",
    }


def test_loaded_dir_recovers_import_structure(tmp_path):
    modules = genexts(power_twice_main_source())
    write_genexts(modules, str(tmp_path))
    gp = load_genext_dir(str(tmp_path))
    assert set(gp.graph.imports_of("Main")) == {"Power", "Twice"}


def test_genexts_do_not_need_sources(tmp_path):
    """The black-box property: specialisation works from the generated
    files alone, with no ``.mod`` source present anywhere."""
    modules = genexts(power_twice_main_source())
    write_genexts(modules, str(tmp_path))
    assert not any(f.endswith(".mod") for f in os.listdir(str(tmp_path)))
    gp = load_genext_dir(str(tmp_path))
    result = repro.specialise(gp, "power", {"n": 3})
    assert result.run(2) == 8


def test_generated_module_compiles_standalone():
    (module,) = genexts("module M where\n\nf x = x + 1\n")
    loaded = load_genext(module)
    assert "f" in loaded.exports
    assert loaded.signatures["f"].params == ("x",)


def test_new_state_strategy_passthrough():
    gp = link_genexts(genexts("module M where\n\nf x = x\n"))
    assert gp.new_state("dfs").strategy == "dfs"
