"""Shared fixtures: a corpus of programs exercised by many test modules."""

import pytest

import repro
from repro.api import SpecOptions
from repro.bench.generators import (
    machine_interpreter_source,
    power_source,
    power_twice_main_source,
)

# ---------------------------------------------------------------------------
# Corpus: (name, source, goal, static args, dynamic sample inputs, force_residual)
# Every entry must be a well-typed program whose goal terminates on the
# sample inputs both at specialisation time and at run time.
# ---------------------------------------------------------------------------

LISTS_LIBRARY = """\
module Lists where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)
append xs ys = if null xs then ys else head xs : append (tail xs) ys
length xs = if null xs then 0 else 1 + length (tail xs)
take n xs = if n == 0 then nil else if null xs then nil else head xs : take (n - 1) (tail xs)
sum xs = if null xs then 0 else head xs + sum (tail xs)
replicate n x = if n == 0 then nil else x : replicate (n - 1) x
"""

CORPUS = [
    dict(
        name="power-static-n",
        source=power_source(),
        goal="power",
        static={"n": 5},
        dyn_inputs=[(0,), (1,), (2,), (7,)],
    ),
    dict(
        name="power-static-x",
        source=power_source(),
        goal="power",
        static={"x": 3},
        dyn_inputs=[(1,), (2,), (5,)],
    ),
    dict(
        name="power-twice-main",
        source=power_twice_main_source(),
        goal="main",
        static={},
        dyn_inputs=[(0,), (1,), (2,), (3,)],
        force_residual={"power", "twice", "main"},
    ),
    dict(
        name="power-twice-main-unforced",
        source=power_twice_main_source(),
        goal="main",
        static={},
        dyn_inputs=[(2,), (3,)],
    ),
    dict(
        name="scale-list",
        source=LISTS_LIBRARY
        + """
module Client where
import Lists

scale k xs = map (\\x -> k * x) xs
""",
        goal="scale",
        static={"k": 7},
        dyn_inputs=[((),), ((1,),), ((1, 2, 3),)],
    ),
    dict(
        name="take-static-n",
        source=LISTS_LIBRARY
        + """
module Client where
import Lists

firstk k xs = take k xs
""",
        goal="firstk",
        static={"k": 3},
        dyn_inputs=[((),), ((5,),), ((5, 6, 7, 8, 9),)],
    ),
    dict(
        name="static-list-fold",
        source=LISTS_LIBRARY
        + """
module Client where
import Lists

dotk ks xs = if null ks then 0 else head ks * head xs + dotk (tail ks) (tail xs)
""",
        goal="dotk",
        static={"ks": (2, 3, 4)},
        dyn_inputs=[((1, 1, 1),), ((5, 0, 2),)],
    ),
    dict(
        name="machine-interpreter",
        source=machine_interpreter_source(),
        goal="run",
        static={
            "prog": (
                ("pair", 1, 2),
                ("pair", 0, 10),
                ("pair", 2, 4),
                ("pair", 1, 3),
            )
        },
        dyn_inputs=[(0,), (1,), (5,), (13,)],
    ),
    dict(
        name="rpn-compiler",
        source=LISTS_LIBRARY.replace(
            "replicate n x = if n == 0 then nil else x : replicate (n - 1) x\n",
            "replicate n x = if n == 0 then nil else x : replicate (n - 1) x\n"
            "nth xs n = if n == 0 then head xs else nth (tail xs) (n - 1)\n",
        )
        + """
module Rpn where
import Lists

exec prog env stack =
  if null prog then head stack
  else if fst (head prog) == 0 then exec (tail prog) env (snd (head prog) : stack)
  else if fst (head prog) == 1 then exec (tail prog) env (nth env (snd (head prog)) : stack)
  else if fst (head prog) == 2 then exec (tail prog) env ((head (tail stack) + head stack) : tail (tail stack))
  else exec (tail prog) env ((head (tail stack) * head stack) : tail (tail stack))

run prog env = exec prog env nil
""",
        goal="run",
        static={
            "prog": (
                ("pair", 1, 0),
                ("pair", 0, 1),
                ("pair", 2, 0),
                ("pair", 1, 1),
                ("pair", 3, 0),
            )
        },
        dyn_inputs=[((0, 0),), ((3, 4),), ((9, 1),)],
    ),
    dict(
        name="higher-order-twice",
        source="""\
module HO where

twice f x = f @ (f @ x)
compose f g = \\x -> f @ (g @ x)

module Use where
import HO

addk k x = x + k
go k x = twice (compose (\\a -> addk k a) (\\b -> b * 2)) x
""",
        goal="go",
        static={"k": 4},
        dyn_inputs=[(0,), (3,), (10,)],
    ),
    dict(
        name="pairs-static",
        source="""\
module Pairs where

swap p = pair (snd p) (fst p)
addp p = fst p + snd p
go a b = addp (swap (pair a b)) * fst (pair a 9)
""",
        goal="go",
        static={"a": 11},
        dyn_inputs=[(1,), (4,)],
    ),
    dict(
        name="glob-matcher",
        source="""\
module Glob where

match p s =
  if null p then null s
  else if head p == 301 then match (tail p) s || (if null s then false else match p (tail s))
  else if null s then false
  else if head p == 300 then match (tail p) (tail s)
  else (head p == head s) && match (tail p) (tail s)
""",
        goal="match",
        static={"p": (97, 301, 98, 300, 99)},  # a*b?c
        dyn_inputs=[
            ((97, 98, 120, 99),),
            ((97, 122, 122, 98, 113, 99),),
            ((97, 98, 99),),
            ((),),
        ],
    ),
    dict(
        name="closure-result",
        source="""\
module M where

pick c = if c then (\\x -> x + 1) else (\\x -> x * 2)
use c y = pick c @ y
""",
        goal="use",
        static={"c": True},
        dyn_inputs=[(0,), (5,), (9,)],
    ),
    dict(
        name="booleans",
        source="""\
module Bools where

xor a b = (a || b) && not (a && b)
go a b = if xor a true then (if b then 1 else 2) else 3
""",
        goal="go",
        static={"a": False},
        dyn_inputs=[(True,), (False,)],
    ),
]


@pytest.fixture(autouse=True)
def _fresh_tier_state():
    """Process-wide execution-ladder state (hotness counters, compiled
    memo, decode memo) never leaks between tests."""
    from repro.backend.tiers import clear_tiers
    from repro.speccache import clear_decode_memo

    clear_tiers()
    clear_decode_memo()


@pytest.fixture(autouse=True)
def _strict_event_bus(monkeypatch):
    """Run every in-process EventBus in strict mode: a subscriber that
    raises fails the test instead of being counted and suppressed.
    Tests of the accounting path construct ``EventBus(strict=False)``
    explicitly."""
    from repro.obs.bus import EventBus

    original = EventBus.__init__

    def strict_init(self, strict=True):
        original(self, strict=strict)

    monkeypatch.setattr(EventBus, "__init__", strict_init)


@pytest.fixture(autouse=True)
def _strict_incremental(monkeypatch):
    """Run the incremental fast path in strict mode: an exception inside
    ``try_incremental`` fails the test instead of silently degrading to
    whole-module analysis.  Tests of the fallback accounting itself
    monkeypatch ``STRICT_INCREMENTAL`` back to ``False``."""
    from repro.pipeline import build

    monkeypatch.setattr(build, "STRICT_INCREMENTAL", True)


def corpus_ids():
    return [c["name"] for c in CORPUS]


@pytest.fixture(params=CORPUS, ids=corpus_ids())
def corpus_case(request):
    return request.param


@pytest.fixture(scope="session")
def corpus_genexts():
    """Linked generating extensions for every corpus entry (cached)."""
    out = {}
    for case in CORPUS:
        out[case["name"]] = repro.compile_genexts(case["source"], SpecOptions(force_residual=frozenset(case.get("force_residual", ()))))
    return out
