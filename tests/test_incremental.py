"""Definition-level incremental recompilation: early cutoff, byte
identity against from-scratch builds, v1 interface compatibility, the
InterfaceStore facade, and the def_digest_skew finding."""

import json
import os
import glob

import pytest

from repro import api
from repro.api import BuildOptions, LegacyOptionsWarning
from repro.bt.interface import (
    InterfaceStore,
    interface_text,
    read_interface,
    scheme_digest,
)
from repro.bt.scheme import BTScheme
from repro.check.ifaces import check_interfaces
from repro.pipeline import ArtifactCache, build_dir, fsck_cache
from repro.pipeline.cache import DEFS_KIND, IFACE_KIND

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_SEEDS = sorted(glob.glob(os.path.join(CORPUS_DIR, "seed*.json")))

POWER = (
    "module Power where\n\n"
    "power n x = if n == 1 then x else x * power (n - 1) x\n"
)


def _write(path, name, text):
    with open(os.path.join(str(path), name + ".mod"), "w") as f:
        f.write(text)


def _chain(n):
    """An n-module import chain where each module exports ``m<i>_f0``
    (called by the next module) and ``m<i>_f1`` (referenced by
    nobody)."""
    out = {}
    for m in range(n):
        name = "M%d" % m
        lines = ["module %s where" % name]
        if m:
            lines.append("import M%d" % (m - 1))
        lines.append("")
        if m:
            lines.append(
                "m%d_f0 n x = if n == 0 then x else m%d_f0 (n - 1) (x + 1)"
                % (m, m - 1)
            )
        else:
            lines.append(
                "m0_f0 n x = if n == 0 then x else m0_f0 (n - 1) (x + 1)"
            )
        lines.append(
            "m%d_f1 n x = if n == 0 then x else m%d_f1 (n - 1) (x * 2)"
            % (m, m)
        )
        lines.append("")
        out[name] = "\n".join(lines)
    return out


def _write_all(path, sources):
    for name, text in sources.items():
        _write(path, name, text)


def _artifacts(result):
    """``{module: (iface_text, genext_source)}`` for one build."""
    out = {}
    for m in result.genexts:
        iface = result.cache.get_text(result.keys[m.name], IFACE_KIND)
        out[m.name] = (iface, m.source)
    return out


# ---------------------------------------------------------------------------
# The chain: cutoff behaviour, fallbacks, and the off switch.
# ---------------------------------------------------------------------------


def test_body_edit_cuts_off_inside_the_module(tmp_path):
    sources = _chain(8)
    _write_all(tmp_path, sources)
    cache = str(tmp_path / "cache")
    build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    # Change m0_f1's body without changing its scheme (a different
    # multiplier): the def is re-derived, lands on an identical scheme
    # digest, and every other def and module is untouched.
    _write(tmp_path, "M0", sources["M0"].replace("x * 2", "x * 3"))
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert result.analysed == []
    assert result.incremental == ["M0"]
    assert sorted(result.cached) == sorted("M%d" % i for i in range(1, 8))
    (entry,) = result.rebuild.by_action("incremental")
    assert entry.module == "M0"
    assert entry.reused == ("m0_f0",)
    assert entry.re_derived == ("m0_f1",)
    assert entry.cut_off == ("m0_f1",)
    stats = result.stats.as_dict()
    assert stats["defs_cut_off"] == 1
    assert stats["defs_reused"] == 1
    assert stats["defs_re_derived"] == 1


def test_body_edit_output_is_byte_identical_to_cold_build(tmp_path):
    sources = _chain(8)
    edited = dict(sources, M0=sources["M0"].replace("x * 2", "x * 3"))
    warm_dir, cold_dir = tmp_path / "warm", tmp_path / "cold"
    warm_dir.mkdir(), cold_dir.mkdir()
    _write_all(warm_dir, sources)
    build_dir(str(warm_dir), BuildOptions(cache_dir=str(tmp_path / "wc")))
    _write_all(warm_dir, edited)
    incr = build_dir(str(warm_dir), BuildOptions(cache_dir=str(tmp_path / "wc")))
    assert incr.incremental == ["M0"]

    _write_all(cold_dir, edited)
    cold = build_dir(str(cold_dir), BuildOptions(cache_dir=str(tmp_path / "cc")))
    assert sorted(cold.analysed) == sorted(sources)

    assert incr.keys == cold.keys
    assert _artifacts(incr) == _artifacts(cold)


def test_scheme_change_skips_every_dependent_module(tmp_path):
    n = 8
    sources = _chain(n)
    _write_all(tmp_path, sources)
    cache = str(tmp_path / "cache")
    build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    # Change m0_f1's *scheme* (the recursive loop becomes the identity
    # on x).  M0's interface changes — but no importer references
    # m0_f1, so every dependent module's def-level key still hits.
    _write(
        tmp_path,
        "M0",
        sources["M0"].replace(
            "m0_f1 n x = if n == 0 then x else m0_f1 (n - 1) (x * 2)",
            "m0_f1 n x = x",
        ),
    )
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert result.analysed == [], "no dependent module was fully re-analysed"
    assert result.incremental == ["M0"]
    assert sorted(result.cached) == sorted("M%d" % i for i in range(1, n))
    (entry,) = result.rebuild.by_action("incremental")
    assert entry.re_derived == ("m0_f1",)
    assert entry.cut_off == (), "the scheme really changed"
    # Only the direct importer was ever at risk: M0's interface text
    # changed, but M1's def-level key ignores the unreferenced def, so
    # M1 stays cached — and because M1's interface is then unchanged,
    # M2..M7 never even see a changed dependency.
    stats = result.stats.as_dict()
    assert stats["modules_cutoff_skipped"] == 1


def test_structural_change_falls_back_to_full_analysis(tmp_path):
    sources = _chain(4)
    _write_all(tmp_path, sources)
    cache = str(tmp_path / "cache")
    build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    _write(tmp_path, "M0", sources["M0"] + "m0_new n x = x\n")
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert result.analysed == ["M0"]
    assert result.incremental == []
    assert result.stats.as_dict()["incremental_fallbacks"] == 1


def test_incremental_false_keys_at_module_granularity(tmp_path):
    sources = _chain(4)
    _write_all(tmp_path, sources)
    cache = str(tmp_path / "cache")
    off = BuildOptions(cache_dir=cache, incremental=False)
    build_dir(str(tmp_path), off)
    _write(tmp_path, "M0", "-- tweaked\n" + sources["M0"])
    result = build_dir(str(tmp_path), off)
    assert result.analysed == ["M0"], "no per-def path with incremental=False"
    assert result.incremental == []
    assert result.rebuild.incremental is False
    # Module-level early cutoff still holds: the interface is
    # unchanged, so the dependents stay cached.
    assert sorted(result.cached) == ["M1", "M2", "M3"]


def test_rebuild_report_shape(tmp_path):
    sources = _chain(3)
    _write_all(tmp_path, sources)
    cache = str(tmp_path / "cache")
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    doc = result.rebuild.as_dict()
    assert doc["incremental"] is True
    assert doc["totals"]["analysed"] == 3
    assert [m["module"] for m in doc["modules"]] == ["M0", "M1", "M2"]
    for m in doc["modules"]:
        assert m["action"] == "analysed"
        assert sorted(m["re_derived"]) == sorted(
            ["m%s_f0" % m["module"][1:], "m%s_f1" % m["module"][1:]]
        )
    assert "rebuild:" in result.rebuild.render()


def test_cli_json_carries_the_rebuild_report(tmp_path, capsys):
    from repro.cli import main
    from repro.obs.schema import validate_report

    _write(tmp_path, "Power", POWER)
    assert main(["build", str(tmp_path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert validate_report(doc) == []
    rebuild = doc["report"]["rebuild"]
    assert rebuild["totals"]["analysed"] == 1
    assert rebuild["modules"][0]["module"] == "Power"
    # And the stats view carries the incr.* counters.
    assert doc["report"]["stats"]["defs_cut_off"] == 0


def test_legacy_incremental_kwarg_warns(tmp_path):
    _write(tmp_path, "Power", POWER)
    api._reset_legacy_warnings()
    with pytest.warns(LegacyOptionsWarning, match="build_dir"):
        result = build_dir(
            str(tmp_path),
            cache_dir=str(tmp_path / "cache"),
            incremental=False,
        )
    assert result.rebuild.incremental is False


# ---------------------------------------------------------------------------
# Corpus property: incremental output == from-scratch output, per seed.
# ---------------------------------------------------------------------------


def _split_modules(source):
    """One corpus program text -> ``[(module_name, module_text)]``."""
    parts = []
    current = []
    for line in source.splitlines():
        if line.startswith("module ") and current:
            parts.append(current)
            current = [line]
        else:
            current.append(line)
    parts.append(current)
    out = []
    for lines in parts:
        header = next(l for l in lines if l.startswith("module "))
        out.append((header.split()[1], "\n".join(lines).strip("\n") + "\n"))
    return out


def _single_def_edit(text):
    """Wrap the first definition's body in a static conditional — the
    body changes, its semantics and (for these programs) its scheme do
    not."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if (
            " = " in line
            and not line.startswith(("module ", "import ", "--"))
            and line.strip()
        ):
            lhs, rhs = line.split(" = ", 1)
            lines[i] = "%s = if 0 == 0 then (%s) else (%s)" % (lhs, rhs, rhs)
            return "\n".join(lines) + "\n", lhs.split()[0]
    raise AssertionError("no definition line found")


@pytest.mark.parametrize(
    "seed_path", CORPUS_SEEDS, ids=[os.path.basename(p) for p in CORPUS_SEEDS]
)
def test_corpus_single_def_edit_is_byte_identical_to_cold(tmp_path, seed_path):
    with open(seed_path) as f:
        doc = json.load(f)
    assert doc["schema"] == "repro.check.corpus/v1"
    modules = _split_modules(doc["source"])
    edited_first, _ = _single_def_edit(modules[0][1])
    edited = [(modules[0][0], edited_first)] + modules[1:]

    warm_dir, cold_dir = tmp_path / "warm", tmp_path / "cold"
    warm_dir.mkdir(), cold_dir.mkdir()
    for name, text in modules:
        _write(warm_dir, name, text)
    build_dir(str(warm_dir), BuildOptions(cache_dir=str(tmp_path / "wc")))
    for name, text in edited:
        _write(warm_dir, name, text)
    incr = build_dir(str(warm_dir), BuildOptions(cache_dir=str(tmp_path / "wc")))
    assert incr.report.ok

    for name, text in edited:
        _write(cold_dir, name, text)
    cold = build_dir(str(cold_dir), BuildOptions(cache_dir=str(tmp_path / "cc")))

    assert incr.keys == cold.keys
    assert _artifacts(incr) == _artifacts(cold)


def test_corpus_edit_residuals_agree_with_cold_build(tmp_path):
    """Differential spot-check (first three seeds): the incrementally
    rebuilt program and a from-scratch build specialise every corpus
    goal variant to byte-identical residuals and values."""
    import repro
    from repro.api import SpecOptions

    for seed_path in CORPUS_SEEDS[:3]:
        with open(seed_path) as f:
            doc = json.load(f)
        modules = _split_modules(doc["source"])
        edited_first, _ = _single_def_edit(modules[0][1])
        edited = [(modules[0][0], edited_first)] + modules[1:]
        base = tmp_path / os.path.basename(seed_path)
        warm_dir, cold_dir = base / "warm", base / "cold"
        os.makedirs(str(warm_dir)), os.makedirs(str(cold_dir))
        for name, text in modules:
            _write(warm_dir, name, text)
        build_dir(str(warm_dir), BuildOptions(cache_dir=str(base / "wc")))
        for name, text in edited:
            _write(warm_dir, name, text)
        incr = build_dir(str(warm_dir), BuildOptions(cache_dir=str(base / "wc")))
        for name, text in edited:
            _write(cold_dir, name, text)
        cold = build_dir(str(cold_dir), BuildOptions(cache_dir=str(base / "cc")))
        gp_incr, gp_cold = incr.link(), cold.link()
        for variant, expected_values in zip(doc["static_variants"], doc["values"]):
            a = repro.specialise(gp_incr, doc["goal"], variant, SpecOptions())
            b = repro.specialise(gp_cold, doc["goal"], variant, SpecOptions())
            assert repro.pretty_program(a.program) == repro.pretty_program(
                b.program
            )
            for vec, expected in zip(doc["dyn_inputs"], expected_values):
                assert a.run(*vec) == expected


# ---------------------------------------------------------------------------
# Interface formats: v1 compatibility, the store facade, digest skew.
# ---------------------------------------------------------------------------


def _power_schemes(tmp_path):
    _write(tmp_path, "Power", POWER)
    result = build_dir(
        str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache"))
    )
    store = InterfaceStore()
    iface = store.load_text(
        result.cache.get_text(result.keys["Power"], IFACE_KIND)
    )
    return iface.schemes


def test_v1_interface_still_round_trips(tmp_path):
    schemes = _power_schemes(tmp_path)
    v1_text = interface_text("Power", schemes, format=1)
    assert '"format": 1' in v1_text
    assert "digests" not in v1_text
    path = str(tmp_path / "Power.bti")
    with open(path, "w") as f:
        f.write(v1_text)
    # The legacy reader and the store agree on a v1 file.
    name, read_back = read_interface(path)
    assert name == "Power" and read_back == schemes
    store = InterfaceStore(iface_dir=str(tmp_path))
    iface = store.load_module("Power")
    assert iface.format == 1
    assert iface.stored_digests is None
    assert iface.schemes == schemes
    # Digests are derived even for v1, so def-level callers never
    # branch on the format.
    assert iface.digest_of_def("power") == scheme_digest(schemes["power"])
    assert store.verify(iface) == []


def test_store_detects_def_digest_skew(tmp_path):
    schemes = _power_schemes(tmp_path)
    payload = json.loads(interface_text("Power", schemes))
    payload["digests"]["power"] = "0" * 64
    skewed = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    store = InterfaceStore()
    iface = store.load_text(skewed)
    problems = store.verify(iface)
    assert [p[0] for p in problems] == ["def_digest_skew"]
    assert problems[0][1] == "power"
    # The derived digest (not the stored one) is authoritative.
    assert iface.digest_of_def("power") == scheme_digest(schemes["power"])


def test_check_reports_def_digest_skew(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    _write(src, "Power", POWER)
    iface_dir = str(tmp_path / "iface")
    build_dir(
        str(src),
        BuildOptions(cache_dir=str(tmp_path / "cache"), iface_dir=iface_dir),
    )
    bti = os.path.join(iface_dir, "Power.bti")
    with open(bti) as f:
        payload = json.load(f)
    payload["digests"]["power"] = "f" * 64
    with open(bti, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    findings, checked = check_interfaces(str(src), iface_dir)
    assert checked == 1
    rules = [f.rule for f in findings]
    assert "def_digest_skew" in rules
    assert "corrupt-interface" not in rules, "skew is not corruption"
    assert "non-canonical" not in rules, "skew is the distinct finding"


def test_fsck_quarantines_digest_skew_distinctly(tmp_path):
    _write(tmp_path, "Power", POWER)
    cache_dir = str(tmp_path / "cache")
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache_dir))
    cache = ArtifactCache(cache_dir)
    key = result.keys["Power"]
    payload = json.loads(cache.get_text(key, IFACE_KIND))
    payload["digests"]["power"] = "f" * 64
    cache.put_text(
        key, IFACE_KIND, json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    report = fsck_cache(cache)
    # Intact but self-inconsistent: the distinct *stale* finding kind,
    # not generic corruption (it still moves to quarantine/ and still
    # fails the scan).
    assert not report.quarantined
    assert len(report.stale) == 1
    name, reason = report.stale[0]
    assert name == "%s.%s" % (key, IFACE_KIND)
    assert reason.startswith("iface.def_digest_skew")
    assert not report.ok


def test_defs_record_is_published_and_parseable(tmp_path):
    from repro.pipeline.incremental import parse_defs_doc

    sources = _chain(2)
    _write_all(tmp_path, sources)
    result = build_dir(
        str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache"))
    )
    for name in sources:
        text = result.cache.get_text(result.keys[name], DEFS_KIND)
        doc = parse_defs_doc(text)
        assert doc is not None
        assert doc["module"] == name
        assert doc["def_order"] == ["m%s_f0" % name[1:], "m%s_f1" % name[1:]]
    refs = result.cache.read_refs()
    assert refs == result.keys


def test_isomorphic_scheme_reuse_survives_missing_refs(tmp_path):
    """Deleting refs.json only disables the fast path — the rebuild
    falls back to full analysis and still produces the same bytes."""
    sources = _chain(3)
    _write_all(tmp_path, sources)
    cache_dir = str(tmp_path / "cache")
    build_dir(str(tmp_path), BuildOptions(cache_dir=cache_dir))
    os.unlink(ArtifactCache(cache_dir).refs_path())
    _write(tmp_path, "M0", sources["M0"].replace("x * 2", "x * 3"))
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache_dir))
    assert result.analysed == ["M0"], "no refs: whole-module fallback"
    assert result.incremental == []
    assert result.report.ok
