"""Primitive-operation semantics tests."""

import pytest

from repro.lang.prims import (
    INFIX_BY_SYMBOL,
    PRIMS,
    PrimError,
    apply_prim,
    is_pair,
    make_pair,
)


def test_arithmetic():
    assert apply_prim("+", [2, 3]) == 5
    assert apply_prim("*", [4, 5]) == 20
    assert apply_prim("div", [17, 5]) == 3
    assert apply_prim("mod", [17, 5]) == 2


def test_subtraction_is_monus():
    assert apply_prim("-", [5, 3]) == 2
    assert apply_prim("-", [3, 5]) == 0


def test_division_by_zero_raises():
    with pytest.raises(PrimError):
        apply_prim("div", [1, 0])
    with pytest.raises(PrimError):
        apply_prim("mod", [1, 0])


def test_comparisons():
    assert apply_prim("==", [3, 3]) is True
    assert apply_prim("==", [3, 4]) is False
    assert apply_prim("<", [2, 3]) is True
    assert apply_prim("<=", [3, 3]) is True


def test_boolean_operations():
    assert apply_prim("and", [True, False]) is False
    assert apply_prim("or", [True, False]) is True
    assert apply_prim("not", [False]) is True


def test_booleans_are_not_naturals():
    with pytest.raises(PrimError):
        apply_prim("+", [True, 1])
    with pytest.raises(PrimError):
        apply_prim("and", [1, True])


def test_list_operations():
    assert apply_prim("cons", [1, (2, 3)]) == (1, 2, 3)
    assert apply_prim("head", [(1, 2)]) == 1
    assert apply_prim("tail", [(1, 2)]) == (2,)
    assert apply_prim("null", [()]) is True
    assert apply_prim("null", [(1,)]) is False


def test_head_tail_of_empty_list_raise():
    with pytest.raises(PrimError):
        apply_prim("head", [()])
    with pytest.raises(PrimError):
        apply_prim("tail", [()])


def test_pair_operations():
    p = apply_prim("pair", [1, (2,)])
    assert is_pair(p)
    assert apply_prim("fst", [p]) == 1
    assert apply_prim("snd", [p]) == (2,)


def test_pairs_are_not_lists():
    p = make_pair(1, 2)
    with pytest.raises(PrimError):
        apply_prim("head", [p])
    with pytest.raises(PrimError):
        apply_prim("fst", [(1, 2)])


def test_arity_is_checked():
    with pytest.raises(PrimError):
        apply_prim("+", [1])
    with pytest.raises(PrimError):
        apply_prim("not", [True, False])


def test_unknown_primitive_raises_keyerror():
    with pytest.raises(KeyError):
        apply_prim("frobnicate", [])


def test_infix_table_is_consistent():
    for symbol, name in INFIX_BY_SYMBOL.items():
        assert PRIMS[name].infix == symbol


def test_every_primitive_has_positive_arity():
    for info in PRIMS.values():
        assert info.arity in (1, 2)
