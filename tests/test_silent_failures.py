"""Regression tests for the silent-failure sweep: the daemon's
wall-clock uptime, the incremental fast path's swallowed exceptions,
and the execution ladder's undecodable code artifacts.  Each failure
mode must now be accounted (a counter and, where applicable, an event)
instead of disappearing."""

import marshal
import os
import time

import pytest

import repro
from repro.api import BuildOptions, SpecOptions
from repro.backend.tiers import TierPolicy, clear_tiers, load_compiled
from repro.obs import Obs
from repro.pipeline import build as build_mod
from repro.pipeline.build import build_dir
from repro.pipeline.cache import ArtifactCache, CODE_KIND
from repro.serve import ServeConfig, SpecServer

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
"""

M0 = """\
module M0 where

m0_f0 n x = if n == 0 then x else m0_f0 (n - 1) (x * 2)
m0_f1 n x = if n == 0 then x else m0_f1 (n - 1) (x * 3)
"""


def _counters(obs):
    return dict(obs.metrics.snapshot()["counters"])


# ---------------------------------------------------------------------------
# serve/daemon.py: uptime must come from the monotonic clock
# ---------------------------------------------------------------------------


class TestDaemonClocks:
    @pytest.fixture
    def server(self, tmp_path):
        moddir = tmp_path / "modules"
        moddir.mkdir()
        with open(str(moddir / "Power.mod"), "w") as f:
            f.write(POWER)
        return SpecServer(ServeConfig(dir=str(moddir), jobs=1,
                                      warm_pool=False))

    def _health(self, server):
        response = server.handle_request({"op": "health"})
        assert response["ok"], response
        return response

    def test_uptime_survives_a_backwards_wall_clock_step(
        self, server, monkeypatch
    ):
        # An NTP step (or DST mishap) yanks the wall clock an hour into
        # the past.  Before the fix, uptime_s and program_age_s were
        # wall-clock subtractions and went negative.
        before = self._health(server)
        monkeypatch.setattr(time, "time", lambda: before["started_at"] - 3600)
        after = self._health(server)
        assert after["uptime_s"] >= 0
        assert after["program_age_s"] >= 0
        assert after["uptime_s"] >= before["uptime_s"]

    def test_wall_timestamps_are_display_only_and_frozen(self, server):
        # started_at / program_loaded_at are real wall-clock epochs
        # captured once at startup/load — not re-derived per request.
        first = self._health(server)
        second = self._health(server)
        assert first["started_at"] == second["started_at"]
        assert first["program_loaded_at"] == second["program_loaded_at"]
        now = time.time()
        assert abs(now - first["started_at"]) < 3600
        assert abs(now - first["program_loaded_at"]) < 3600

    def test_uptime_is_monotonic_across_requests(self, server):
        a = self._health(server)
        b = self._health(server)
        assert b["uptime_s"] >= a["uptime_s"] >= 0


# ---------------------------------------------------------------------------
# pipeline/build.py: exceptions in the incremental fast path
# ---------------------------------------------------------------------------


class TestIncrementalErrorAccounting:
    def _prime(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        with open(str(src / "M0.mod"), "w") as f:
            f.write(M0)
        cache = str(tmp_path / "cache")
        build_dir(str(src), BuildOptions(cache_dir=cache))
        # A body-only edit, so the next build attempts the fast path.
        with open(str(src / "M0.mod"), "w") as f:
            f.write(M0.replace("x * 2", "x * 5"))
        return str(src), cache

    def test_fast_path_exception_is_counted_and_emitted(
        self, tmp_path, monkeypatch
    ):
        src, cache = self._prime(tmp_path)
        monkeypatch.setattr(build_mod, "STRICT_INCREMENTAL", False)

        def boom(*args, **kwargs):
            raise RuntimeError("injected fast-path bug")

        monkeypatch.setattr(build_mod, "try_incremental", boom)
        events = []
        obs = Obs()
        obs.bus.subscribe(
            "incremental.error", lambda kind, payload: events.append(payload)
        )
        result = build_dir(str(src), BuildOptions(cache_dir=cache), obs=obs)
        # The build still succeeds — by falling back to whole-module
        # analysis — but the fallback is accounted, not silent.
        assert result.report.ok
        assert result.analysed == ["M0"]
        stats = result.stats.as_dict()
        assert stats["incremental_fallback_errors"] == 1
        assert len(events) == 1
        assert events[0]["module"] == "M0"
        assert "injected fast-path bug" in events[0]["error"]

    def test_first_failure_per_module_reported_once(
        self, tmp_path, monkeypatch
    ):
        src, cache = self._prime(tmp_path)
        monkeypatch.setattr(build_mod, "STRICT_INCREMENTAL", False)
        monkeypatch.setattr(
            build_mod,
            "try_incremental",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("boom")),
        )
        events = []
        obs = Obs()
        obs.bus.subscribe(
            "incremental.error", lambda kind, payload: events.append(payload)
        )
        from repro.pipeline.build import BuildEngine

        engine = BuildEngine(src, BuildOptions(cache_dir=cache), obs=obs)
        engine.build()
        # Same engine, second build: the module's error was already
        # reported, so the event does not repeat (the counter does).
        with open(os.path.join(src, "M0.mod"), "w") as f:
            f.write(M0.replace("x * 2", "x * 7"))
        engine.build()
        assert len(events) == 1

    def test_strict_mode_re_raises(self, tmp_path, monkeypatch):
        src, cache = self._prime(tmp_path)
        # conftest already flips STRICT_INCREMENTAL on for every test;
        # assert the strictness actually bites.
        assert build_mod.STRICT_INCREMENTAL

        def boom(*args, **kwargs):
            raise RuntimeError("injected fast-path bug")

        monkeypatch.setattr(build_mod, "try_incremental", boom)
        with pytest.raises(RuntimeError, match="injected fast-path bug"):
            build_dir(str(src), BuildOptions(cache_dir=cache))


# ---------------------------------------------------------------------------
# backend/tiers.py: undecodable code artifacts
# ---------------------------------------------------------------------------


class TestCodeDecodeMissAccounting:
    def _promoted_key(self, tmp_path):
        gp = repro.compile_genexts(POWER)
        from repro.backend.tiers import TierLadder

        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=1)
        )
        ladder = TierLadder(gp, options=options)
        assert ladder.call("power", {"n": 5}, (2,)).value == 32
        return ladder.key_for("power", {"n": 5})

    def test_corrupt_artifact_counts_a_decode_miss(self, tmp_path):
        key = self._promoted_key(tmp_path)
        store = ArtifactCache(str(tmp_path))
        store.put_bytes(key, CODE_KIND, b"\x00garbage")
        clear_tiers()
        events = []
        obs = Obs()
        obs.bus.subscribe(
            "tier.code_decode_miss", lambda kind, payload: events.append(payload)
        )
        fn = load_compiled(store, key, obs=obs)
        # The fallback still works (recompiled from resid.py) but the
        # miss is visible.
        assert fn is not None and fn.origin == "source"
        assert fn(3) == 243
        assert _counters(obs)["tier.code_decode_miss"] == 1
        assert len(events) == 1
        assert events[0]["key"] == key
        assert "unmarshal" in events[0]["reason"]

    def test_stale_cache_tag_names_the_reason(self, tmp_path):
        key = self._promoted_key(tmp_path)
        store = ArtifactCache(str(tmp_path))
        record = marshal.loads(store.get_bytes(key, CODE_KIND))
        record["tag"] = "someone-elses-interpreter"
        del record["code"]
        store.put_bytes(key, CODE_KIND, marshal.dumps(record))
        clear_tiers()
        events = []
        obs = Obs()
        obs.bus.subscribe(
            "tier.code_decode_miss", lambda kind, payload: events.append(payload)
        )
        fn = load_compiled(store, key, obs=obs)
        assert fn is not None and fn.origin == "source"
        assert _counters(obs)["tier.code_decode_miss"] == 1
        assert "cache tag" in events[0]["reason"]

    def test_healthy_artifact_has_zero_misses(self, tmp_path):
        key = self._promoted_key(tmp_path)
        store = ArtifactCache(str(tmp_path))
        clear_tiers()
        obs = Obs()
        fn = load_compiled(store, key, obs=obs)
        assert fn is not None and fn.origin == "code"
        assert _counters(obs).get("tier.code_decode_miss", 0) == 0
