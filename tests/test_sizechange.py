"""Size-change termination analysis (repro.bt.sizechange) and the
``unfolding="size-change"`` strategy end to end."""

import pytest

import repro
from repro.api import SpecOptions
from repro.bench.generators import (
    guarded_lookup_source,
    machine_interpreter_source,
    power_source,
)
from repro.bt.sizechange import sct_unfold_params
from repro.genext.engine import specialise
from repro.interp import run_program
from repro.lang.pretty import pretty_program
from repro.modsys.program import load_program


def _defs(source):
    linked = load_program(source)
    out = {}
    for m in linked.program.modules:
        for d in m.defs:
            out[d.name] = d
    return out


def _spec(source, goal, static, unfolding):
    opts = SpecOptions(unfolding=unfolding)
    gp = repro.compile_genexts(source, opts)
    res = specialise(gp, goal, static, options=opts)
    return res, pretty_program(res.program)


# ---------------------------------------------------------------------------
# The analysis itself.
# ---------------------------------------------------------------------------


class TestSctProofs:
    def test_guarded_counter_proved_on_counter_only(self):
        src = """\
module M where

count n acc = if n == 0 then acc else count (n - 1) (acc + 1)
"""
        proof = sct_unfold_params(_defs(src), ["count"])
        assert proof == {"count": ("n",)}

    def test_unguarded_monus_no_proof(self):
        # n - 1 saturates at 0 under natural subtraction, and no guard
        # proves n >= 1 at the call, so the arc is never strict.
        src = """\
module M where

spin n = if n == 99 then 0 else spin (n - 1)
"""
        assert sct_unfold_params(_defs(src), ["spin"]) is None

    def test_tail_is_strict_without_guard_facts(self):
        # tail errors on nil, so the recursive call always sees a
        # strictly shorter list — even under a dynamic conditional.
        src = """\
module M where

walk xs d = if d == 7 then 0 else walk (tail xs) d
"""
        proof = sct_unfold_params(_defs(src), ["walk"])
        assert proof == {"walk": ("xs",)}

    def test_guarded_lookup_needs_only_the_list(self):
        proof = sct_unfold_params(_defs(guarded_lookup_source()), ["lookup"])
        assert proof == {"lookup": ("xs",)}

    def test_machine_step_has_no_proof(self):
        # step recurses on pc + 1: no parameter decreases, so the
        # conservative answer is the right one.
        defs = _defs(machine_interpreter_source())
        assert sct_unfold_params(defs, ["step"]) is None

    def test_call_under_lambda_defeats_the_proof(self):
        src = """\
module M where

apply f x = f @ x
tricky n = if n == 5 then 0 else apply (\\y -> tricky (n - 1)) 1
"""
        assert sct_unfold_params(_defs(src), ["tricky"]) is None

    def test_non_recursive_group_has_nothing_to_prove(self):
        src = """\
module M where

double x = x + x
"""
        assert sct_unfold_params(_defs(src), ["double"]) is None

    def test_mutual_recursion_on_shared_descent(self):
        src = """\
module M where

even n = if n == 0 then 1 else odd (n - 1)
odd n = if n == 0 then 0 else even (n - 1)
"""
        proof = sct_unfold_params(_defs(src), ["even", "odd"])
        assert proof == {"even": ("n",), "odd": ("n",)}

    def test_growing_argument_no_proof(self):
        src = """\
module M where

grow n = if n == 3 then 0 else grow (n + 1)
"""
        assert sct_unfold_params(_defs(src), ["grow"]) is None


# ---------------------------------------------------------------------------
# The strategy end to end.
# ---------------------------------------------------------------------------


class TestSizeChangeStrategy:
    def test_lookup_residual_shrinks_and_agrees(self):
        src = guarded_lookup_source()
        table = (10, 20, 30)
        linked = load_program(src)
        lub_res, lub_text = _spec(src, "lookup", {"xs": table}, "lub")
        sc_res, sc_text = _spec(src, "lookup", {"xs": table}, "size-change")
        # The lub rule residualises the loop; size-change unfolds it
        # into a closed chain of conditionals.
        assert len(sc_text) < len(lub_text)
        assert "lookup" not in sc_text.split("=", 1)[1]
        for i in (0, 1, 2, 5):
            expected = run_program(linked, "lookup", [table, i])
            assert lub_res.run(i) == expected
            assert sc_res.run(i) == expected

    def test_power_is_byte_identical_under_size_change(self):
        # power's recursion is already unfolded by the lub rule (its
        # conditional is static); size-change must change nothing.
        src = power_source()
        _, lub_text = _spec(src, "power", {"n": 5}, "lub")
        _, sc_text = _spec(src, "power", {"n": 5}, "size-change")
        assert sc_text == lub_text

    def test_machine_interpreter_unchanged_under_size_change(self):
        # step has no size-change proof, so the strategy degrades to
        # the lub rule on the paper's interpreter.
        src = machine_interpreter_source()
        prog = (("pair", 0, 10), ("pair", 1, 3))
        _, lub_text = _spec(src, "run", {"prog": prog}, "lub")
        _, sc_text = _spec(src, "run", {"prog": prog}, "size-change")
        assert sc_text == lub_text

    def test_invalid_unfolding_rejected(self):
        with pytest.raises(ValueError):
            SpecOptions(unfolding="eager")
