"""Wave scheduling: antichain/topological properties of
``ModuleGraph.waves`` and determinism of the parallel build."""

import os
import random

import pytest

from repro.bench.generators import wide_program
from repro.modsys.graph import CyclicImportError, ModuleGraph
from repro.pipeline import build_dir
from repro.api import BuildOptions

# ---------------------------------------------------------------------------
# Property tests over random DAGs.
# ---------------------------------------------------------------------------


def random_dag(n_nodes, edge_prob, seed):
    """A random acyclic imports mapping: node i may import only j < i
    (guaranteeing acyclicity), in a rng-shuffled presentation order."""
    rng = random.Random(seed)
    names = ["N%d" % i for i in range(n_nodes)]
    imports = {}
    for i, name in enumerate(names):
        deps = [names[j] for j in range(i) if rng.random() < edge_prob]
        imports[name] = tuple(deps)
    shuffled = list(imports)
    rng.shuffle(shuffled)
    return {name: imports[name] for name in shuffled}


@pytest.mark.parametrize("seed", range(25))
def test_waves_properties_random_dags(seed):
    rng = random.Random(seed * 7919)
    imports = random_dag(
        n_nodes=rng.randint(1, 40), edge_prob=rng.uniform(0.0, 0.5), seed=seed
    )
    graph = ModuleGraph(imports)
    waves = graph.waves()

    # Partition: every module exactly once.
    flat = [name for wave in waves for name in wave]
    assert sorted(flat) == sorted(imports)
    assert len(flat) == len(set(flat))

    # Antichain: no module (transitively) imports a member of its wave.
    for wave in waves:
        members = set(wave)
        for name in wave:
            assert not (graph.reachable_from(name) & members), (
                "wave is not an antichain: %s imports into %s" % (name, wave)
            )

    # Concatenated waves are a valid topological order: every import of
    # a wave-k module appears in an earlier wave.
    seen = set()
    for wave in waves:
        for name in wave:
            assert set(imports[name]) <= seen
        seen.update(wave)

    # Waves are maximal/greedy: each module has an import in the
    # immediately preceding wave (else it would have been scheduled
    # earlier), so the schedule has the fewest possible barriers.
    for k, wave in enumerate(waves[1:], start=1):
        for name in wave:
            assert set(imports[name]) & set(waves[k - 1])


def test_waves_shapes():
    chain = ModuleGraph({"A": (), "B": ("A",), "C": ("B",)})
    assert chain.waves() == (("A",), ("B",), ("C",))
    flat = ModuleGraph({"A": (), "B": (), "C": ()})
    assert flat.waves() == (("A", "B", "C"),)
    diamond = ModuleGraph(
        {"D": ("B", "C"), "B": ("A",), "C": ("A",), "A": ()}
    )
    assert diamond.waves() == (("A",), ("B", "C"), ("D",))
    assert ModuleGraph({}).waves() == ()


def test_waves_deterministic_within_wave_order():
    g = {"B": (), "A": (), "C": ("B", "A")}
    assert ModuleGraph(g).waves() == (("B", "A"), ("C",))


def test_waves_cyclic_rejected():
    with pytest.raises(CyclicImportError):
        ModuleGraph({"A": ("B",), "B": ("A",)}).waves()


# ---------------------------------------------------------------------------
# Determinism under parallelism: jobs=1 and jobs=4 must emit
# byte-identical interfaces and genext sources.
# ---------------------------------------------------------------------------


def _write_wide_program(path, layers=4, width=4):
    sources = wide_program(layers, width, defs_per_module=3, seed=11)
    for name, text in sources.items():
        with open(os.path.join(str(path), name + ".mod"), "w") as f:
            f.write(text)
    return sources


def test_parallel_build_is_deterministic(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    sources = _write_wide_program(src)
    assert len(sources) == 16

    outs = {}
    for jobs in (1, 4):
        iface_dir = str(tmp_path / ("iface%d" % jobs))
        out_dir = str(tmp_path / ("out%d" % jobs))
        result = build_dir(
            str(src),
            BuildOptions(
                cache_dir=str(tmp_path / ("cache%d" % jobs)),
                jobs=jobs,
                iface_dir=iface_dir,
                out_dir=out_dir,
            ),
        )
        assert sorted(result.analysed) == sorted(sources), "cold: all analysed"
        assert result.stats.wave_widths == (4, 4, 4, 4)
        files = {}
        for d in (iface_dir, out_dir):
            for entry in sorted(os.listdir(d)):
                with open(os.path.join(d, entry), "rb") as f:
                    files[entry] = f.read()
        outs[jobs] = files

    assert sorted(outs[1]) == sorted(outs[4])
    for entry in outs[1]:
        assert outs[1][entry] == outs[4][entry], (
            "%s differs between --jobs 1 and --jobs 4" % entry
        )
